"""Reproduce the paper's full 151-project study end to end.

Generates the synthetic corpus (parse -> diff -> heartbeat -> metrics ->
labels -> patterns) and prints every table and figure of the paper.

Run:  python examples/corpus_study.py [seed]
"""

import sys
import time

from repro import report
from repro.corpus import generate_corpus
from repro.corpus.generator import DEFAULT_SEED
from repro.study import records_from_corpus, run_study


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_SEED

    started = time.perf_counter()
    print(f"generating the 151-project corpus (seed {seed}) ...")
    corpus = generate_corpus(seed=seed)

    print("measuring, labeling and classifying every project ...")
    records = records_from_corpus(corpus)

    print("running all analyses ...")
    results = run_study(records)
    elapsed = time.perf_counter() - started
    print(f"done in {elapsed:.1f}s — {results.total} projects, "
          f"{results.strict_agreement} match their definition strictly, "
          f"{results.table2.total_exceptions} documented exceptions.\n")

    sections = [
        report.render_table1(results),
        report.render_table2(results),
        report.render_correlations(results),
        report.render_fig4_overview(results),
        report.render_tree(results),
        report.render_coverage(results),
        report.render_prediction(results),
        report.render_section34(results),
        report.render_section52(results),
        report.render_section61(results),
        report.render_section63(results),
    ]
    print(("\n\n" + "=" * 72 + "\n\n").join(sections))


if __name__ == "__main__":
    main()
