"""The curator scenario of §6.2: predict evolution from the birth month.

"Assume a curator who extracts the history of a software project and its
relational database. Can the curator make an educated guess on how the
schema will evolve?" — this example answers that question for a given
birth month, using the Fig.-7 conditional probabilities computed on the
study corpus.

Run:  python examples/predict_evolution.py [birth_month]
"""

import sys

from repro.analysis.prediction import BUCKET_LABELS, birth_bucket
from repro.corpus import generate_corpus
from repro.patterns.taxonomy import Family, REAL_PATTERNS, family_of
from repro.study import records_from_corpus, run_study
from repro.viz import format_table


def main() -> None:
    birth_month = int(sys.argv[1]) if len(sys.argv) > 1 else 0

    print("building the reference corpus (151 projects) ...")
    results = run_study(records_from_corpus(generate_corpus()))
    prediction = results.prediction
    bucket = birth_bucket(birth_month)

    print(f"\nSchema born in project month M{birth_month} "
          f"-> bucket '{BUCKET_LABELS[bucket]}'\n")

    rows = []
    for pattern in sorted(
            REAL_PATTERNS,
            key=lambda p: -prediction.probability(p, bucket)):
        probability = prediction.probability(pattern, bucket)
        if probability == 0:
            continue
        family = family_of(pattern)
        rows.append([pattern.value, family.value,
                     f"{probability:.0%}"])
    print(format_table(["Pattern", "Family", "P(pattern | birth)"],
                       rows))

    frozen = prediction.frozen_probability(bucket)
    regular = prediction.family_probability(
        Family.STAIRWAY_TO_HEAVEN, bucket)
    late = prediction.family_probability(
        Family.SCARED_TO_FALL_ASLEEP_AGAIN, bucket)

    print("\nCurator's summary:")
    print(f"  chance the schema freezes right away "
          f"(Flatliner/Radical Sign): {frozen:.0%}")
    print(f"  chance of steady, regular curation:  {regular:.0%}")
    print(f"  chance of late-life schema change:   {late:.0%}")
    if frozen >= 0.6:
        print("  advice: invest in getting the initial schema right — "
              "change after birth is unlikely.")
    elif regular >= 0.35:
        print("  advice: budget recurring time for schema migrations "
              "and co-evolution of queries.")
    else:
        print("  advice: mixed regime — monitor the first months after "
              "schema birth before planning.")


if __name__ == "__main__":
    main()
