"""What-if study: how do the corpus-level statistics shift when the
population mix changes?

The paper speculates (§7) that NoSQL schemas may be "more alive" in
their evolutionary activity. The generator makes such what-if questions
testable: build an alternative corpus whose population is skewed toward
the active patterns (Regularly Curated / Smoking Funnel), run the same
study, and compare the headline statistics side by side.

Run:  python examples/what_if_mix.py
"""

from repro.corpus import generate_corpus
from repro.patterns.taxonomy import Pattern
from repro.study import compare_studies, records_from_corpus, run_study
from repro.viz import format_table

#: A hypothetical "lively-schema" population: same corpus size, but the
#: Stairway/late families dominate instead of Be-Quick-or-Be-Dead.
LIVELY_MIX = {
    Pattern.FLATLINER: 8,
    Pattern.RADICAL_SIGN: 15,
    Pattern.SIGMOID: 8,
    Pattern.LATE_RISER: 6,
    Pattern.QUANTUM_STEPS: 38,
    Pattern.REGULARLY_CURATED: 45,
    Pattern.SMOKING_FUNNEL: 21,
    Pattern.SIESTA: 10,
}


def headline(results) -> dict:
    stats = results.stats34
    return {
        "projects": results.total,
        "zero active growth months": stats.zero_active_growth,
        "<=1 active growth months": stats.at_most_one_active_growth,
        "vault share": f"{stats.vault_share:.0%}",
        "High/Full volume at birth": stats.high_activity_at_birth,
        "median activity (all projects)": int(sorted(
            r.profile.total_activity for r in results.records
        )[results.total // 2]),
        "tree misclassified": len(results.tree_misclassified),
    }


def main() -> None:
    print("running the paper-mix study ...")
    paper = run_study(records_from_corpus(generate_corpus(seed=5)))
    print("running the lively-mix what-if study ...")
    lively = run_study(records_from_corpus(
        generate_corpus(seed=5, population=LIVELY_MIX)))

    paper_rows = headline(paper)
    lively_rows = headline(lively)
    rows = [[key, paper_rows[key], lively_rows[key]]
            for key in paper_rows]
    print()
    print(format_table(["statistic", "paper mix", "lively mix"], rows,
                       title="What-if — FOSS-like mix vs a lively-schema "
                             "mix (same generator, same seed)"))

    delta = compare_studies(paper, lively)
    print("\nTyped deltas (compare_studies):")
    print(f"  zero-AGM share:  {delta.zero_agm_share_delta:+.0%}")
    print(f"  vault share:     {delta.vault_share_delta:+.0%}")
    print(f"  median activity: {delta.median_activity_delta:+.0f}")
    print(f"  livelier mix:    {delta.livelier}")

    print(
        "\nReading: with a lively population the aversion-to-change "
        "signals\n(zero active growth months, vaults, at-birth volume) "
        "collapse, while the\npattern definitions still separate "
        "cleanly — the taxonomy itself is\nmix-independent, only the "
        "population shares move.")


if __name__ == "__main__":
    main()
