"""Schema diffing and migration generation.

Shows the library as a practical schema tool: diff two versions of a
schema at the logical level, inspect the affected attributes (the
paper's unit of change), and generate the migration script that
transforms one into the other — then proves it by applying the script.

Run:  python examples/migrations.py
"""

from repro.diff import DiffOptions, diff_schemas, migration_script
from repro.schema import SchemaBuilder, build_schema
from repro.sqlddl import Dialect, parse_script

OLD = """
CREATE TABLE customers (
  id INT PRIMARY KEY,
  name TEXT NOT NULL,
  email TEXT
);
CREATE TABLE orders (
  id INT PRIMARY KEY,
  customer_id INT REFERENCES customers (id),
  total DECIMAL(8,2)
);
"""

NEW = """
CREATE TABLE customers (
  id INT PRIMARY KEY,
  name TEXT NOT NULL,
  email VARCHAR(255),
  phone VARCHAR(40)
);
CREATE TABLE orders (
  id INT PRIMARY KEY,
  customer_id INT REFERENCES customers (id),
  total DECIMAL(10,2),
  placed_at TIMESTAMP
);
CREATE TABLE invoices (
  id INT PRIMARY KEY,
  order_id INT REFERENCES orders (id),
  issued_on DATE
);
"""


def main() -> None:
    old_schema = build_schema(parse_script(OLD))
    new_schema = build_schema(parse_script(NEW))

    # 1. The logical diff — what the paper would measure.
    delta = diff_schemas(old_schema, new_schema)
    print(f"affected attributes: {delta.total_affected} "
          f"({delta.expansion_count} expansion, "
          f"{delta.maintenance_count} maintenance)")
    for change in delta:
        print(f"  {change.kind.value:18s} "
              f"{change.table}.{change.attribute}"
              + (f"  [{change.detail}]" if change.detail else ""))

    # 2. The migration script.
    script = migration_script(old_schema, new_schema,
                              dialect=Dialect.POSTGRES)
    print("\n--- migration script " + "-" * 40)
    print(script)

    # 3. Prove it: apply the script to the old schema.
    builder = SchemaBuilder()
    builder.apply_script(parse_script(OLD))
    builder.apply_script(parse_script(script, Dialect.POSTGRES))
    migrated = builder.snapshot()
    verification = diff_schemas(migrated, new_schema)
    print("--- verification " + "-" * 44)
    print(f"diff(migrated, target) affected attributes: "
          f"{verification.total_affected} (must be 0)")
    assert verification.total_affected == 0

    # 4. Rename-aware migration.
    renamed = NEW.replace("customers", "clients")
    script = migration_script(
        new_schema, build_schema(parse_script(renamed)),
        options=DiffOptions(detect_renames=True))
    print("\n--- rename-aware migration " + "-" * 34)
    print(script)


if __name__ == "__main__":
    main()
