"""Quickstart: from raw DDL history to a schema-evolution pattern.

Builds a small project history in memory, measures its heartbeat,
quantizes the metrics and classifies the timing pattern — the complete
public-API tour in ~60 lines.

Run:  python examples/quickstart.py
"""

from datetime import datetime

from repro.history import Commit, SchemaHistory
from repro.labels import label_profile
from repro.metrics import ProjectProfile
from repro.patterns import classify_with_tolerance, family_of
from repro.viz import annotated_chart

# --- 1. A project's DDL history: each commit carries the whole file. ---

V1 = """
CREATE TABLE users (
  id INT PRIMARY KEY AUTO_INCREMENT,
  email VARCHAR(255) NOT NULL UNIQUE,
  created_at TIMESTAMP DEFAULT CURRENT_TIMESTAMP
);
"""

V2 = V1 + """
CREATE TABLE posts (
  id INT PRIMARY KEY,
  author_id INT REFERENCES users (id) ON DELETE CASCADE,
  title VARCHAR(128),
  body TEXT
);
"""

V3 = V2.replace("VARCHAR(128)", "TEXT")  # a type refactoring

history = SchemaHistory(
    "quickstart-blog",
    commits=[
        Commit("v1", datetime(2019, 1, 10), V1),
        Commit("v2", datetime(2019, 2, 21), V2),
        Commit("v3", datetime(2019, 4, 2), V3),
    ],
    # The project itself lives longer than its schema changes.
    project_start=datetime(2019, 1, 1),
    project_end=datetime(2022, 12, 31),
)

# --- 2. Measure: monthly heartbeat, landmarks, activity volumes. -------

profile = ProjectProfile.from_history(history)
marks = profile.landmarks

print(f"project             : {profile.name}")
print(f"lifespan (PUP)      : {marks.pup_months} months")
print(f"schema birth        : month {marks.birth_month} "
      f"({marks.birth_pct:.0%} of life), "
      f"{marks.birth_volume_fraction:.0%} of total activity")
print(f"top band (90%)      : month {marks.top_band_month} "
      f"({marks.top_band_pct:.0%} of life)")
print(f"active growth months: {marks.active_growth_months}")
print(f"total activity      : {profile.total_activity} affected "
      f"attributes ({profile.totals.expansion} expansion / "
      f"{profile.totals.maintenance} maintenance)")

# --- 3. Quantize (Table 1) and classify (Definitions 4.1-4.8). ---------

labeled = label_profile(profile)
result = classify_with_tolerance(labeled)
family = family_of(result.pattern)

print(f"labels              : {labeled.feature_dict()}")
print(f"pattern             : {result.pattern.value}"
      + (" (exception)" if result.is_exception else ""))
print(f"family              : {family.value if family else '-'}")

# --- 4. Visualize the cumulative-progress line (Fig.-3 style). ---------

print()
print(annotated_chart(profile.heartbeat, marks, width=60, height=12,
                      title="cumulative schema evolution progress"))
