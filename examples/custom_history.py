"""Profile your own schema history from files on disk.

Demonstrates the two supported on-disk history formats:

1. a directory of timestamp-named ``.sql`` snapshots
   (``2020-01-15.sql``, ``2020-06-02.sql``, ...), and
2. a JSONL commit log (one commit per line).

The example writes a sample history in both formats into a temporary
directory, loads each back, profiles it, and renders an SVG chart next
to this script.

Run:  python examples/custom_history.py
"""

import tempfile
from datetime import datetime
from pathlib import Path

from repro import quick_profile
from repro.history import (
    Commit,
    SchemaHistory,
    load_history_from_directory,
    load_history_from_jsonl,
    save_history_to_jsonl,
    schema_heartbeat,
)
from repro.patterns import classify_with_tolerance
from repro.viz import svg_chart

SNAPSHOTS = {
    "2020-01-15": """
        CREATE TABLE accounts (id INT PRIMARY KEY, email VARCHAR(255));
        CREATE TABLE sessions (
          token VARCHAR(64) PRIMARY KEY,
          account_id INT REFERENCES accounts (id)
        );
    """,
    "2020-02-03": """
        CREATE TABLE accounts (
          id INT PRIMARY KEY,
          email VARCHAR(255),
          display_name VARCHAR(80)
        );
        CREATE TABLE sessions (
          token VARCHAR(64) PRIMARY KEY,
          account_id INT REFERENCES accounts (id),
          expires_at TIMESTAMP
        );
    """,
    "2021-04-20": """
        CREATE TABLE accounts (
          id INT PRIMARY KEY,
          email VARCHAR(255),
          display_name VARCHAR(80)
        );
        CREATE TABLE sessions (
          token VARCHAR(64) PRIMARY KEY,
          account_id INT REFERENCES accounts (id),
          expires_at TIMESTAMP
        );
        CREATE TABLE audit_log (
          id BIGINT PRIMARY KEY,
          account_id INT,
          action VARCHAR(40),
          at TIMESTAMP
        );
    """,
}


def describe(history) -> None:
    labeled = quick_profile(history)
    marks = labeled.profile.landmarks
    result = classify_with_tolerance(labeled)
    print(f"  {history.project_name}: {marks.pup_months} months, "
          f"birth M{marks.birth_month}, "
          f"{labeled.profile.total_activity} affected attributes "
          f"-> {result.pattern.value}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp)

        # Format 1: directory of timestamped snapshots.
        snapshot_dir = base / "snapshots"
        snapshot_dir.mkdir()
        for date, ddl in SNAPSHOTS.items():
            (snapshot_dir / f"{date}.sql").write_text(ddl)
        from_dir = load_history_from_directory(snapshot_dir,
                                               "dir-history")
        print("loaded from .sql directory:")
        describe(from_dir)

        # Format 2: JSONL commit log (write one, read it back).
        jsonl_path = base / "history.jsonl"
        commits = [Commit(sha=date, timestamp=datetime.fromisoformat(date),
                          ddl_text=ddl)
                   for date, ddl in SNAPSHOTS.items()]
        save_history_to_jsonl(
            SchemaHistory("jsonl-history", commits,
                          project_end=datetime(2022, 6, 30)),
            jsonl_path)
        from_jsonl = load_history_from_jsonl(jsonl_path)
        print("loaded from JSONL commit log:")
        describe(from_jsonl)

        # Render the heartbeat as SVG next to this script.
        out = Path(__file__).with_name("custom_history.svg")
        out.write_text(svg_chart(schema_heartbeat(from_jsonl),
                                 title=from_jsonl.project_name))
        print(f"\nwrote chart: {out}")


if __name__ == "__main__":
    main()
