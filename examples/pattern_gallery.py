"""Render one exemplar chart per timing pattern (the paper's Fig. 3).

Generates a small corpus, picks one project per pattern, prints the
ASCII gallery and writes an SVG per pattern next to this script.

Run:  python examples/pattern_gallery.py
"""

from pathlib import Path

from repro.corpus import generate_corpus
from repro.metrics import ProjectProfile
from repro.patterns.taxonomy import REAL_PATTERNS, family_of
from repro.viz import ascii_chart, svg_chart


def main() -> None:
    corpus = generate_corpus(seed=20250325)
    by_pattern = corpus.by_pattern()
    out_dir = Path(__file__).parent

    for pattern in REAL_PATTERNS:
        exemplar = next(p for p in by_pattern[pattern]
                        if not p.is_exception)
        profile = ProjectProfile.from_history(exemplar.history,
                                              source=exemplar.source)
        family = family_of(pattern)
        title = (f"{pattern.value}  [{family.value}]  "
                 f"— {exemplar.name}, {profile.pup_months} months, "
                 f"{profile.total_activity} affected attributes")
        print(ascii_chart(profile.heartbeat, source=profile.source,
                          width=64, height=12, title=title))
        print()

        slug = pattern.value.lower().replace(" ", "_")
        svg_path = out_dir / f"gallery_{slug}.svg"
        svg_path.write_text(svg_chart(profile.heartbeat,
                                      source=profile.source,
                                      title=pattern.value))
    print(f"SVG charts written next to {__file__}")


if __name__ == "__main__":
    main()
