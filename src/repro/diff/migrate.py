"""Generate migration DDL from a schema diff.

The inverse of the diff engine: given two schema versions, emit DDL that
transforms the old one into the new one. Useful on its own (pairs with
``repro-schema diff``) and as a strong self-check: *parsing and applying
the generated script to the old schema must reproduce the new schema* —
a property the test suite verifies for arbitrary schema pairs.

Strategy per surviving table:

* columns are added / dropped / retyped via ALTER TABLE;
* a changed primary key is dropped and re-added;
* changed foreign keys are migrated by dropping **all** of the table's
  FKs (the logical model keeps them unnamed, so they pop LIFO) and
  re-adding the new set in order;
* a unique-key change that plain SQL cannot express against unnamed
  constraints triggers a **table rebuild** (DROP + CREATE), the way
  SQLite migration tools operate.

Documented limitation: column *order* inside surviving tables is not
restored (logical-level comparison treats attribute sets, not order).
"""

from __future__ import annotations

from repro.diff.engine import DiffOptions, diff_schemas
from repro.schema.model import Attribute, Schema, Table
from repro.sqlddl import ast_nodes as ast
from repro.sqlddl.dialect import Dialect
from repro.sqlddl.writer import write_statement


def _column_def(attr: Attribute) -> ast.ColumnDef:
    return ast.ColumnDef(name=attr.name, data_type=attr.data_type,
                         not_null=attr.not_null)


def _create_table_statement(table: Table) -> ast.CreateTable:
    columns = tuple(_column_def(a) for a in table.attributes)
    constraints: list[ast.TableConstraint] = []
    if table.primary_key:
        constraints.append(
            ast.PrimaryKeyConstraint(columns=table.primary_key))
    for fk in table.foreign_keys:
        constraints.append(ast.ForeignKeyConstraint(
            columns=fk.columns, ref_table=fk.ref_table,
            ref_columns=fk.ref_columns))
    for unique in table.unique_keys:
        constraints.append(ast.UniqueConstraint(columns=unique))
    return ast.CreateTable(name=table.name, columns=columns,
                           constraints=tuple(constraints))


def _needs_rebuild(old: Table, new: Table) -> bool:
    """True when the unique-key change is not expressible via ALTER
    against unnamed constraints (only additive changes are)."""
    kept = [u for u in old.unique_keys if u in new.unique_keys]
    added = [u for u in new.unique_keys if u not in old.unique_keys]
    return tuple(kept + added) != new.unique_keys \
        or len(kept) != len(old.unique_keys)


def _alter_actions(old: Table, new: Table) -> list[ast.AlterAction]:
    """ALTER actions transforming ``old`` into ``new`` (same name,
    rebuild cases excluded by the caller)."""
    actions: list[ast.AlterAction] = []
    old_attrs = {a.name: a for a in old.attributes}
    new_attrs = {a.name: a for a in new.attributes}

    for attr in old.attributes:
        if attr.name not in new_attrs:
            actions.append(ast.DropColumn(name=attr.name))
    for attr in new.attributes:
        before = old_attrs.get(attr.name)
        if before is None:
            actions.append(ast.AddColumn(column=_column_def(attr)))
            continue
        if before.data_type != attr.data_type:
            actions.append(ast.AlterColumnType(
                name=attr.name,
                data_type=attr.data_type or ast.DataType("TEXT")))
        if before.not_null != attr.not_null \
                and not attr.in_primary_key:
            actions.append(ast.AlterColumnNullability(
                name=attr.name, not_null=attr.not_null))

    if old.primary_key != new.primary_key:
        if old.primary_key:
            actions.append(ast.DropConstraint(name=None,
                                              kind="primary key"))
        if new.primary_key:
            actions.append(ast.AddConstraint(
                constraint=ast.PrimaryKeyConstraint(
                    columns=new.primary_key)))

    # A column leaving the PK needs its nullability pinned explicitly:
    # the PK was forcing NOT NULL in the snapshot regardless of what the
    # underlying declaration said.
    for attr in new.attributes:
        before = old_attrs.get(attr.name)
        if before is not None and before.in_primary_key \
                and not attr.in_primary_key:
            actions.append(ast.AlterColumnNullability(
                name=attr.name, not_null=attr.not_null))

    fks_after_column_ops = tuple(
        fk for fk in old.foreign_keys
        if all(c in new_attrs for c in fk.columns))
    if fks_after_column_ops != new.foreign_keys:
        # Unnamed FKs pop LIFO in the builder: dropping them all and
        # re-adding the target set in order is always exact.
        for index in range(len(fks_after_column_ops)):
            actions.append(ast.DropConstraint(
                name=f"fk_{index}", kind="foreign key"))
        for fk in new.foreign_keys:
            actions.append(ast.AddConstraint(
                constraint=ast.ForeignKeyConstraint(
                    columns=fk.columns, ref_table=fk.ref_table,
                    ref_columns=fk.ref_columns)))

    for unique in new.unique_keys:
        if unique not in old.unique_keys:
            actions.append(ast.AddConstraint(
                constraint=ast.UniqueConstraint(columns=unique)))
    return actions


def migration_statements(old: Schema, new: Schema,
                         options: DiffOptions | None = None
                         ) -> list[ast.Statement]:
    """The DDL statements that transform ``old`` into ``new``.

    Rename detection (when enabled in ``options``) emits
    ``ALTER TABLE ... RENAME TO`` instead of drop + create pairs.
    """
    options = options or DiffOptions()
    delta = diff_schemas(old, new, options)
    statements: list[ast.Statement] = []

    if delta.tables_dropped:
        statements.append(ast.DropTable(names=delta.tables_dropped))
    for old_name, new_name in delta.tables_renamed:
        statements.append(ast.AlterTable(
            name=old_name,
            actions=(ast.RenameTable(new_name=new_name),)))

    new_tables = new.as_dict()
    old_tables = old.as_dict()
    renamed_map = dict(delta.tables_renamed)
    for name in delta.tables_added:
        statements.append(_create_table_statement(new_tables[name]))

    for table in new.tables:
        if table.name in delta.tables_added:
            continue
        source_name = table.name
        for renamed_old, renamed_new in renamed_map.items():
            if renamed_new == table.name:
                source_name = renamed_old
        source = old_tables.get(source_name)
        if source is None:
            continue
        if _needs_rebuild(source, table):
            statements.append(ast.DropTable(names=(table.name,)))
            statements.append(_create_table_statement(table))
            continue
        actions = _alter_actions(source, table)
        if actions:
            statements.append(ast.AlterTable(name=table.name,
                                             actions=tuple(actions)))

    for view in delta.views_dropped:
        statements.append(ast.DropView(names=(view,)))
    for view in delta.views_added:
        statements.append(ast.CreateView(
            name=view,
            query="SELECT 1 -- body unknown at the logical level"))
    return statements


def migration_script(old: Schema, new: Schema,
                     options: DiffOptions | None = None,
                     dialect: Dialect = Dialect.GENERIC) -> str:
    """Render the migration as executable SQL text."""
    statements = migration_statements(old, new, options)
    if not statements:
        return "-- schemas are logically identical; nothing to do\n"
    return "\n".join(write_statement(s, dialect) + ";"
                     for s in statements) + "\n"
