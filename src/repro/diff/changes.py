"""Change taxonomy for logical schema diffs.

The taxonomy follows Section 3.2 of the paper: the unit of measurement is
the *affected attribute*, and each affected attribute falls into exactly
one of six kinds, grouped into *expansion* and *maintenance*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ChangeKind(enum.Enum):
    """How one attribute was affected between two schema versions."""

    #: Attribute appeared because its whole table was created.
    BORN_WITH_TABLE = "born_with_table"
    #: Attribute was added to a pre-existing table.
    INJECTED = "injected"
    #: Attribute disappeared because its whole table was dropped.
    DELETED_WITH_TABLE = "deleted_with_table"
    #: Attribute was removed from a surviving table.
    EJECTED = "ejected"
    #: Attribute's data type changed.
    TYPE_CHANGED = "type_changed"
    #: Attribute's participation in a primary/foreign key changed.
    KEY_CHANGED = "key_changed"

    @property
    def is_expansion(self) -> bool:
        """True for the growth-side kinds (births and injections)."""
        return self in EXPANSION_KINDS

    @property
    def is_maintenance(self) -> bool:
        """True for the maintenance-side kinds."""
        return self in MAINTENANCE_KINDS


#: All kinds in their stable dense order (sorted by enum value, the same
#: ordering ``ChangeBreakdown.by_kind`` always used). Index ``i`` of any
#: flat per-kind count vector refers to ``KIND_ORDER[i]``.
KIND_ORDER: tuple[ChangeKind, ...] = tuple(
    sorted(ChangeKind, key=lambda kind: kind.value))

#: Dense index per kind — the dict counterpart of ``kind.dense_index``.
KIND_INDEX: dict[ChangeKind, int] = {
    kind: index for index, kind in enumerate(KIND_ORDER)
}

#: Number of change kinds (length of every flat count vector).
N_KINDS = len(KIND_ORDER)

# Stamp the dense index onto the members themselves: the columnar
# kernels read ``change.kind.dense_index`` in tight loops, and a plain
# attribute load beats any dict/enum-hash lookup.
for _index, _kind in enumerate(KIND_ORDER):
    _kind.dense_index = _index
del _index, _kind


#: Expansion = attribute birth with new tables, or injection into existing
#: ones (paper §6.3).
EXPANSION_KINDS = frozenset({
    ChangeKind.BORN_WITH_TABLE,
    ChangeKind.INJECTED,
})

#: Maintenance = attribute deletion, data type or key change (paper §6.3).
MAINTENANCE_KINDS = frozenset({
    ChangeKind.DELETED_WITH_TABLE,
    ChangeKind.EJECTED,
    ChangeKind.TYPE_CHANGED,
    ChangeKind.KEY_CHANGED,
})

#: Dense indexes of the expansion kinds, for positional sums over flat
#: count vectors (sorted so the sums are deterministic).
EXPANSION_INDEXES: tuple[int, ...] = tuple(
    sorted(KIND_INDEX[kind] for kind in EXPANSION_KINDS))

#: Dense indexes of the maintenance kinds.
MAINTENANCE_INDEXES: tuple[int, ...] = tuple(
    sorted(KIND_INDEX[kind] for kind in MAINTENANCE_KINDS))


@dataclass(frozen=True, slots=True)
class AttributeChange:
    """One affected attribute.

    Attributes:
        kind: the change category.
        table: name of the table holding the attribute (the *new* table
            name for renames).
        attribute: the affected attribute's name.
        detail: optional human-readable before/after description.
    """

    kind: ChangeKind
    table: str
    attribute: str
    detail: str | None = None


@dataclass(frozen=True, slots=True)
class SchemaDiff:
    """The full logical difference between two schema versions.

    Attributes:
        changes: every affected attribute, in deterministic order
            (tables sorted, attributes in declaration order).
        tables_added: names of tables present only in the new version.
        tables_dropped: names of tables present only in the old version.
        tables_renamed: (old, new) pairs when rename detection matched.
    """

    changes: tuple[AttributeChange, ...]
    tables_added: tuple[str, ...] = ()
    tables_dropped: tuple[str, ...] = ()
    tables_renamed: tuple[tuple[str, str], ...] = ()
    #: Views appearing/disappearing between versions. Views are tracked
    #: by name and do NOT contribute to ``total_affected`` (the paper's
    #: unit counts attributes only).
    views_added: tuple[str, ...] = ()
    views_dropped: tuple[str, ...] = ()

    @property
    def total_affected(self) -> int:
        """Total number of attribute-change events — the paper's unit."""
        return len(self.changes)

    @property
    def expansion_count(self) -> int:
        """Number of expansion-side events."""
        return sum(1 for c in self.changes if c.kind.is_expansion)

    @property
    def maintenance_count(self) -> int:
        """Number of maintenance-side events."""
        return sum(1 for c in self.changes if c.kind.is_maintenance)

    @property
    def is_empty(self) -> bool:
        """True when nothing changed at the logical level."""
        return not self.changes and not self.tables_renamed

    def kind_counts_flat(self) -> tuple[int, ...]:
        """Event counts as a flat vector in :data:`KIND_ORDER` order.

        The columnar counterpart of :meth:`by_kind`: one list index per
        kind, no enum hashing. This is what the heartbeat accumulates.
        """
        counts = [0] * N_KINDS
        for change in self.changes:
            counts[change.kind.dense_index] += 1
        return tuple(counts)

    def by_kind(self) -> dict[ChangeKind, int]:
        """Event counts per change kind (zero-count kinds included)."""
        return dict(zip(KIND_ORDER, self.kind_counts_flat()))

    def __len__(self) -> int:
        return len(self.changes)

    def __iter__(self):
        return iter(self.changes)


#: A diff in which nothing happened.
EMPTY_DIFF = SchemaDiff(changes=())
