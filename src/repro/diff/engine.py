"""Compute the logical diff between two schema versions.

Tables are matched by normalized name; optionally, a rename-detection pass
re-matches dropped/added table pairs whose attribute sets are nearly
identical, so that a pure ``RENAME TABLE`` does not show up as a mass
delete + mass create (an option the paper's toolchain also provides).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.diff.changes import AttributeChange, ChangeKind, SchemaDiff
from repro.schema.model import Attribute, Schema, Table


@dataclass(frozen=True, slots=True)
class DiffOptions:
    """Tuning knobs for the diff engine.

    Attributes:
        detect_renames: when True, a dropped table and an added table whose
            attribute-name sets have Jaccard similarity at least
            ``rename_threshold`` are treated as the same (renamed) table.
        rename_threshold: minimum Jaccard similarity for a rename match.
        track_nullability: when True, NOT NULL flips are reported as
            TYPE_CHANGED events (constraint change on the attribute).
    """

    detect_renames: bool = False
    rename_threshold: float = 0.8
    track_nullability: bool = False


def _jaccard(left: frozenset[str], right: frozenset[str]) -> float:
    if not left and not right:
        return 1.0
    union = left | right
    return len(left & right) / len(union)


def _match_renames(dropped: list[Table], added: list[Table],
                   threshold: float) -> list[tuple[Table, Table]]:
    """Greedy best-first matching of dropped->added tables by similarity."""
    candidates: list[tuple[float, Table, Table]] = []
    new_names = [(new, frozenset(new.attribute_names)) for new in added]
    for old in dropped:
        old_names = frozenset(old.attribute_names)
        for new, names in new_names:
            score = _jaccard(old_names, names)
            if score >= threshold:
                candidates.append((score, old, new))
    candidates.sort(key=lambda item: (-item[0], item[1].name, item[2].name))
    matched: list[tuple[Table, Table]] = []
    used_old: set[str] = set()
    used_new: set[str] = set()
    for score, old, new in candidates:
        if old.name in used_old or new.name in used_new:
            continue
        matched.append((old, new))
        used_old.add(old.name)
        used_new.add(new.name)
    return matched


def _diff_common_table(old: Table, new: Table,
                       options: DiffOptions) -> list[AttributeChange]:
    """Diff two versions of one (matched) table."""
    old_attrs = {a.name: a for a in old.attributes}
    new_attrs = {a.name: a for a in new.attributes}
    # Single pass over new.attributes, collecting injected and modified
    # separately so the emitted order stays injected -> ejected -> modified.
    injected: list[AttributeChange] = []
    modified: list[AttributeChange] = []
    for attr in new.attributes:
        before = old_attrs.get(attr.name)
        if before is None:
            injected.append(AttributeChange(
                ChangeKind.INJECTED, new.name, attr.name))
        else:
            modified.extend(_diff_attribute(before, attr, new.name, options))
    ejected = [AttributeChange(ChangeKind.EJECTED, new.name, attr.name)
               for attr in old.attributes if attr.name not in new_attrs]
    return injected + ejected + modified


def _diff_attribute(before: Attribute, after: Attribute, table: str,
                    options: DiffOptions) -> list[AttributeChange]:
    """Compare one surviving attribute across versions."""
    changes: list[AttributeChange] = []
    if before.data_type != after.data_type:
        changes.append(AttributeChange(
            ChangeKind.TYPE_CHANGED, table, after.name,
            detail=f"{_render_type(before)} -> {_render_type(after)}"))
    elif options.track_nullability and before.not_null != after.not_null:
        changes.append(AttributeChange(
            ChangeKind.TYPE_CHANGED, table, after.name,
            detail=f"not_null {before.not_null} -> {after.not_null}"))
    if (before.in_primary_key != after.in_primary_key
            or before.in_foreign_key != after.in_foreign_key):
        changes.append(AttributeChange(
            ChangeKind.KEY_CHANGED, table, after.name,
            detail=(f"pk {before.in_primary_key}->{after.in_primary_key}, "
                    f"fk {before.in_foreign_key}->{after.in_foreign_key}")))
    return changes


def _render_type(attr: Attribute) -> str:
    return attr.data_type.render() if attr.data_type else "<untyped>"


def diff_schemas(old: Schema, new: Schema,
                 options: DiffOptions | None = None) -> SchemaDiff:
    """Compute the logical diff from ``old`` to ``new``.

    Args:
        old: the earlier schema version (may be empty).
        new: the later schema version (may be empty).
        options: diff tuning; defaults to name-only matching.

    Returns:
        A :class:`~repro.diff.changes.SchemaDiff` whose ``changes`` list
        the affected attributes in deterministic order.
    """
    options = options or DiffOptions()
    old_tables = old.as_dict()
    new_tables = new.as_dict()

    added = [t for t in new.tables if t.name not in old_tables]
    dropped = [t for t in old.tables if t.name not in new_tables]
    common = [(old_tables[t.name], t) for t in new.tables
              if t.name in old_tables]

    renamed: list[tuple[Table, Table]] = []
    if options.detect_renames and added and dropped:
        renamed = _match_renames(dropped, added, options.rename_threshold)
        renamed_old = {o.name for o, _ in renamed}
        renamed_new = {n.name for _, n in renamed}
        added = [t for t in added if t.name not in renamed_new]
        dropped = [t for t in dropped if t.name not in renamed_old]
        common.extend(renamed)

    changes: list[AttributeChange] = []
    for table in sorted(added, key=lambda t: t.name):
        for attr in table.attributes:
            changes.append(AttributeChange(
                ChangeKind.BORN_WITH_TABLE, table.name, attr.name))
    for table in sorted(dropped, key=lambda t: t.name):
        for attr in table.attributes:
            changes.append(AttributeChange(
                ChangeKind.DELETED_WITH_TABLE, table.name, attr.name))
    for old_table, new_table in sorted(common,
                                       key=lambda pair: pair[1].name):
        # Identity fast path: the incremental materializer hands back
        # the exact same frozen Table object for unchanged tables, so
        # attribute-level diffing can be skipped outright and diff cost
        # scales with the delta, not the schema size.
        if old_table is new_table:
            continue
        changes.extend(_diff_common_table(old_table, new_table, options))

    old_views = set(old.views)
    new_views = set(new.views)
    return SchemaDiff(
        changes=tuple(changes),
        tables_added=tuple(sorted(t.name for t in added)),
        tables_dropped=tuple(sorted(t.name for t in dropped)),
        tables_renamed=tuple(sorted((o.name, n.name) for o, n in renamed)),
        views_added=tuple(sorted(new_views - old_views)),
        views_dropped=tuple(sorted(old_views - new_views)),
    )
