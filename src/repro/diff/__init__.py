"""Logical schema diff engine.

Computes the paper's unit of schema evolution: the set of **affected
attributes** between two schema versions, categorized as

* expansion — attributes *born with new tables* or *injected* into
  existing tables;
* maintenance — attributes *deleted with removed tables*, *ejected* from
  surviving tables, with their *data type changed*, or with their
  *participation in a primary/foreign key updated*.

Typical usage::

    from repro.diff import diff_schemas

    delta = diff_schemas(old_schema, new_schema)
    delta.total_affected, delta.expansion_count, delta.maintenance_count
"""

from repro.diff.changes import (
    AttributeChange,
    ChangeKind,
    EXPANSION_KINDS,
    MAINTENANCE_KINDS,
    SchemaDiff,
)
from repro.diff.engine import DiffOptions, diff_schemas
from repro.diff.migrate import migration_script, migration_statements
from repro.diff.stats import ChangeBreakdown, breakdown, combine_breakdowns

__all__ = [
    "AttributeChange",
    "ChangeBreakdown",
    "ChangeKind",
    "DiffOptions",
    "EXPANSION_KINDS",
    "MAINTENANCE_KINDS",
    "SchemaDiff",
    "breakdown",
    "combine_breakdowns",
    "diff_schemas",
    "migration_script",
    "migration_statements",
]
