"""Aggregation of schema diffs into change-volume statistics.

A :class:`ChangeBreakdown` is the per-transition (or per-month, or
per-project) summary the metrics layer consumes: total affected
attributes, the expansion/maintenance split and the per-kind counts.

Counts are stored **columnar**: one flat ``tuple[int, ...]`` in the
stable dense order of :data:`repro.diff.changes.KIND_ORDER`. The
``by_kind`` / ``counts`` views derive from it for compatibility, and
``total`` / ``expansion`` / ``maintenance`` are precomputed once at
construction instead of re-summed per access — breakdown arithmetic on
the heartbeat hot path is positional integer adds, with no dict or
enum-hash traffic at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.diff.changes import (
    EXPANSION_INDEXES,
    KIND_ORDER,
    N_KINDS,
    ChangeKind,
    SchemaDiff,
)


@dataclass(frozen=True, slots=True)
class ChangeBreakdown:
    """Counts of affected attributes by change kind.

    Attributes:
        flat: events per kind, in :data:`KIND_ORDER` order (dense index
            ``kind.dense_index`` addresses one slot).
        total: total affected attributes (precomputed).
        expansion: expansion-side events (precomputed).
        maintenance: maintenance-side events (precomputed).
    """

    flat: tuple[int, ...]
    total: int = field(init=False, compare=False, repr=False)
    expansion: int = field(init=False, compare=False, repr=False)
    maintenance: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        if len(self.flat) != N_KINDS:
            raise ValueError(
                f"a breakdown needs {N_KINDS} per-kind slots, "
                f"got {len(self.flat)}")
        total = sum(self.flat)
        expansion = sum(self.flat[i] for i in EXPANSION_INDEXES)
        object.__setattr__(self, "total", total)
        object.__setattr__(self, "expansion", expansion)
        object.__setattr__(self, "maintenance", total - expansion)

    @property
    def by_kind(self) -> tuple[tuple[ChangeKind, int], ...]:
        """The counts as (kind, count) pairs in dense-kind order."""
        return tuple(zip(KIND_ORDER, self.flat))

    @property
    def counts(self) -> dict[ChangeKind, int]:
        """The per-kind counts as a dict (fresh copy)."""
        return dict(zip(KIND_ORDER, self.flat))

    @property
    def expansion_fraction(self) -> float:
        """Share of expansion in the total; 0.0 for an empty breakdown."""
        total = self.total
        return self.expansion / total if total else 0.0

    def count(self, kind: ChangeKind) -> int:
        """Events of one kind (O(1) indexed read)."""
        return self.flat[kind.dense_index]

    @classmethod
    def from_flat(cls, flat: Iterable[int]) -> "ChangeBreakdown":
        """Build a breakdown from a flat count vector in kind order."""
        return cls(flat=tuple(flat))

    @classmethod
    def from_counts(cls, counts: dict[ChangeKind, int]) -> "ChangeBreakdown":
        """Build a breakdown from a (possibly partial) per-kind dict."""
        return cls(flat=tuple(counts.get(kind, 0) for kind in KIND_ORDER))

    @classmethod
    def empty(cls) -> "ChangeBreakdown":
        """The breakdown with zero events everywhere (shared singleton)."""
        return EMPTY_BREAKDOWN


#: The all-zero breakdown. Months without changes share this one object
#: instead of allocating a fresh zero vector each (the common case:
#: most project months are inactive).
EMPTY_BREAKDOWN = ChangeBreakdown(flat=(0,) * N_KINDS)


def breakdown(diff: SchemaDiff) -> ChangeBreakdown:
    """Summarize one diff into a :class:`ChangeBreakdown`."""
    return ChangeBreakdown(flat=diff.kind_counts_flat())


def combine_breakdowns(items: Iterable[ChangeBreakdown]) -> ChangeBreakdown:
    """Sum several breakdowns (e.g. all transitions of one month)."""
    totals = [0] * N_KINDS
    for item in items:
        flat = item.flat
        for index in range(N_KINDS):
            totals[index] += flat[index]
    return ChangeBreakdown(flat=tuple(totals))
