"""Aggregation of schema diffs into change-volume statistics.

A :class:`ChangeBreakdown` is the per-transition (or per-month, or
per-project) summary the metrics layer consumes: total affected
attributes, the expansion/maintenance split and the per-kind counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.diff.changes import ChangeKind, SchemaDiff


@dataclass(frozen=True, slots=True)
class ChangeBreakdown:
    """Counts of affected attributes by change kind.

    Attributes:
        by_kind: events per :class:`ChangeKind` (all kinds present).
    """

    by_kind: tuple[tuple[ChangeKind, int], ...]

    @property
    def counts(self) -> dict[ChangeKind, int]:
        """The per-kind counts as a dict (fresh copy)."""
        return dict(self.by_kind)

    @property
    def total(self) -> int:
        """Total affected attributes."""
        return sum(count for _, count in self.by_kind)

    @property
    def expansion(self) -> int:
        """Affected attributes on the expansion side (births + injections)."""
        return sum(count for kind, count in self.by_kind
                   if kind.is_expansion)

    @property
    def maintenance(self) -> int:
        """Affected attributes on the maintenance side."""
        return sum(count for kind, count in self.by_kind
                   if kind.is_maintenance)

    @property
    def expansion_fraction(self) -> float:
        """Share of expansion in the total; 0.0 for an empty breakdown."""
        total = self.total
        return self.expansion / total if total else 0.0

    def count(self, kind: ChangeKind) -> int:
        """Events of one kind."""
        return self.counts.get(kind, 0)

    @classmethod
    def from_counts(cls, counts: dict[ChangeKind, int]) -> "ChangeBreakdown":
        """Build a breakdown from a (possibly partial) per-kind dict."""
        full = {kind: counts.get(kind, 0) for kind in ChangeKind}
        return cls(by_kind=tuple(sorted(full.items(),
                                        key=lambda item: item[0].value)))

    @classmethod
    def empty(cls) -> "ChangeBreakdown":
        """A breakdown with zero events everywhere."""
        return cls.from_counts({})


def breakdown(diff: SchemaDiff) -> ChangeBreakdown:
    """Summarize one diff into a :class:`ChangeBreakdown`."""
    return ChangeBreakdown.from_counts(diff.by_kind())


def combine_breakdowns(items: Iterable[ChangeBreakdown]) -> ChangeBreakdown:
    """Sum several breakdowns (e.g. all transitions of one month)."""
    totals = {kind: 0 for kind in ChangeKind}
    for item in items:
        for kind, count in item.by_kind:
            totals[kind] += count
    return ChangeBreakdown.from_counts(totals)
