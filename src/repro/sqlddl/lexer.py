"""Hand-written lexer for SQL DDL scripts.

The lexer understands the comment and quoting conventions that actually
occur in FOSS ``.sql`` dumps:

* ``-- line comments`` and ``/* block comments */`` (everywhere),
* ``# line comments`` (MySQL),
* backtick / double-quote / bracket quoted identifiers, with doubled-quote
  escapes (``"a""b"`` is the identifier ``a"b``),
* single-quoted strings with doubled-quote and backslash escapes,
* integer, decimal and scientific-notation numeric literals,
* everything else as single-character punctuation.

The lexer is deliberately permissive: it never tries to validate SQL, it
only slices it into tokens. Characters it genuinely cannot place (e.g. a
stray ``\\x00``) raise :class:`~repro.errors.LexError` — but the robust
script parser catches those per-statement.
"""

from __future__ import annotations

import re
import sys

from repro.errors import LexError
from repro.sqlddl.dialect import Dialect
from repro.sqlddl.tokens import Token, TokenType

# Backslash appears in pg_dump COPY terminators (`\.`); treating it as
# punctuation lets the robust script parser skip those lines instead of
# failing the whole file.
_PUNCT_CHARS = set("(),;.=+-*/<>%!&|^~?:@$[]{}\\")
_CLOSING_QUOTE = {"`": "`", '"': '"', "[": "]"}


class Lexer:
    """Tokenizes one SQL script string.

    Args:
        text: the SQL source.
        dialect: dialect whose comment/quoting traits apply.
    """

    def __init__(self, text: str, dialect: Dialect = Dialect.GENERIC):
        self._text = text
        self._dialect = dialect
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokens(self) -> list[Token]:
        """Lex the whole input and return all tokens plus an EOF token."""
        out: list[Token] = []
        while True:
            token = self.next_token()
            out.append(token)
            if token.type is TokenType.EOF:
                return out

    def next_token(self) -> Token:
        """Return the next token, skipping whitespace and comments."""
        self._skip_trivia()
        if self._pos >= len(self._text):
            return Token(TokenType.EOF, "", self._line, self._col)

        ch = self._text[self._pos]
        line, col = self._line, self._col

        if ch in _CLOSING_QUOTE and ch in self._dialect.traits.identifier_quotes:
            # Identifiers and keywords recur massively across the
            # versions of one history; interning collapses them into a
            # shared pool so memoized ASTs alias rather than duplicate.
            value = sys.intern(self._read_quoted(ch, _CLOSING_QUOTE[ch]))
            return Token(TokenType.QUOTED_IDENT, value, line, col)
        if ch == "'":
            value = self._read_string()
            return Token(TokenType.STRING, value, line, col)
        if ch == "$" and self._looks_like_dollar_quote():
            value = self._read_dollar_quoted()
            return Token(TokenType.STRING, value, line, col)
        if ch.isdigit() or (ch == "." and self._peek_is_digit(1)):
            value = self._read_number()
            return Token(TokenType.NUMBER, value, line, col)
        if ch.isalpha() or ch == "_":
            value = sys.intern(self._read_word())
            return Token(TokenType.WORD, value, line, col)
        if ch in _PUNCT_CHARS:
            self._advance()
            return Token(TokenType.PUNCT, ch, line, col)

        raise LexError(f"unexpected character {ch!r}", line, col)

    # ------------------------------------------------------------------
    # internals

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos < len(self._text):
                if self._text[self._pos] == "\n":
                    self._line += 1
                    self._col = 1
                else:
                    self._col += 1
                self._pos += 1

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < len(self._text) else ""

    def _peek_is_digit(self, offset: int) -> bool:
        ch = self._peek(offset)
        return bool(ch) and ch.isdigit()

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments until real content (or EOF)."""
        while self._pos < len(self._text):
            ch = self._text[self._pos]
            if ch.isspace():
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                self._skip_line()
            elif ch == "#" and self._dialect.traits.hash_comments:
                self._skip_line()
            elif ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            else:
                return

    def _skip_line(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos] != "\n":
            self._advance()

    def _skip_block_comment(self) -> None:
        start_line, start_col = self._line, self._col
        self._advance(2)  # consume /*
        while self._pos < len(self._text):
            if self._text[self._pos] == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        raise LexError("unterminated block comment", start_line, start_col)

    def _read_quoted(self, open_char: str, close_char: str) -> str:
        start_line, start_col = self._line, self._col
        self._advance()  # opening quote
        parts: list[str] = []
        while self._pos < len(self._text):
            ch = self._text[self._pos]
            if ch == close_char:
                if self._peek(1) == close_char and open_char != "[":
                    parts.append(close_char)
                    self._advance(2)
                    continue
                self._advance()
                return "".join(parts)
            parts.append(ch)
            self._advance()
        raise LexError("unterminated quoted identifier", start_line, start_col)

    def _read_string(self) -> str:
        start_line, start_col = self._line, self._col
        self._advance()  # opening '
        parts: list[str] = []
        while self._pos < len(self._text):
            ch = self._text[self._pos]
            if ch == "\\" and self._peek(1):
                parts.append(self._peek(1))
                self._advance(2)
                continue
            if ch == "'":
                if self._peek(1) == "'":
                    parts.append("'")
                    self._advance(2)
                    continue
                self._advance()
                return "".join(parts)
            parts.append(ch)
            self._advance()
        raise LexError("unterminated string literal", start_line, start_col)

    def _looks_like_dollar_quote(self) -> bool:
        """True when the cursor sits on a PostgreSQL dollar quote:
        ``$$`` or ``$tag$`` (tag = identifier characters)."""
        offset = 1
        while True:
            ch = self._peek(offset)
            if ch == "$":
                return True
            if not ch or not (ch.isalnum() or ch == "_"):
                return False
            offset += 1

    def _read_dollar_quoted(self) -> str:
        """Read a ``$tag$ ... $tag$`` string, returning its body."""
        start_line, start_col = self._line, self._col
        self._advance()  # opening $
        tag_chars: list[str] = []
        while self._pos < len(self._text) and self._text[self._pos] != "$":
            tag_chars.append(self._text[self._pos])
            self._advance()
        self._advance()  # closing $ of the opening delimiter
        delimiter = "$" + "".join(tag_chars) + "$"
        body_start = self._pos
        end = self._text.find(delimiter, body_start)
        if end < 0:
            raise LexError("unterminated dollar-quoted string",
                           start_line, start_col)
        body = self._text[body_start:end]
        self._advance(end - body_start + len(delimiter))
        return body

    def _read_number(self) -> str:
        parts: list[str] = []
        seen_dot = False
        seen_exp = False
        while self._pos < len(self._text):
            ch = self._text[self._pos]
            if ch.isdigit():
                parts.append(ch)
            elif ch == "." and not seen_dot and not seen_exp:
                seen_dot = True
                parts.append(ch)
            elif ch in "eE" and not seen_exp and parts and parts[-1].isdigit():
                nxt = self._peek(1)
                nxt2 = self._peek(2)
                if nxt.isdigit() or (nxt in "+-" and nxt2.isdigit()):
                    seen_exp = True
                    parts.append(ch)
                else:
                    break
            elif ch in "+-" and parts and parts[-1] in "eE":
                parts.append(ch)
            else:
                break
            self._advance()
        return "".join(parts)

    def _read_word(self) -> str:
        start = self._pos
        while self._pos < len(self._text):
            ch = self._text[self._pos]
            if ch.isalnum() or ch in "_$":
                self._advance()
            else:
                break
        return self._text[start:self._pos]


# ----------------------------------------------------------------------
# regex fast path
#
# One master regex per dialect lexes the overwhelmingly common token
# shapes in a single :meth:`re.Pattern.finditer` sweep. The fast path is
# *conservative*: its character classes are ASCII-only and it knows
# nothing about dollar quotes, so any input the master pattern cannot
# cover contiguously (a gap between matches, or a tail it cannot reach)
# makes :func:`_fast_lex` return None and the whole text re-lexes through
# the classic :class:`Lexer` — including its exact LexError messages and
# positions. Anything the fast path *does* return is token-for-token
# identical to the classic result (see tests/sqlddl/test_lexer_fast.py).

#: Number literal, mirroring the classic `_read_number` quirks:
#: one dot max, exponent only directly after a digit, `1.` allowed.
_NUMBER_PATTERN = (
    r"\d+\.\d+(?:[eE][+-]?\d+)?"
    r"|\d+\.(?!\d)"
    r"|\.\d+(?:[eE][+-]?\d+)?"
    r"|\d+(?:[eE][+-]?\d+)?"
)

#: Punctuation the master pattern may claim outright. `$` is absent
#: (possible dollar quote → fallback), `[` is appended per dialect,
#: `-`/`/` are guarded so comment openers never lex as punctuation —
#: an *unterminated* block comment must fall through to the classic
#: LexError rather than tokenize as `/` `*`.
_PUNCT_SAFE = r"[(),;.=+*<>%!&|^~?:@\]{}\\]|-(?!-)|/(?!\*)"
_PUNCT_WITH_BRACKET = r"[(),;.=+*<>%!&|^~?:@\[\]{}\\]|-(?!-)|/(?!\*)"

_STRING_ESCAPE = re.compile(r"\\(.)|''", re.S)


def _string_unescape(match: re.Match) -> str:
    backslashed = match.group(1)
    return backslashed if backslashed is not None else "'"


def _build_master_pattern(dialect: Dialect) -> re.Pattern:
    traits = dialect.traits
    quotes = traits.identifier_quotes
    parts = [
        r"(?P<WS>[ \t\r\n\f\v]+)",
        r"(?P<LINEC>--[^\n]*)",
    ]
    if traits.hash_comments:
        parts.append(r"(?P<HASHC>#[^\n]*)")
    parts.append(r"(?P<BLOCKC>/\*(?s:.*?)\*/)")
    if "`" in quotes:
        parts.append(r"(?P<BTICK>`[^`]*(?:``[^`]*)*`)")
    if '"' in quotes:
        parts.append(r'(?P<DQUOTE>"[^"]*(?:""[^"]*)*")')
    if "[" in quotes:
        parts.append(r"(?P<BRACKET>\[[^\]]*\])")
    parts.append(r"(?P<STRING>'(?:[^'\\]|''|\\(?s:.))*')")
    parts.append(rf"(?P<NUMBER>{_NUMBER_PATTERN})")
    parts.append(r"(?P<WORD>[A-Za-z_][A-Za-z0-9_$]*)")
    # `[` is a quoted-identifier opener in bracket dialects: there an
    # unterminated `[ident` must fall back (classic raises), so it stays
    # out of the punctuation class; elsewhere it is plain punctuation.
    punct = _PUNCT_SAFE if "[" in quotes else _PUNCT_WITH_BRACKET
    parts.append(rf"(?P<PUNCT>{punct})")
    return re.compile("|".join(parts))


_MASTER_PATTERNS: dict[Dialect, re.Pattern] = {}


def _master_pattern(dialect: Dialect) -> re.Pattern:
    pattern = _MASTER_PATTERNS.get(dialect)
    if pattern is None:
        pattern = _MASTER_PATTERNS[dialect] = _build_master_pattern(dialect)
    return pattern


def _fast_lex(text: str, dialect: Dialect) -> list[Token] | None:
    """Lex ``text`` in one regex sweep, or None for the classic path."""
    tokens: list[Token] = []
    append = tokens.append
    intern = sys.intern
    word_type = TokenType.WORD
    punct_type = TokenType.PUNCT
    pos = 0
    line = 1
    last_nl = -1  # index of the last newline seen; col = index - last_nl
    for match in _master_pattern(dialect).finditer(text):
        start = match.start()
        if start != pos:
            return None
        pos = match.end()
        kind = match.lastgroup
        if kind == "WS":
            raw = match.group()
            newlines = raw.count("\n")
            if newlines:
                line += newlines
                last_nl = start + raw.rindex("\n")
        elif kind == "WORD":
            append(Token(word_type, intern(match.group()),
                         line, start - last_nl))
        elif kind == "PUNCT":
            append(Token(punct_type, match.group(), line, start - last_nl))
        elif kind == "NUMBER":
            append(Token(TokenType.NUMBER, match.group(),
                         line, start - last_nl))
        elif kind == "STRING":
            raw = match.group()
            body = raw[1:-1]
            if "\\" in body or "''" in body:
                body = _STRING_ESCAPE.sub(_string_unescape, body)
            append(Token(TokenType.STRING, body, line, start - last_nl))
            newlines = raw.count("\n")
            if newlines:
                line += newlines
                last_nl = start + raw.rindex("\n")
        elif kind in ("BTICK", "DQUOTE", "BRACKET"):
            raw = match.group()
            body = raw[1:-1]
            if kind != "BRACKET":
                quote = raw[0]
                doubled = quote + quote
                if doubled in body:
                    body = body.replace(doubled, quote)
            append(Token(TokenType.QUOTED_IDENT, intern(body),
                         line, start - last_nl))
            newlines = raw.count("\n")
            if newlines:
                line += newlines
                last_nl = start + raw.rindex("\n")
        elif kind == "BLOCKC":
            raw = match.group()
            newlines = raw.count("\n")
            if newlines:
                line += newlines
                last_nl = start + raw.rindex("\n")
        # LINEC / HASHC: cannot contain a newline — nothing to track.
    if pos != len(text):
        return None
    append(Token(TokenType.EOF, "", line, pos - last_nl))
    return tokens


def tokenize(text: str, dialect: Dialect = Dialect.GENERIC) -> list[Token]:
    """Tokenize ``text`` and return all tokens including the final EOF."""
    tokens = _fast_lex(text, dialect)
    if tokens is None:
        return Lexer(text, dialect).tokens()
    return tokens
