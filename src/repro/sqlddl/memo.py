"""Per-history statement memo: content hash → parsed statement.

Parsing dominates the cold pipeline (~93% of records time), yet most of
it is wasted: within one schema history only ~25-30% of statement
instances are unique, because each snapshot repeats the previous one
nearly verbatim. A :class:`StatementMemo` caches the parse result of
every statement span (keyed by the splitter's content hash), so a
statement is parsed once per *history* instead of once per *version*.

Safety: the memo must never change what the pipeline observes. Each
entry is a :class:`ParsedSegment` holding either the frozen statement
AST, the :class:`~repro.sqlddl.ast_nodes.SkippedStatement` that the
classic path would record, or a ``fallback`` marker meaning "this span
cannot be parsed in isolation" (its tokenization fails, or it does not
lex to exactly one statement group). Callers seeing a fallback entry
must re-run the classic whole-file parse for that version, which
reproduces the full-parse behaviour bit for bit.

Module-level hit/miss counters aggregate across all memos in the
process so the execution engine can report them next to its cache
stats (workers ship their deltas back to the parent).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexError
from repro.sqlddl import ast_nodes as ast
from repro.sqlddl.dialect import Dialect
from repro.sqlddl.lexer import tokenize
from repro.sqlddl.parser import _split_statements, parse_token_group
from repro.sqlddl.splitter import Segment

__all__ = [
    "ParsedSegment",
    "StatementMemo",
    "parse_counters",
    "reset_parse_counters",
]

#: Process-global memo counters (sum over every StatementMemo).
_HITS = 0
_MISSES = 0


def parse_counters() -> tuple[int, int]:
    """Process-wide (hits, misses) over all statement memos."""
    return _HITS, _MISSES


def reset_parse_counters() -> None:
    """Zero the process-wide memo counters (tests, worker bookkeeping)."""
    global _HITS, _MISSES
    _HITS = 0
    _MISSES = 0


@dataclass(frozen=True, slots=True)
class ParsedSegment:
    """Parse outcome of one statement span.

    Exactly one of the three shapes holds: ``statement`` set (parsed
    DDL), ``skipped`` set (non-DDL or parse error, as the classic path
    records it), or ``fallback`` True (the span cannot be handled in
    isolation — the caller must full-parse the whole version).
    """

    statement: ast.Statement | None = None
    skipped: ast.SkippedStatement | None = None
    fallback: bool = False


class StatementMemo:
    """Caches parsed statements of one schema history.

    The memo is scoped per history (not global) so its lifetime matches
    the object whose versions it serves, and concurrent per-project
    workers never contend on shared state.
    """

    def __init__(self, dialect: Dialect = Dialect.GENERIC):
        self.dialect = dialect
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, ParsedSegment] = {}

    def parse(self, segment: Segment) -> ParsedSegment:
        """The parse outcome of ``segment``, cached by content hash."""
        global _HITS, _MISSES
        entry = self._entries.get(segment.content_hash)
        if entry is not None:
            self.hits += 1
            _HITS += 1
            return entry
        self.misses += 1
        _MISSES += 1
        entry = self._parse_segment(segment.text)
        self._entries[segment.content_hash] = entry
        return entry

    def _parse_segment(self, text: str) -> ParsedSegment:
        try:
            tokens = tokenize(text, self.dialect)
        except LexError:
            # A span the lexer rejects poisons the whole file in the
            # classic path (one "lex-error" skip, empty schema), which
            # per-segment parsing cannot reproduce — punt to full parse.
            return ParsedSegment(fallback=True)
        groups = _split_statements(tokens)
        if len(groups) != 1:
            # The raw-text split disagreed with the token-level split
            # (zero groups: trivia-only span; several: a semicolon the
            # scanner failed to see). Never silently diverge.
            return ParsedSegment(fallback=True)
        statement, skipped = parse_token_group(groups[0], self.dialect)
        if skipped is not None:
            return ParsedSegment(skipped=skipped)
        return ParsedSegment(statement=statement)
