"""Normalization of identifiers and data types.

Schema histories mix dialects and spellings over time (``INT`` becomes
``INTEGER``, a dump switches from unquoted to backtick-quoted names).
Logical-level diffing must not report such spelling drift as change, so
both the schema builder and the diff engine funnel names and types through
this module first.
"""

from __future__ import annotations

from repro.sqlddl.ast_nodes import DataType

#: Canonical spellings of type names. Anything absent maps to itself.
_TYPE_ALIASES: dict[str, str] = {
    "INT": "INTEGER",
    "INT2": "SMALLINT",
    "INT4": "INTEGER",
    "INT8": "BIGINT",
    "MIDDLEINT": "MEDIUMINT",
    "SERIAL": "INTEGER",
    "SMALLSERIAL": "SMALLINT",
    "BIGSERIAL": "BIGINT",
    "BOOL": "BOOLEAN",
    "CHARACTER VARYING": "VARCHAR",
    "CHARACTER": "CHAR",
    "BIT VARYING": "VARBIT",
    "DOUBLE PRECISION": "DOUBLE",
    "FLOAT4": "REAL",
    "FLOAT8": "DOUBLE",
    "DEC": "DECIMAL",
    "NUMERIC": "DECIMAL",
    "FIXED": "DECIMAL",
    "LONG VARCHAR": "MEDIUMTEXT",
    "LONG VARBINARY": "MEDIUMBLOB",
    "TIMESTAMPTZ": "TIMESTAMP WITH TIME ZONE",
    "TIMETZ": "TIME WITH TIME ZONE",
    "TIMESTAMP WITHOUT TIME ZONE": "TIMESTAMP",
    "TIME WITHOUT TIME ZONE": "TIME",
    "NVARCHAR": "VARCHAR",
    "NCHAR": "CHAR",
    "BYTEA": "BLOB",
}

#: Types whose length parameter is display-only and irrelevant to the
#: logical type (MySQL integer display widths).
_DISPLAY_WIDTH_TYPES = frozenset({
    "TINYINT", "SMALLINT", "MEDIUMINT", "INTEGER", "BIGINT",
})


# Memo tables: schema histories repeat the same few hundred spellings
# hundreds of thousands of times, so each function caches its (pure)
# result keyed on the exact input. Growth is bounded by the corpus
# vocabulary, which is tiny relative to the call volume.
_IDENTIFIER_MEMO: dict[str, str] = {}
_TYPE_NAME_MEMO: dict[str, str] = {}
_TYPE_MEMO: dict[DataType, DataType] = {}


def normalize_identifier(name: str) -> str:
    """Case-fold an identifier for matching across schema versions.

    SQL folds unquoted identifiers (upper in the standard, lower in
    PostgreSQL); FOSS dumps are wildly inconsistent about quoting, so we
    fold *everything* to lower case for matching purposes. The original
    spelling remains available on the AST nodes.
    """
    folded = _IDENTIFIER_MEMO.get(name)
    if folded is None:
        folded = _IDENTIFIER_MEMO[name] = name.strip().lower()
    return folded


def canonical_type_name(name: str) -> str:
    """Map a type-name spelling to its canonical upper-case form."""
    canonical = _TYPE_NAME_MEMO.get(name)
    if canonical is None:
        upper = " ".join(name.upper().split())
        canonical = _TYPE_NAME_MEMO[name] = _TYPE_ALIASES.get(upper, upper)
    return canonical


def canonical_type(data_type: DataType | None) -> DataType | None:
    """Return the canonical form of ``data_type`` for logical comparison.

    Canonicalization maps alias spellings to one name, strips display-only
    integer widths, and drops the ZEROFILL flag (physical-level). The
    UNSIGNED flag is kept: signedness changes the value domain.
    """
    if data_type is None:
        return None
    memoized = _TYPE_MEMO.get(data_type)
    if memoized is not None:
        return memoized
    name = canonical_type_name(data_type.name)
    params = data_type.params
    if name in _DISPLAY_WIDTH_TYPES:
        params = ()
    # BOOLEAN often appears as TINYINT(1) in MySQL dumps.
    if name == "TINYINT" and data_type.params == ("1",):
        canonical = DataType(name="BOOLEAN")
    else:
        canonical = DataType(name=name, params=params,
                             unsigned=data_type.unsigned, zerofill=False)
    _TYPE_MEMO[data_type] = canonical
    return canonical


def types_equal(left: DataType | None, right: DataType | None) -> bool:
    """Logical equality of two declared types after canonicalization."""
    return canonical_type(left) == canonical_type(right)
