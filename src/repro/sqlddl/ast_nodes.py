"""AST node types produced by the DDL parser.

The AST stays close to the *logical* level the paper studies: tables,
columns (attributes), data types, and primary/foreign/unique/check
constraints. Physical details (storage engines, tablespaces, index
methods) are captured as opaque option strings when present and otherwise
ignored.

All nodes are frozen dataclasses so they are hashable and safely shareable
between schema versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


@dataclass(frozen=True, slots=True)
class DataType:
    """A column data type as written, e.g. ``VARCHAR(255)`` or ``DECIMAL(10,2)``.

    Attributes:
        name: upper-cased type name (possibly multi-word, e.g.
            ``DOUBLE PRECISION``); not yet canonicalized — see
            :func:`repro.sqlddl.normalize.canonical_type`.
        params: literal type parameters as written (lengths, precision, or
            enum member strings).
        unsigned: MySQL ``UNSIGNED`` flag.
        zerofill: MySQL ``ZEROFILL`` flag.
    """

    name: str
    params: tuple[str, ...] = ()
    unsigned: bool = False
    zerofill: bool = False

    def render(self) -> str:
        """Render the type back to SQL text."""
        out = self.name
        if self.params:
            out += "(" + ", ".join(self.params) + ")"
        if self.unsigned:
            out += " UNSIGNED"
        if self.zerofill:
            out += " ZEROFILL"
        return out


@dataclass(frozen=True, slots=True)
class ForeignKeyRef:
    """An inline ``REFERENCES`` clause on a column definition."""

    table: str
    columns: tuple[str, ...] = ()
    on_delete: str | None = None
    on_update: str | None = None


@dataclass(frozen=True, slots=True)
class ColumnDef:
    """One column definition inside CREATE TABLE or ALTER TABLE ADD.

    Attributes:
        name: column name as written (case preserved; normalization is the
            schema builder's job).
        data_type: the declared type, or None when the dialect allows
            typeless columns (SQLite).
        not_null: explicit NOT NULL.
        default: DEFAULT expression as raw text, or None.
        primary_key: inline PRIMARY KEY marker.
        unique: inline UNIQUE marker.
        auto_increment: AUTO_INCREMENT / AUTOINCREMENT / SERIAL-implied.
        references: inline foreign-key reference, if any.
        comment: COMMENT 'text' content, if any.
    """

    name: str
    data_type: DataType | None = None
    not_null: bool = False
    default: str | None = None
    primary_key: bool = False
    unique: bool = False
    auto_increment: bool = False
    references: ForeignKeyRef | None = None
    comment: str | None = None


@dataclass(frozen=True, slots=True)
class PrimaryKeyConstraint:
    """Table-level ``PRIMARY KEY (cols)``."""

    columns: tuple[str, ...]
    name: str | None = None


@dataclass(frozen=True, slots=True)
class ForeignKeyConstraint:
    """Table-level ``FOREIGN KEY (cols) REFERENCES t (cols)``."""

    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...] = ()
    name: str | None = None
    on_delete: str | None = None
    on_update: str | None = None


@dataclass(frozen=True, slots=True)
class UniqueConstraint:
    """Table-level ``UNIQUE (cols)`` / MySQL ``UNIQUE KEY name (cols)``."""

    columns: tuple[str, ...]
    name: str | None = None


@dataclass(frozen=True, slots=True)
class CheckConstraint:
    """Table-level ``CHECK (expr)``; the expression is kept as raw text."""

    expression: str
    name: str | None = None


@dataclass(frozen=True, slots=True)
class IndexKey:
    """MySQL in-table ``KEY`` / ``INDEX`` definition (non-unique index).

    Indexes are physical-level and do not contribute to the logical diff,
    but parsing them keeps table bodies intact.
    """

    columns: tuple[str, ...]
    name: str | None = None


TableConstraint = Union[
    PrimaryKeyConstraint,
    ForeignKeyConstraint,
    UniqueConstraint,
    CheckConstraint,
    IndexKey,
]


@dataclass(frozen=True, slots=True)
class CreateTable:
    """A parsed ``CREATE TABLE`` statement."""

    name: str
    columns: tuple[ColumnDef, ...]
    constraints: tuple[TableConstraint, ...] = ()
    if_not_exists: bool = False
    temporary: bool = False
    options: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True, slots=True)
class CreateTableLike:
    """MySQL ``CREATE TABLE new LIKE template`` — clone a table's
    structure."""

    name: str
    template: str
    if_not_exists: bool = False


@dataclass(frozen=True, slots=True)
class DropTable:
    """A parsed ``DROP TABLE [IF EXISTS] t1, t2, ...`` statement."""

    names: tuple[str, ...]
    if_exists: bool = False


# --- ALTER TABLE actions ----------------------------------------------------


@dataclass(frozen=True, slots=True)
class AddColumn:
    """``ADD [COLUMN] coldef [FIRST | AFTER col]``."""

    column: ColumnDef
    position: str | None = None  # "FIRST" or "AFTER <col>"


@dataclass(frozen=True, slots=True)
class DropColumn:
    """``DROP [COLUMN] name``."""

    name: str
    if_exists: bool = False


@dataclass(frozen=True, slots=True)
class ModifyColumn:
    """MySQL ``MODIFY [COLUMN] coldef`` — redefine a column in place."""

    column: ColumnDef


@dataclass(frozen=True, slots=True)
class ChangeColumn:
    """MySQL ``CHANGE [COLUMN] old_name coldef`` — rename and redefine."""

    old_name: str
    column: ColumnDef


@dataclass(frozen=True, slots=True)
class AlterColumnType:
    """PostgreSQL ``ALTER [COLUMN] name [SET DATA] TYPE newtype``."""

    name: str
    data_type: DataType


@dataclass(frozen=True, slots=True)
class AlterColumnDefault:
    """``ALTER [COLUMN] name SET DEFAULT expr`` / ``DROP DEFAULT``."""

    name: str
    default: str | None  # None means DROP DEFAULT


@dataclass(frozen=True, slots=True)
class AlterColumnNullability:
    """``ALTER [COLUMN] name SET NOT NULL`` / ``DROP NOT NULL``."""

    name: str
    not_null: bool


@dataclass(frozen=True, slots=True)
class AddConstraint:
    """``ADD [CONSTRAINT name] <table constraint>``."""

    constraint: TableConstraint


@dataclass(frozen=True, slots=True)
class DropConstraint:
    """``DROP CONSTRAINT name`` / ``DROP FOREIGN KEY name`` /
    ``DROP PRIMARY KEY`` / ``DROP INDEX name`` inside ALTER TABLE.

    Attributes:
        name: constraint name, or None for MySQL DROP PRIMARY KEY.
        kind: one of ``"constraint"``, ``"foreign key"``, ``"primary key"``,
            ``"index"`` — what the statement literally dropped.
    """

    name: str | None
    kind: str = "constraint"


@dataclass(frozen=True, slots=True)
class RenameTable:
    """``RENAME TO new_name`` inside ALTER TABLE."""

    new_name: str


@dataclass(frozen=True, slots=True)
class RenameColumn:
    """``RENAME [COLUMN] old TO new`` inside ALTER TABLE."""

    old_name: str
    new_name: str


@dataclass(frozen=True, slots=True)
class TableOption:
    """A physical-level ALTER TABLE action kept as raw text
    (``OWNER TO x``, ``SET SCHEMA y``); no logical schema effect."""

    text: str


AlterAction = Union[
    TableOption,
    AddColumn,
    DropColumn,
    ModifyColumn,
    ChangeColumn,
    AlterColumnType,
    AlterColumnDefault,
    AlterColumnNullability,
    AddConstraint,
    DropConstraint,
    RenameTable,
    RenameColumn,
]


@dataclass(frozen=True, slots=True)
class AlterTable:
    """A parsed ``ALTER TABLE`` statement with one or more actions."""

    name: str
    actions: tuple[AlterAction, ...]
    if_exists: bool = False


@dataclass(frozen=True, slots=True)
class CreateIndex:
    """``CREATE [UNIQUE] INDEX name ON table (cols)`` — physical level."""

    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False
    if_not_exists: bool = False


@dataclass(frozen=True, slots=True)
class DropIndex:
    """``DROP INDEX name [ON table]`` — physical level."""

    name: str
    table: str | None = None
    if_exists: bool = False


@dataclass(frozen=True, slots=True)
class CreateView:
    """``CREATE [OR REPLACE] VIEW name [(cols)] AS <query>``.

    The defining query is kept as raw text: views live at the logical
    level of the paper's scope, but their internals are not diffed at
    the attribute granularity.
    """

    name: str
    columns: tuple[str, ...] = ()
    query: str = ""
    or_replace: bool = False
    if_not_exists: bool = False


@dataclass(frozen=True, slots=True)
class DropView:
    """``DROP VIEW [IF EXISTS] v1, v2, ...``."""

    names: tuple[str, ...]
    if_exists: bool = False


Statement = Union[CreateTable, CreateTableLike, DropTable, AlterTable,
                  CreateIndex, DropIndex, CreateView, DropView]


@dataclass(frozen=True, slots=True)
class SkippedStatement:
    """A statement the robust parser skipped (non-DDL or unparseable).

    Attributes:
        text: the raw statement text (without trailing semicolon).
        reason: short machine-readable reason, e.g. ``"non-ddl"`` or
            ``"parse-error"``.
        detail: the parse error message when reason is ``"parse-error"``.
    """

    text: str
    reason: str
    detail: str | None = None


@dataclass(frozen=True, slots=True)
class Script:
    """The result of parsing a whole SQL file.

    Attributes:
        statements: the DDL statements, in source order.
        skipped: non-DDL or unparseable statements, in source order.
    """

    statements: tuple[Statement, ...]
    skipped: tuple[SkippedStatement, ...] = ()

    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self):
        return iter(self.statements)
