"""Token model for the SQL DDL lexer."""

from __future__ import annotations

import enum


class TokenType(enum.Enum):
    """Lexical category of a token.

    The lexer does not distinguish keywords from plain identifiers — SQL
    keywords are not reserved in many dialects, so the parser decides from
    context whether a ``WORD`` acts as a keyword.
    """

    WORD = "word"              # bare identifier or keyword
    QUOTED_IDENT = "qident"    # `x`, "x" or [x] quoted identifier
    STRING = "string"          # 'literal' (quotes stripped, escapes resolved)
    NUMBER = "number"          # integer or decimal literal
    PUNCT = "punct"            # single punctuation: ( ) , ; . = etc.
    EOF = "eof"                # end of input sentinel


class Token:
    """One lexical token.

    A hand-written value class rather than a frozen dataclass: the lexer
    constructs one instance per token over millions of tokens per study,
    and the plain ``__init__`` avoids the per-field ``object.__setattr__``
    cost of frozen dataclasses on the hottest allocation site of the
    pipeline. Equality and hashing follow dataclass semantics over
    ``(type, value, line, column)``.

    Attributes:
        type: lexical category.
        value: token text. For ``QUOTED_IDENT`` and ``STRING`` the quotes
            are stripped and escapes resolved; for ``WORD`` the original
            spelling is preserved (case included).
        line: 1-based source line.
        column: 1-based source column.
    """

    __slots__ = ("type", "value", "line", "column")

    def __init__(self, type: TokenType, value: str,
                 line: int = 0, column: int = 0):
        self.type = type
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return (f"Token(type={self.type!r}, value={self.value!r}, "
                f"line={self.line!r}, column={self.column!r})")

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Token:
            return NotImplemented
        return (self.type is other.type and self.value == other.value
                and self.line == other.line and self.column == other.column)

    def __hash__(self) -> int:
        return hash((self.type, self.value, self.line, self.column))

    def __getstate__(self) -> tuple:
        return (self.type, self.value, self.line, self.column)

    def __setstate__(self, state: tuple) -> None:
        self.type, self.value, self.line, self.column = state

    def upper(self) -> str:
        """Return the token value upper-cased (keyword comparison helper)."""
        return self.value.upper()

    def is_word(self, *words: str) -> bool:
        """True if this token is a WORD matching any of ``words``.

        Comparison is case-insensitive; ``words`` must be upper-case.
        """
        return self.type is TokenType.WORD and self.value.upper() in words

    def is_punct(self, char: str) -> bool:
        """True if this token is the punctuation character ``char``."""
        return self.type is TokenType.PUNCT and self.value == char

    def describe(self) -> str:
        """Human-readable description used in error messages."""
        if self.type is TokenType.EOF:
            return "end of input"
        return f"{self.type.value} {self.value!r}"


EOF_TOKEN = Token(TokenType.EOF, "")
