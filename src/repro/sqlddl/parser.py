"""Recursive-descent parser for SQL DDL.

Two entry points:

* :func:`parse_statement` — parse exactly one DDL statement, raising
  :class:`~repro.errors.ParseError` on anything it cannot understand.
* :func:`parse_script` — parse a whole ``.sql`` file *robustly*: the file
  is split into statements at top-level semicolons; statements that are
  not DDL (INSERT, SET, COMMENT ON, ...) or that fail to parse are
  recorded as :class:`~repro.sqlddl.ast_nodes.SkippedStatement` instead of
  aborting the file. This mirrors how schema-history extractors must treat
  real dump files.

Only the logical-schema statements are materialized: CREATE TABLE,
ALTER TABLE, DROP TABLE, plus CREATE/DROP INDEX (parsed but ignored by the
logical schema builder).
"""

from __future__ import annotations

from repro.errors import LexError, ParseError
from repro.sqlddl import ast_nodes as ast
from repro.sqlddl.dialect import ALL_AUTOINCREMENT_WORDS, Dialect
from repro.sqlddl.lexer import tokenize
from repro.sqlddl.tokens import EOF_TOKEN, Token, TokenType

# Words that terminate a column flag loop when seen at the top level of a
# column definition.
_CONSTRAINT_STARTERS = (
    "CONSTRAINT", "PRIMARY", "FOREIGN", "UNIQUE", "CHECK", "KEY", "INDEX",
    "FULLTEXT", "SPATIAL",
)

# Multi-word type names we join into one DataType.name.
_TYPE_SECOND_WORDS = {
    "DOUBLE": ("PRECISION",),
    "CHARACTER": ("VARYING",),
    "BIT": ("VARYING",),
    "LONG": ("VARCHAR", "VARBINARY"),
}

_REFERENTIAL_ACTIONS = ("CASCADE", "RESTRICT", "SET", "NO")


def _is_serial(data_type: ast.DataType) -> bool:
    """True for PostgreSQL SERIAL-family types, which imply auto-increment."""
    from repro.sqlddl.dialect import ALL_SERIAL_TYPES
    return data_type.name.upper() in ALL_SERIAL_TYPES


class Parser:
    """Parses a token stream into DDL AST nodes.

    The parser is cursor-based; all ``_parse_*`` helpers consume tokens and
    raise :class:`ParseError` when the input diverges from the grammar.
    """

    def __init__(self, tokens: list[Token], dialect: Dialect = Dialect.GENERIC):
        self._tokens = tokens
        self._dialect = dialect
        self._pos = 0

    # ------------------------------------------------------------------
    # cursor helpers
    #
    # The token list always ends with an EOF token and the cursor never
    # moves past it (_advance stops there), so offset-0 reads index the
    # list directly; only lookahead peeks need the bounds check.

    def _peek(self, offset: int = 0) -> Token:
        index = self._pos + offset
        if index < len(self._tokens):
            return self._tokens[index]
        return self._tokens[-1]  # EOF

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._tokens[self._pos]
        return ParseError(f"{message}, got {token.describe()}",
                          token.line, token.column)

    def _accept_word(self, *words: str) -> Token | None:
        token = self._tokens[self._pos]
        if token.type is TokenType.WORD and token.value.upper() in words:
            self._pos += 1  # a WORD is never the EOF sentinel
            return token
        return None

    def _expect_word(self, *words: str) -> Token:
        token = self._accept_word(*words)
        if token is None:
            raise self._error(f"expected {' or '.join(words)}")
        return token

    def _accept_punct(self, char: str) -> Token | None:
        token = self._tokens[self._pos]
        if token.type is TokenType.PUNCT and token.value == char:
            self._pos += 1  # a PUNCT is never the EOF sentinel
            return token
        return None

    def _expect_punct(self, char: str) -> Token:
        token = self._accept_punct(char)
        if token is None:
            raise self._error(f"expected {char!r}")
        return token

    def at_end(self) -> bool:
        """True when only the EOF token (and optional semicolons) remain."""
        return self._tokens[self._pos].type is TokenType.EOF

    # ------------------------------------------------------------------
    # identifiers and simple lists

    def _parse_identifier(self) -> str:
        """Parse a possibly schema-qualified identifier, returning the last
        (object) component. ``mydb.users`` parses to ``users``."""
        token = self._peek()
        if token.type not in (TokenType.WORD, TokenType.QUOTED_IDENT):
            raise self._error("expected identifier")
        self._advance()
        name = token.value
        while self._accept_punct("."):
            part = self._peek()
            if part.type not in (TokenType.WORD, TokenType.QUOTED_IDENT):
                raise self._error("expected identifier after '.'")
            self._advance()
            name = part.value
        return name

    def _parse_column_name_list(self) -> tuple[str, ...]:
        """Parse ``(col [(len)] [ASC|DESC], ...)`` returning column names."""
        self._expect_punct("(")
        names: list[str] = []
        while True:
            names.append(self._parse_identifier())
            if self._accept_punct("("):  # MySQL key prefix length
                while not self._peek().is_punct(")"):
                    if self._peek().type is TokenType.EOF:
                        raise self._error("unterminated key prefix length")
                    self._advance()
                self._expect_punct(")")
            self._accept_word("ASC", "DESC")
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return tuple(names)

    def _capture_balanced(self) -> str:
        """Consume a parenthesized group, returning its inner text."""
        self._expect_punct("(")
        depth = 1
        parts: list[str] = []
        while depth > 0:
            token = self._peek()
            if token.type is TokenType.EOF:
                raise self._error("unterminated parenthesized expression")
            self._advance()
            if token.is_punct("("):
                depth += 1
            elif token.is_punct(")"):
                depth -= 1
                if depth == 0:
                    break
            parts.append(_render_token(token))
        return _join_tokens(parts)

    def _parse_value_expr(self) -> str:
        """Parse a DEFAULT-style value: literal, NULL, identifier, call or
        a parenthesized expression; returned as raw text."""
        token = self._peek()
        if token.is_punct("("):
            return "(" + self._capture_balanced() + ")"
        if token.is_punct("-") or token.is_punct("+"):
            self._advance()
            rest = self._parse_value_expr()
            return token.value + rest
        if token.type is TokenType.NUMBER:
            self._advance()
            return self._with_cast_suffix(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            literal = "'" + token.value.replace("'", "''") + "'"
            return self._with_cast_suffix(literal)
        if token.type in (TokenType.WORD, TokenType.QUOTED_IDENT):
            self._advance()
            text = token.value
            if self._peek().is_punct("("):
                text += "(" + self._capture_balanced() + ")"
            return self._with_cast_suffix(text)
        raise self._error("expected default value expression")

    def _with_cast_suffix(self, text: str) -> str:
        """Consume optional PostgreSQL ``::type`` casts after a value."""
        while self._peek().is_punct(":") and self._peek(1).is_punct(":"):
            self._advance()
            self._advance()
            cast_type = self._parse_data_type()
            text += "::" + cast_type.render()
        return text

    # ------------------------------------------------------------------
    # statement dispatch

    def parse_statement(self) -> ast.Statement:
        """Parse one DDL statement starting at the cursor."""
        token = self._peek()
        if token.is_word("CREATE"):
            return self._parse_create()
        if token.is_word("DROP"):
            return self._parse_drop()
        if token.is_word("ALTER"):
            return self._parse_alter()
        raise self._error("expected CREATE, DROP or ALTER")

    # ------------------------------------------------------------------
    # CREATE

    def _parse_create(self) -> ast.Statement:
        self._expect_word("CREATE")
        or_replace = False
        if self._accept_word("OR"):
            self._expect_word("REPLACE")
            or_replace = True
        temporary = bool(self._accept_word("TEMPORARY", "TEMP"))
        unique_index = bool(self._accept_word("UNIQUE"))
        if self._accept_word("TABLE"):
            return self._parse_create_table(temporary=temporary)
        if self._accept_word("INDEX"):
            return self._parse_create_index(unique=unique_index)
        if self._accept_word("VIEW"):
            return self._parse_create_view(or_replace=or_replace)
        raise self._error("expected TABLE, INDEX or VIEW after CREATE")

    def _parse_create_view(self, or_replace: bool) -> ast.CreateView:
        if_not_exists = self._parse_if_not_exists()
        name = self._parse_identifier()
        columns: tuple[str, ...] = ()
        if self._peek().is_punct("("):
            columns = self._parse_column_name_list()
        self._expect_word("AS")
        query = self._capture_rest()
        return ast.CreateView(name=name, columns=columns, query=query,
                              or_replace=or_replace,
                              if_not_exists=if_not_exists)

    def _capture_rest(self) -> str:
        """Consume every remaining token of the statement as raw text."""
        parts: list[str] = []
        while self._peek().type is not TokenType.EOF \
                and not self._peek().is_punct(";"):
            parts.append(_render_token(self._advance()))
        return _join_tokens(parts)

    def _parse_if_not_exists(self) -> bool:
        if self._peek().is_word("IF"):
            self._advance()
            self._expect_word("NOT")
            self._expect_word("EXISTS")
            return True
        return False

    def _parse_create_table(self, temporary: bool) -> ast.Statement:
        if_not_exists = self._parse_if_not_exists()
        name = self._parse_identifier()
        if self._accept_word("LIKE"):
            template = self._parse_identifier()
            return ast.CreateTableLike(name=name, template=template,
                                       if_not_exists=if_not_exists)
        self._expect_punct("(")
        columns: list[ast.ColumnDef] = []
        constraints: list[ast.TableConstraint] = []
        while True:
            if self._looks_like_table_constraint():
                constraints.append(self._parse_table_constraint())
            else:
                columns.append(self._parse_column_def())
            if self._accept_punct(","):
                continue
            break
        self._expect_punct(")")
        options = self._parse_table_options()
        return ast.CreateTable(
            name=name,
            columns=tuple(columns),
            constraints=tuple(constraints),
            if_not_exists=if_not_exists,
            temporary=temporary,
            options=options,
        )

    def _looks_like_table_constraint(self) -> bool:
        token = self._peek()
        if not token.is_word(*_CONSTRAINT_STARTERS):
            return False
        # "PRIMARY", "KEY" etc. are legal column names when followed by a
        # type word; a constraint keyword is followed by another keyword,
        # an identifier (constraint/index name) or an opening paren.
        if token.is_word("CONSTRAINT", "FOREIGN", "FULLTEXT", "SPATIAL"):
            return True
        nxt = self._peek(1)
        if token.is_word("PRIMARY"):
            return nxt.is_word("KEY")
        if token.is_word("UNIQUE"):
            return nxt.is_word("KEY", "INDEX") or nxt.is_punct("(")
        if token.is_word("CHECK"):
            return nxt.is_punct("(")
        if token.is_word("KEY", "INDEX"):
            if nxt.is_punct("("):
                return True
            if nxt.type in (TokenType.WORD, TokenType.QUOTED_IDENT) \
                    and self._peek(2).is_punct("("):
                # Disambiguate "KEY idx (col)" from a column named "key"
                # with a parameterized type ("key VARCHAR(10)"): a key's
                # column list starts with an identifier, type parameters
                # start with a number or string.
                inner = self._peek(3)
                return inner.type in (TokenType.WORD,
                                      TokenType.QUOTED_IDENT)
        return False

    def _parse_table_constraint(self) -> ast.TableConstraint:
        name: str | None = None
        if self._accept_word("CONSTRAINT"):
            if self._peek().type in (TokenType.WORD, TokenType.QUOTED_IDENT) \
                    and not self._peek().is_word("PRIMARY", "FOREIGN",
                                                 "UNIQUE", "CHECK"):
                name = self._parse_identifier()
        if self._accept_word("PRIMARY"):
            self._expect_word("KEY")
            columns = self._parse_column_name_list()
            return ast.PrimaryKeyConstraint(columns=columns, name=name)
        if self._accept_word("FOREIGN"):
            self._expect_word("KEY")
            if not self._peek().is_punct("("):
                # MySQL allows an index name here.
                self._parse_identifier()
            columns = self._parse_column_name_list()
            return self._parse_references_tail(columns, name)
        if self._accept_word("UNIQUE"):
            self._accept_word("KEY", "INDEX")
            idx_name = None
            if self._peek().type in (TokenType.WORD, TokenType.QUOTED_IDENT):
                idx_name = self._parse_identifier()
            columns = self._parse_column_name_list()
            return ast.UniqueConstraint(columns=columns, name=name or idx_name)
        if self._accept_word("CHECK"):
            expression = self._capture_balanced()
            return ast.CheckConstraint(expression=expression, name=name)
        if self._accept_word("FULLTEXT", "SPATIAL"):
            self._accept_word("KEY", "INDEX")
            idx_name = None
            if self._peek().type in (TokenType.WORD, TokenType.QUOTED_IDENT):
                idx_name = self._parse_identifier()
            columns = self._parse_column_name_list()
            return ast.IndexKey(columns=columns, name=idx_name)
        if self._accept_word("KEY", "INDEX"):
            idx_name = None
            if self._peek().type in (TokenType.WORD, TokenType.QUOTED_IDENT):
                idx_name = self._parse_identifier()
            columns = self._parse_column_name_list()
            return ast.IndexKey(columns=columns, name=idx_name)
        raise self._error("expected table constraint")

    def _parse_references_tail(self, columns: tuple[str, ...],
                               name: str | None) -> ast.ForeignKeyConstraint:
        self._expect_word("REFERENCES")
        ref = self._parse_references_clause()
        return ast.ForeignKeyConstraint(
            columns=columns,
            ref_table=ref.table,
            ref_columns=ref.columns,
            name=name,
            on_delete=ref.on_delete,
            on_update=ref.on_update,
        )

    def _parse_references_clause(self) -> ast.ForeignKeyRef:
        """Parse the part after REFERENCES: table, columns and FK actions."""
        table = self._parse_identifier()
        ref_columns: tuple[str, ...] = ()
        if self._peek().is_punct("("):
            ref_columns = self._parse_column_name_list()
        on_delete = on_update = None
        while self._peek().is_word("ON", "MATCH"):
            if self._accept_word("MATCH"):
                self._advance()  # FULL | PARTIAL | SIMPLE
                continue
            self._expect_word("ON")
            which = self._expect_word("DELETE", "UPDATE").upper()
            action = self._parse_referential_action()
            if which == "DELETE":
                on_delete = action
            else:
                on_update = action
        return ast.ForeignKeyRef(table=table, columns=ref_columns,
                                 on_delete=on_delete, on_update=on_update)

    def _parse_referential_action(self) -> str:
        token = self._expect_word(*_REFERENTIAL_ACTIONS)
        action = token.upper()
        if action == "SET":
            action += " " + self._expect_word("NULL", "DEFAULT").upper()
        elif action == "NO":
            action += " " + self._expect_word("ACTION").upper()
        return action

    # ------------------------------------------------------------------
    # column definitions

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._parse_identifier()
        data_type = None
        if self._peek().type is TokenType.WORD and not self._column_flag_ahead():
            data_type = self._parse_data_type()
        flags = self._parse_column_flags()
        auto_inc = flags.pop("auto_increment", False)
        if data_type is not None and _is_serial(data_type):
            auto_inc = True
        return ast.ColumnDef(name=name, data_type=data_type,
                             auto_increment=auto_inc, **flags)

    def _column_flag_ahead(self) -> bool:
        """True when the next word starts column flags, not a type name."""
        return self._peek().is_word(
            "NOT", "NULL", "DEFAULT", "PRIMARY", "UNIQUE", "REFERENCES",
            "COMMENT", "CHECK", "COLLATE", "CONSTRAINT", "GENERATED",
            *ALL_AUTOINCREMENT_WORDS,
        )

    def _parse_data_type(self) -> ast.DataType:
        first = self._advance()
        type_name = first.upper()
        second_options = _TYPE_SECOND_WORDS.get(type_name, ())
        if second_options and self._peek().is_word(*second_options):
            type_name += " " + self._advance().upper()
        params: tuple[str, ...] = ()
        if self._peek().is_punct("("):
            params = self._parse_type_params()
        # TIMESTAMP/TIME WITH(OUT) TIME ZONE
        if type_name in ("TIMESTAMP", "TIME") and self._peek().is_word(
                "WITH", "WITHOUT"):
            with_word = self._advance().upper()
            self._expect_word("TIME")
            self._expect_word("ZONE")
            type_name += f" {with_word} TIME ZONE"
        unsigned = bool(self._accept_word("UNSIGNED"))
        zerofill = bool(self._accept_word("ZEROFILL"))
        # MySQL charset/collation attached to the type.
        if self._accept_word("CHARACTER"):
            self._expect_word("SET")
            self._advance()
        if self._accept_word("COLLATE"):
            self._advance()
        return ast.DataType(name=type_name, params=params,
                            unsigned=unsigned, zerofill=zerofill)

    def _parse_type_params(self) -> tuple[str, ...]:
        self._expect_punct("(")
        params: list[str] = []
        while True:
            token = self._peek()
            if token.type is TokenType.NUMBER:
                self._advance()
                params.append(token.value)
            elif token.type is TokenType.STRING:
                self._advance()
                params.append("'" + token.value.replace("'", "''") + "'")
            elif token.type is TokenType.WORD:  # e.g. VARCHAR(MAX)
                self._advance()
                params.append(token.value)
            else:
                raise self._error("expected type parameter")
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return tuple(params)

    def _parse_column_flags(self) -> dict:
        """Parse the flag soup after a column type; order-insensitive."""
        flags: dict = {
            "not_null": False, "default": None, "primary_key": False,
            "unique": False, "auto_increment": False, "references": None,
            "comment": None,
        }
        while True:
            token = self._peek()
            if token.is_word("NOT"):
                self._advance()
                self._expect_word("NULL")
                flags["not_null"] = True
            elif token.is_word("NULL"):
                self._advance()
                flags["not_null"] = False
            elif token.is_word("DEFAULT"):
                self._advance()
                flags["default"] = self._parse_value_expr()
            elif token.is_word("PRIMARY"):
                self._advance()
                self._expect_word("KEY")
                flags["primary_key"] = True
            elif token.is_word("UNIQUE"):
                self._advance()
                self._accept_word("KEY")
                flags["unique"] = True
            elif token.is_word(*ALL_AUTOINCREMENT_WORDS):
                self._advance()
                flags["auto_increment"] = True
            elif token.is_word("REFERENCES"):
                self._advance()
                flags["references"] = self._parse_references_clause()
            elif token.is_word("COMMENT"):
                self._advance()
                comment = self._peek()
                if comment.type is not TokenType.STRING:
                    raise self._error("expected string after COMMENT")
                self._advance()
                flags["comment"] = comment.value
            elif token.is_word("COLLATE"):
                self._advance()
                self._advance()
            elif token.is_word("CHECK"):
                self._advance()
                self._capture_balanced()  # column check: parsed, not stored
            elif token.is_word("CONSTRAINT"):
                self._advance()
                self._parse_identifier()  # named inline constraint: skip name
            elif token.is_word("ON"):
                # MySQL "ON UPDATE CURRENT_TIMESTAMP" on timestamp columns.
                self._advance()
                self._expect_word("UPDATE")
                self._parse_value_expr()
            elif token.is_word("GENERATED"):
                self._parse_generated_clause(flags)
            else:
                return flags

    def _parse_generated_clause(self, flags: dict) -> None:
        """Parse ``GENERATED ALWAYS AS (expr)`` / identity columns."""
        self._expect_word("GENERATED")
        self._expect_word("ALWAYS", "BY")
        if self._peek().is_word("DEFAULT"):
            self._advance()
        if self._accept_word("AS"):
            if self._peek().is_word("IDENTITY"):
                self._advance()
                flags["auto_increment"] = True
                if self._peek().is_punct("("):
                    self._capture_balanced()
            else:
                self._capture_balanced()
                self._accept_word("STORED", "VIRTUAL")
        else:
            self._expect_word("AS")

    # ------------------------------------------------------------------
    # table options

    def _parse_table_options(self) -> tuple[tuple[str, str], ...]:
        """Parse MySQL-style trailing options: ``ENGINE=InnoDB`` etc."""
        options: list[tuple[str, str]] = []
        while True:
            self._accept_punct(",")
            token = self._peek()
            if token.type is not TokenType.WORD:
                return tuple(options)
            # Option keys may be multi-word: DEFAULT CHARSET,
            # DEFAULT CHARACTER SET, CHARACTER SET, DEFAULT COLLATE.
            key = self._advance().upper()
            while key in ("DEFAULT", "CHARACTER", "DEFAULT CHARACTER") \
                    and self._peek().type is TokenType.WORD:
                key += " " + self._advance().upper()
            self._accept_punct("=")
            value_token = self._peek()
            if value_token.type in (TokenType.WORD, TokenType.NUMBER,
                                    TokenType.STRING, TokenType.QUOTED_IDENT):
                self._advance()
                options.append((key, value_token.value))
            else:
                return tuple(options)

    # ------------------------------------------------------------------
    # DROP

    def _parse_drop(self) -> ast.Statement:
        self._expect_word("DROP")
        if self._accept_word("TABLE"):
            if_exists = self._parse_if_exists()
            names = [self._parse_identifier()]
            while self._accept_punct(","):
                names.append(self._parse_identifier())
            self._accept_word("CASCADE", "RESTRICT")
            return ast.DropTable(names=tuple(names), if_exists=if_exists)
        if self._accept_word("INDEX"):
            if_exists = self._parse_if_exists()
            name = self._parse_identifier()
            table = None
            if self._accept_word("ON"):
                table = self._parse_identifier()
            self._accept_word("CASCADE", "RESTRICT")
            return ast.DropIndex(name=name, table=table, if_exists=if_exists)
        if self._accept_word("VIEW"):
            if_exists = self._parse_if_exists()
            names = [self._parse_identifier()]
            while self._accept_punct(","):
                names.append(self._parse_identifier())
            self._accept_word("CASCADE", "RESTRICT")
            return ast.DropView(names=tuple(names), if_exists=if_exists)
        raise self._error("expected TABLE, INDEX or VIEW after DROP")

    def _parse_if_exists(self) -> bool:
        if self._peek().is_word("IF"):
            self._advance()
            self._expect_word("EXISTS")
            return True
        return False

    # ------------------------------------------------------------------
    # ALTER TABLE

    def _parse_alter(self) -> ast.AlterTable:
        self._expect_word("ALTER")
        self._expect_word("TABLE")
        if_exists = self._parse_if_exists()
        self._accept_word("ONLY")  # PostgreSQL
        name = self._parse_identifier()
        actions: list[ast.AlterAction] = [self._parse_alter_action()]
        while self._accept_punct(","):
            actions.append(self._parse_alter_action())
        return ast.AlterTable(name=name, actions=tuple(actions),
                              if_exists=if_exists)

    def _parse_alter_action(self) -> ast.AlterAction:
        if self._accept_word("ADD"):
            return self._parse_alter_add()
        if self._accept_word("DROP"):
            return self._parse_alter_drop()
        if self._accept_word("MODIFY"):
            self._accept_word("COLUMN")
            return ast.ModifyColumn(column=self._parse_column_def())
        if self._accept_word("CHANGE"):
            self._accept_word("COLUMN")
            old_name = self._parse_identifier()
            return ast.ChangeColumn(old_name=old_name,
                                    column=self._parse_column_def())
        if self._accept_word("ALTER"):
            return self._parse_alter_column()
        if self._accept_word("RENAME"):
            return self._parse_alter_rename()
        if self._accept_word("OWNER"):
            self._expect_word("TO")
            return ast.TableOption(
                text="OWNER TO " + self._parse_identifier())
        if self._accept_word("SET"):
            self._expect_word("SCHEMA")
            return ast.TableOption(
                text="SET SCHEMA " + self._parse_identifier())
        raise self._error("expected ALTER TABLE action")

    def _parse_alter_add(self) -> ast.AlterAction:
        if self._accept_word("CONSTRAINT"):
            name = None
            if not self._peek().is_word("PRIMARY", "FOREIGN", "UNIQUE",
                                        "CHECK"):
                name = self._parse_identifier()
            constraint = self._parse_named_constraint_body(name)
            return ast.AddConstraint(constraint=constraint)
        if self._peek().is_word("PRIMARY", "FOREIGN", "UNIQUE", "CHECK",
                                "KEY", "INDEX", "FULLTEXT", "SPATIAL"):
            constraint = self._parse_table_constraint()
            return ast.AddConstraint(constraint=constraint)
        self._accept_word("COLUMN")
        self._parse_if_not_exists()
        column = self._parse_column_def()
        position = None
        if self._accept_word("FIRST"):
            position = "FIRST"
        elif self._accept_word("AFTER"):
            position = "AFTER " + self._parse_identifier()
        return ast.AddColumn(column=column, position=position)

    def _parse_named_constraint_body(self, name: str | None) \
            -> ast.TableConstraint:
        if self._accept_word("PRIMARY"):
            self._expect_word("KEY")
            columns = self._parse_column_name_list()
            return ast.PrimaryKeyConstraint(columns=columns, name=name)
        if self._accept_word("FOREIGN"):
            self._expect_word("KEY")
            if not self._peek().is_punct("("):
                self._parse_identifier()
            columns = self._parse_column_name_list()
            return self._parse_references_tail(columns, name)
        if self._accept_word("UNIQUE"):
            self._accept_word("KEY", "INDEX")
            idx_name = None
            if self._peek().type in (TokenType.WORD, TokenType.QUOTED_IDENT):
                idx_name = self._parse_identifier()
            columns = self._parse_column_name_list()
            return ast.UniqueConstraint(columns=columns, name=name or idx_name)
        if self._accept_word("CHECK"):
            expression = self._capture_balanced()
            return ast.CheckConstraint(expression=expression, name=name)
        raise self._error("expected constraint body")

    def _parse_alter_drop(self) -> ast.AlterAction:
        if self._accept_word("PRIMARY"):
            self._expect_word("KEY")
            return ast.DropConstraint(name=None, kind="primary key")
        if self._accept_word("FOREIGN"):
            self._expect_word("KEY")
            return ast.DropConstraint(name=self._parse_identifier(),
                                      kind="foreign key")
        if self._accept_word("CONSTRAINT"):
            if_exists = self._parse_if_exists()
            del if_exists  # tolerated, not recorded
            return ast.DropConstraint(name=self._parse_identifier(),
                                      kind="constraint")
        if self._accept_word("KEY", "INDEX"):
            return ast.DropConstraint(name=self._parse_identifier(),
                                      kind="index")
        self._accept_word("COLUMN")
        if_exists = self._parse_if_exists()
        name = self._parse_identifier()
        self._accept_word("CASCADE", "RESTRICT")
        return ast.DropColumn(name=name, if_exists=if_exists)

    def _parse_alter_column(self) -> ast.AlterAction:
        self._accept_word("COLUMN")
        name = self._parse_identifier()
        if self._accept_word("TYPE"):
            return ast.AlterColumnType(name=name,
                                       data_type=self._parse_data_type())
        if self._accept_word("SET"):
            if self._accept_word("DATA"):
                self._expect_word("TYPE")
                return ast.AlterColumnType(name=name,
                                           data_type=self._parse_data_type())
            if self._accept_word("DEFAULT"):
                return ast.AlterColumnDefault(
                    name=name, default=self._parse_value_expr())
            if self._accept_word("NOT"):
                self._expect_word("NULL")
                return ast.AlterColumnNullability(name=name, not_null=True)
            raise self._error("expected DEFAULT, NOT NULL or DATA TYPE")
        if self._accept_word("DROP"):
            if self._accept_word("DEFAULT"):
                return ast.AlterColumnDefault(name=name, default=None)
            if self._accept_word("NOT"):
                self._expect_word("NULL")
                return ast.AlterColumnNullability(name=name, not_null=False)
            raise self._error("expected DEFAULT or NOT NULL after DROP")
        raise self._error("expected TYPE, SET or DROP in ALTER COLUMN")

    def _parse_alter_rename(self) -> ast.AlterAction:
        if self._accept_word("TO", "AS"):
            return ast.RenameTable(new_name=self._parse_identifier())
        if self._accept_word("COLUMN"):
            old = self._parse_identifier()
            self._expect_word("TO")
            return ast.RenameColumn(old_name=old,
                                    new_name=self._parse_identifier())
        # Bare "RENAME new_name" (MySQL).
        return ast.RenameTable(new_name=self._parse_identifier())

    # ------------------------------------------------------------------
    # CREATE INDEX

    def _parse_create_index(self, unique: bool) -> ast.CreateIndex:
        if_not_exists = self._parse_if_not_exists()
        name = self._parse_identifier()
        self._expect_word("ON")
        table = self._parse_identifier()
        if self._accept_word("USING"):
            self._advance()  # btree / hash / gin ...
        columns = self._parse_column_name_list()
        return ast.CreateIndex(name=name, table=table, columns=columns,
                               unique=unique, if_not_exists=if_not_exists)


# ----------------------------------------------------------------------
# script-level robust parsing


def _render_token(token: Token) -> str:
    if token.type is TokenType.STRING:
        return "'" + token.value.replace("'", "''") + "'"
    if token.type is TokenType.QUOTED_IDENT:
        return '"' + token.value.replace('"', '""') + '"'
    return token.value


def _join_tokens(parts: list[str]) -> str:
    """Join rendered tokens with single spaces, tightening punctuation."""
    out: list[str] = []
    for part in parts:
        if out and part in (",", ")", ";", "."):
            out[-1] += part
        elif out and out[-1].endswith(("(", ".")):
            out[-1] += part
        else:
            out.append(part)
    return " ".join(out)


_DDL_LEADING = {"CREATE", "DROP", "ALTER"}
_DDL_SECOND = {"TABLE", "INDEX", "UNIQUE", "TEMPORARY", "TEMP",
               "VIEW", "OR"}


def _split_statements(tokens: list[Token]) -> list[list[Token]]:
    """Split a token list into statements at top-level semicolons."""
    statements: list[list[Token]] = []
    current: list[Token] = []
    append = current.append
    eof = TokenType.EOF
    punct = TokenType.PUNCT
    for token in tokens:
        token_type = token.type
        if token_type is punct:
            if token.value == ";":
                if current:
                    statements.append(current)
                    current = []
                    append = current.append
                continue
        elif token_type is eof:
            break
        append(token)
    if current:
        statements.append(current)
    return statements


def _is_ddl_statement(tokens: list[Token]) -> bool:
    if not tokens:
        return False
    first = tokens[0]
    if first.type is not TokenType.WORD or first.upper() not in _DDL_LEADING:
        return False
    if len(tokens) < 2:
        return False
    second = tokens[1]
    return second.type is TokenType.WORD and second.upper() in _DDL_SECOND


def parse_statement(text: str,
                    dialect: Dialect = Dialect.GENERIC) -> ast.Statement:
    """Parse exactly one DDL statement from ``text``.

    Raises:
        ParseError: if the statement cannot be parsed or trailing garbage
            follows it (a single trailing semicolon is allowed).
    """
    tokens = tokenize(text, dialect)
    parser = Parser(tokens, dialect)
    statement = parser.parse_statement()
    while parser._accept_punct(";"):
        pass
    if not parser.at_end():
        raise parser._error("unexpected trailing input after statement")
    return statement


def parse_token_group(
    group: list[Token],
    dialect: Dialect = Dialect.GENERIC,
    on_error: str = "skip",
) -> tuple[ast.Statement | None, ast.SkippedStatement | None]:
    """Parse one semicolon-delimited token group of a script.

    Exactly one of the returned pair is non-None: the parsed statement,
    or the :class:`~repro.sqlddl.ast_nodes.SkippedStatement` recording
    why the group was skipped (``non-ddl`` / ``parse-error``).

    Raises:
        ParseError: when the group fails to parse and ``on_error`` is
            ``"raise"``.
    """
    if not _is_ddl_statement(group):
        raw = _join_tokens([_render_token(t) for t in group])
        return None, ast.SkippedStatement(text=raw, reason="non-ddl")
    parser = Parser(group + [EOF_TOKEN], dialect)
    try:
        statement = parser.parse_statement()
        if not parser.at_end():
            raise parser._error("trailing input in statement")
    except ParseError as exc:
        if on_error == "raise":
            raise
        raw = _join_tokens([_render_token(t) for t in group])
        return None, ast.SkippedStatement(
            text=raw, reason="parse-error", detail=str(exc))
    return statement, None


def parse_script(text: str, dialect: Dialect = Dialect.GENERIC,
                 on_error: str = "skip") -> ast.Script:
    """Parse a whole SQL script robustly.

    Args:
        text: the full ``.sql`` file content.
        dialect: SQL dialect traits to apply.
        on_error: ``"skip"`` records unparseable statements in
            :attr:`Script.skipped`; ``"raise"`` re-raises the first
            :class:`ParseError`.

    Returns:
        A :class:`~repro.sqlddl.ast_nodes.Script` with DDL statements and
        the skipped remainder.

    Raises:
        ValueError: for an invalid ``on_error`` mode.
        LexError: when the whole file cannot even be tokenized and
            ``on_error`` is ``"raise"``.
    """
    if on_error not in ("skip", "raise"):
        raise ValueError(f"on_error must be 'skip' or 'raise', "
                         f"not {on_error!r}")
    try:
        tokens = tokenize(text, dialect)
    except LexError:
        if on_error == "raise":
            raise
        return ast.Script(statements=(),
                          skipped=(ast.SkippedStatement(
                              text=text, reason="lex-error"),))

    statements: list[ast.Statement] = []
    skipped: list[ast.SkippedStatement] = []
    for group in _split_statements(tokens):
        statement, skip = parse_token_group(group, dialect, on_error)
        if skip is not None:
            skipped.append(skip)
        else:
            statements.append(statement)
    return ast.Script(statements=tuple(statements), skipped=tuple(skipped))
