"""SQL dialect descriptions.

A :class:`Dialect` bundles the lexical and syntactic quirks that differ
between the engines whose DDL appears in FOSS schema histories. The paper's
corpus is dominated by MySQL and PostgreSQL dumps, with some SQLite.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


@dataclass(frozen=True)
class DialectTraits:
    """Concrete lexical/syntactic traits of one dialect.

    Attributes:
        name: dialect identifier, e.g. ``"mysql"``.
        identifier_quotes: characters that may open a quoted identifier.
        hash_comments: whether ``# ...`` line comments are legal (MySQL).
        autoincrement_words: words that mark a column as auto-incrementing.
        serial_types: type names that imply integer + auto-increment
            (PostgreSQL ``SERIAL`` family).
        supports_enum_type: whether inline ``ENUM(...)`` types occur.
        default_quote: the quote character the writer uses for identifiers
            that need quoting.
    """

    name: str
    identifier_quotes: tuple[str, ...] = ('"',)
    hash_comments: bool = False
    autoincrement_words: tuple[str, ...] = ()
    serial_types: tuple[str, ...] = ()
    supports_enum_type: bool = False
    default_quote: str = '"'


class Dialect(enum.Enum):
    """The SQL dialects understood by the DDL parser."""

    GENERIC = DialectTraits(
        name="generic",
        identifier_quotes=('"', "`", "["),
        hash_comments=True,
        autoincrement_words=("AUTO_INCREMENT", "AUTOINCREMENT", "IDENTITY"),
        serial_types=("SERIAL", "BIGSERIAL", "SMALLSERIAL"),
        supports_enum_type=True,
        default_quote='"',
    )
    MYSQL = DialectTraits(
        name="mysql",
        identifier_quotes=("`", '"'),
        hash_comments=True,
        autoincrement_words=("AUTO_INCREMENT",),
        serial_types=("SERIAL",),
        supports_enum_type=True,
        default_quote="`",
    )
    POSTGRES = DialectTraits(
        name="postgres",
        identifier_quotes=('"',),
        hash_comments=False,
        autoincrement_words=("IDENTITY",),
        serial_types=("SERIAL", "BIGSERIAL", "SMALLSERIAL"),
        supports_enum_type=False,
        default_quote='"',
    )
    SQLITE = DialectTraits(
        name="sqlite",
        identifier_quotes=('"', "`", "["),
        hash_comments=False,
        autoincrement_words=("AUTOINCREMENT",),
        serial_types=(),
        supports_enum_type=False,
        default_quote='"',
    )

    @property
    def traits(self) -> DialectTraits:
        """The :class:`DialectTraits` record of this dialect."""
        return self.value

    @classmethod
    def from_name(cls, name: str) -> "Dialect":
        """Look a dialect up by its lower-case name.

        Raises:
            KeyError: if ``name`` names no known dialect.
        """
        for member in cls:
            if member.traits.name == name.lower():
                return member
        raise KeyError(f"unknown SQL dialect: {name!r}")


#: Names (upper-case) of all auto-increment markers across dialects.
ALL_AUTOINCREMENT_WORDS = frozenset(
    word for member in Dialect for word in member.traits.autoincrement_words
)

#: Names (upper-case) of all serial-style types across dialects.
ALL_SERIAL_TYPES = frozenset(
    word for member in Dialect for word in member.traits.serial_types
)
