"""SQL DDL substrate: lexer, parser, AST, dialects and SQL writer.

This package implements, from scratch, the part of the toolchain that the
paper's dataset extraction relied on: turning the text of ``.sql`` files
found in a project's history into a structured representation of the
*logical* schema (tables, attributes, data types, primary/foreign keys).

Typical usage::

    from repro.sqlddl import parse_script, Dialect

    script = parse_script(open("schema.sql").read(), dialect=Dialect.MYSQL)
    for stmt in script.statements:
        ...

The parser is intentionally *forgiving*: real-world DDL files are full of
INSERTs, SETs, comments and vendor noise. Statements that are not DDL (or
that fail to parse) are skipped and recorded in :attr:`Script.skipped`
rather than aborting the whole file, which mirrors how schema-history
extraction tools (e.g. Hecate) behave.
"""

from repro.sqlddl.dialect import Dialect
from repro.sqlddl.tokens import Token, TokenType
from repro.sqlddl.lexer import Lexer, tokenize
from repro.sqlddl.ast_nodes import (
    AddColumn,
    AlterColumnDefault,
    AlterColumnNullability,
    AlterColumnType,
    AlterTable,
    ChangeColumn,
    CheckConstraint,
    ColumnDef,
    CreateIndex,
    CreateTable,
    DataType,
    DropColumn,
    DropConstraint,
    DropIndex,
    DropTable,
    ForeignKeyConstraint,
    ForeignKeyRef,
    IndexKey,
    ModifyColumn,
    PrimaryKeyConstraint,
    RenameColumn,
    RenameTable,
    Script,
    SkippedStatement,
    Statement,
    UniqueConstraint,
)
from repro.sqlddl.parser import (
    Parser,
    parse_script,
    parse_statement,
    parse_token_group,
)
from repro.sqlddl.splitter import Segment, segment_hash, split_statements
from repro.sqlddl.memo import (
    ParsedSegment,
    StatementMemo,
    parse_counters,
    reset_parse_counters,
)
from repro.sqlddl.normalize import (
    canonical_type,
    canonical_type_name,
    normalize_identifier,
)
from repro.sqlddl.writer import write_script, write_statement

__all__ = [
    "AddColumn",
    "AlterColumnDefault",
    "AlterColumnNullability",
    "AlterColumnType",
    "AlterTable",
    "ChangeColumn",
    "CheckConstraint",
    "ColumnDef",
    "CreateIndex",
    "CreateTable",
    "DataType",
    "Dialect",
    "DropColumn",
    "DropConstraint",
    "DropIndex",
    "DropTable",
    "ForeignKeyConstraint",
    "ForeignKeyRef",
    "IndexKey",
    "Lexer",
    "ModifyColumn",
    "ParsedSegment",
    "Parser",
    "PrimaryKeyConstraint",
    "RenameColumn",
    "RenameTable",
    "Script",
    "Segment",
    "SkippedStatement",
    "Statement",
    "StatementMemo",
    "Token",
    "TokenType",
    "UniqueConstraint",
    "canonical_type",
    "canonical_type_name",
    "normalize_identifier",
    "parse_counters",
    "parse_script",
    "parse_statement",
    "parse_token_group",
    "reset_parse_counters",
    "segment_hash",
    "split_statements",
    "tokenize",
    "write_script",
    "write_statement",
]
