"""Lexer-level statement segmentation for incremental parsing.

Consecutive versions of a schema-history snapshot are near-identical:
a handful of changed statements per month against a file of hundreds.
The splitter exploits that redundancy *below* the parser: it slices a
DDL script into statement spans at top-level semicolons — respecting
exactly the comment, string and quoting conventions of the lexer — and
content-hashes each span, **without** tokenizing or parsing anything.
The hashes key the per-history statement memo
(:class:`repro.sqlddl.memo.StatementMemo`), so only statements that
actually changed since the previous version are ever parsed again.

Segmentation is equivalent to the token-level split of
:func:`repro.sqlddl.parser.parse_script` (which splits the token stream
at every ``;`` token): a semicolon inside a string literal, quoted
identifier, dollar-quoted string or comment never ends a segment, and
spans holding only trivia (whitespace/comments) yield no segment, just
as they yield no tokens. Unterminated constructs (an open string or
block comment running to EOF) are swallowed into the final segment and
marked as content, so the later per-segment tokenization reproduces the
whole-file :class:`~repro.errors.LexError` and the caller can fall back
to the classic full parse.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass

from repro.sqlddl.dialect import Dialect, DialectTraits

__all__ = ["Segment", "segment_hash", "split_statements"]


@dataclass(frozen=True, slots=True)
class Segment:
    """One statement span of a DDL script.

    Attributes:
        text: the span text, stripped of surrounding whitespace, without
            the terminating semicolon. May still carry interior trivia
            (comments between tokens), which the hash covers too.
        content_hash: BLAKE2b-128 hex digest of ``text`` — the key under
            which the parsed statement is memoized.
    """

    text: str
    content_hash: str


def segment_hash(text: str) -> str:
    """The content hash of one statement span (BLAKE2b-128)."""
    return hashlib.blake2b(text.encode("utf-8"),
                           digest_size=16).hexdigest()


#: Per-dialect scan patterns matching every character that can change
#: the segmentation state; everything between matches is ordinary text.
_PATTERNS: dict[str, re.Pattern] = {}


def _pattern_for(traits: DialectTraits) -> re.Pattern:
    pattern = _PATTERNS.get(traits.name)
    if pattern is None:
        chars = ";'-/$" + "".join(traits.identifier_quotes)
        if traits.hash_comments:
            chars += "#"
        pattern = re.compile("[" + re.escape(chars) + "]")
        _PATTERNS[traits.name] = pattern
    return pattern


def _line_end(text: str, pos: int) -> int:
    """Index just past the current line comment."""
    end = text.find("\n", pos)
    return len(text) if end < 0 else end + 1


def _scan_string(text: str, pos: int) -> int:
    """Index just past a ``'...'`` literal opening at ``pos``.

    Mirrors the lexer: backslash escapes one character, a doubled quote
    is an escaped quote. Unterminated literals swallow the rest of the
    input (the later tokenization fails the same way).
    """
    i = pos + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\" and i + 1 < n:
            i += 2
            continue
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                i += 2
                continue
            return i + 1
        i += 1
    return n


def _scan_quoted(text: str, pos: int, close: str, doubled: bool) -> int:
    """Index just past a quoted identifier opening at ``pos``."""
    i = pos + 1
    n = len(text)
    while i < n:
        if text[i] == close:
            if doubled and i + 1 < n and text[i + 1] == close:
                i += 2
                continue
            return i + 1
        i += 1
    return n


def _scan_dollar(text: str, pos: int) -> int | None:
    """Index just past a dollar-quoted string opening at ``pos``.

    Returns None when ``pos`` does not open a dollar quote — either the
    ``$`` sits inside a word (the lexer's word reader consumes ``$``
    characters, so ``a$b$c`` is one identifier) or no ``$tag$``
    delimiter follows.
    """
    if pos > 0:
        prev = text[pos - 1]
        if prev.isalnum() or prev in "_$":
            return None
    i = pos + 1
    n = len(text)
    while i < n and (text[i].isalnum() or text[i] == "_"):
        i += 1
    if i >= n or text[i] != "$":
        return None
    delimiter = text[pos:i + 1]
    end = text.find(delimiter, i + 1)
    if end < 0:
        return n
    return end + len(delimiter)


def split_statements(text: str,
                     dialect: Dialect = Dialect.GENERIC) -> list[Segment]:
    """Split ``text`` into hashed statement segments.

    Args:
        text: the full ``.sql`` file content.
        dialect: dialect whose comment/quoting traits apply (must match
            the dialect later used to parse the segments).

    Returns:
        Content-bearing segments in source order; trivia-only spans are
        dropped, matching the token-level split of ``parse_script``.
    """
    traits = dialect.traits
    pattern = _pattern_for(traits)
    identifier_quotes = traits.identifier_quotes
    segments: list[Segment] = []
    n = len(text)
    start = 0
    pos = 0
    has_content = False

    def emit(end: int) -> None:
        span = text[start:end].strip()
        segments.append(Segment(text=span, content_hash=segment_hash(span)))

    while pos < n:
        match = pattern.search(text, pos)
        if match is None:
            if not has_content and text[pos:].strip():
                has_content = True
            pos = n
            break
        i = match.start()
        if not has_content and text[pos:i].strip():
            has_content = True
        ch = text[i]
        if ch == ";":
            if has_content:
                emit(i)
            start = pos = i + 1
            has_content = False
        elif ch == "'":
            pos = _scan_string(text, i)
            has_content = True
        elif ch == "-":
            if text.startswith("--", i):
                pos = _line_end(text, i)
            else:
                has_content = True
                pos = i + 1
        elif ch == "#":  # in the pattern only when the dialect allows it
            pos = _line_end(text, i)
        elif ch == "/":
            if text.startswith("/*", i):
                end = text.find("*/", i + 2)
                if end < 0:  # unterminated: keep span, lexing will fail
                    has_content = True
                    pos = n
                else:
                    pos = end + 2
            else:
                has_content = True
                pos = i + 1
        elif ch == "$":
            end = _scan_dollar(text, i)
            has_content = True
            pos = i + 1 if end is None else end
        elif ch in identifier_quotes:
            pos = _scan_quoted(text, i, "]" if ch == "[" else ch,
                               doubled=ch != "[")
            has_content = True
        else:  # a quote character the dialect treats as plain punctuation
            has_content = True
            pos = i + 1
    if has_content:
        emit(n)
    return segments
