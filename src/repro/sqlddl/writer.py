"""Render DDL AST nodes back to SQL text.

The writer produces deterministic, dialect-aware SQL. It is used by the
synthetic corpus generator (which emits whole ``.sql`` files per commit)
and by the parser round-trip property tests.
"""

from __future__ import annotations

from repro.sqlddl import ast_nodes as ast
from repro.sqlddl.dialect import Dialect

_BARE_SAFE = set("abcdefghijklmnopqrstuvwxyz"
                 "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")

# Words that would be mis-parsed as constraint starters, flags or clause
# keywords when used bare as identifiers; always quote them. The set covers
# every word the parser treats as a context keyword (e.g. a table named
# ``if`` would otherwise render as ``DROP TABLE IF``).
_ALWAYS_QUOTE = frozenset({
    "primary", "foreign", "unique", "check", "key", "index", "constraint",
    "not", "null", "default", "references", "comment", "create", "drop",
    "alter", "table", "fulltext", "spatial", "on", "generated", "collate",
    "if", "exists", "like", "temporary", "temp", "view", "to", "first",
    "after", "rename", "modify", "change", "add", "set", "type", "cascade",
    "restrict", "no", "action", "as", "match", "replace", "schema",
    "update", "identity", "using", "with", "without", "unsigned", "or",
    "auto_increment", "time", "zone",
})


def quote_identifier(name: str, dialect: Dialect = Dialect.GENERIC) -> str:
    """Quote ``name`` if it is not a safe bare identifier."""
    needs_quote = (
        not name
        or name[0].isdigit()
        or any(ch not in _BARE_SAFE for ch in name)
        or name.lower() in _ALWAYS_QUOTE
    )
    if not needs_quote:
        return name
    quote = dialect.traits.default_quote
    if quote == "`":
        return "`" + name.replace("`", "``") + "`"
    return '"' + name.replace('"', '""') + '"'


def _write_column_list(columns: tuple[str, ...], dialect: Dialect) -> str:
    return "(" + ", ".join(quote_identifier(c, dialect) for c in columns) + ")"


def _write_fk_actions(on_delete: str | None, on_update: str | None) -> str:
    out = ""
    if on_delete:
        out += f" ON DELETE {on_delete}"
    if on_update:
        out += f" ON UPDATE {on_update}"
    return out


def write_column_def(column: ast.ColumnDef,
                     dialect: Dialect = Dialect.GENERIC) -> str:
    """Render one column definition."""
    parts = [quote_identifier(column.name, dialect)]
    if column.data_type is not None:
        parts.append(column.data_type.render())
    if column.not_null:
        parts.append("NOT NULL")
    if column.default is not None:
        parts.append(f"DEFAULT {column.default}")
    if column.auto_increment:
        word = dialect.traits.autoincrement_words
        parts.append(word[0] if word else "AUTO_INCREMENT")
    if column.primary_key:
        parts.append("PRIMARY KEY")
    if column.unique:
        parts.append("UNIQUE")
    if column.references is not None:
        ref = column.references
        clause = f"REFERENCES {quote_identifier(ref.table, dialect)}"
        if ref.columns:
            clause += " " + _write_column_list(ref.columns, dialect)
        clause += _write_fk_actions(ref.on_delete, ref.on_update)
        parts.append(clause)
    if column.comment is not None:
        escaped = column.comment.replace("'", "''")
        parts.append(f"COMMENT '{escaped}'")
    return " ".join(parts)


def write_constraint(constraint: ast.TableConstraint,
                     dialect: Dialect = Dialect.GENERIC) -> str:
    """Render one table-level constraint."""
    prefix = ""
    name = getattr(constraint, "name", None)
    if name and not isinstance(constraint, ast.IndexKey):
        prefix = f"CONSTRAINT {quote_identifier(name, dialect)} "
    if isinstance(constraint, ast.PrimaryKeyConstraint):
        return (prefix + "PRIMARY KEY "
                + _write_column_list(constraint.columns, dialect))
    if isinstance(constraint, ast.ForeignKeyConstraint):
        out = (prefix + "FOREIGN KEY "
               + _write_column_list(constraint.columns, dialect)
               + f" REFERENCES {quote_identifier(constraint.ref_table, dialect)}")
        if constraint.ref_columns:
            out += " " + _write_column_list(constraint.ref_columns, dialect)
        out += _write_fk_actions(constraint.on_delete, constraint.on_update)
        return out
    if isinstance(constraint, ast.UniqueConstraint):
        return (prefix + "UNIQUE "
                + _write_column_list(constraint.columns, dialect))
    if isinstance(constraint, ast.CheckConstraint):
        return prefix + f"CHECK ({constraint.expression})"
    if isinstance(constraint, ast.IndexKey):
        out = "KEY"
        if constraint.name:
            out += " " + quote_identifier(constraint.name, dialect)
        return out + " " + _write_column_list(constraint.columns, dialect)
    raise TypeError(f"unknown constraint type: {type(constraint).__name__}")


def _write_create_table(stmt: ast.CreateTable, dialect: Dialect) -> str:
    head = "CREATE "
    if stmt.temporary:
        head += "TEMPORARY "
    head += "TABLE "
    if stmt.if_not_exists:
        head += "IF NOT EXISTS "
    head += quote_identifier(stmt.name, dialect)
    body_lines = [write_column_def(c, dialect) for c in stmt.columns]
    body_lines += [write_constraint(c, dialect) for c in stmt.constraints]
    body = ",\n  ".join(body_lines)
    tail = ""
    for key, value in stmt.options:
        tail += f" {key}={value}"
    return f"{head} (\n  {body}\n){tail}"


def _write_alter_action(action: ast.AlterAction, dialect: Dialect) -> str:
    if isinstance(action, ast.TableOption):
        return action.text
    if isinstance(action, ast.AddColumn):
        out = "ADD COLUMN " + write_column_def(action.column, dialect)
        if action.position:
            out += " " + action.position
        return out
    if isinstance(action, ast.DropColumn):
        out = "DROP COLUMN "
        if action.if_exists:
            out += "IF EXISTS "
        return out + quote_identifier(action.name, dialect)
    if isinstance(action, ast.ModifyColumn):
        return "MODIFY COLUMN " + write_column_def(action.column, dialect)
    if isinstance(action, ast.ChangeColumn):
        return ("CHANGE COLUMN "
                + quote_identifier(action.old_name, dialect) + " "
                + write_column_def(action.column, dialect))
    if isinstance(action, ast.AlterColumnType):
        return (f"ALTER COLUMN {quote_identifier(action.name, dialect)} "
                f"TYPE {action.data_type.render()}")
    if isinstance(action, ast.AlterColumnDefault):
        col = quote_identifier(action.name, dialect)
        if action.default is None:
            return f"ALTER COLUMN {col} DROP DEFAULT"
        return f"ALTER COLUMN {col} SET DEFAULT {action.default}"
    if isinstance(action, ast.AlterColumnNullability):
        col = quote_identifier(action.name, dialect)
        verb = "SET" if action.not_null else "DROP"
        return f"ALTER COLUMN {col} {verb} NOT NULL"
    if isinstance(action, ast.AddConstraint):
        return "ADD " + write_constraint(action.constraint, dialect)
    if isinstance(action, ast.DropConstraint):
        if action.kind == "primary key":
            return "DROP PRIMARY KEY"
        if action.kind == "foreign key":
            return f"DROP FOREIGN KEY {quote_identifier(action.name, dialect)}"
        if action.kind == "index":
            return f"DROP INDEX {quote_identifier(action.name, dialect)}"
        return f"DROP CONSTRAINT {quote_identifier(action.name, dialect)}"
    if isinstance(action, ast.RenameTable):
        return "RENAME TO " + quote_identifier(action.new_name, dialect)
    if isinstance(action, ast.RenameColumn):
        return ("RENAME COLUMN "
                + quote_identifier(action.old_name, dialect)
                + " TO " + quote_identifier(action.new_name, dialect))
    raise TypeError(f"unknown alter action: {type(action).__name__}")


def write_statement(stmt: ast.Statement,
                    dialect: Dialect = Dialect.GENERIC) -> str:
    """Render one DDL statement (without trailing semicolon)."""
    if isinstance(stmt, ast.CreateTable):
        return _write_create_table(stmt, dialect)
    if isinstance(stmt, ast.CreateTableLike):
        out = "CREATE TABLE "
        if stmt.if_not_exists:
            out += "IF NOT EXISTS "
        return (out + quote_identifier(stmt.name, dialect)
                + " LIKE " + quote_identifier(stmt.template, dialect))
    if isinstance(stmt, ast.DropTable):
        out = "DROP TABLE "
        if stmt.if_exists:
            out += "IF EXISTS "
        return out + ", ".join(quote_identifier(n, dialect)
                               for n in stmt.names)
    if isinstance(stmt, ast.AlterTable):
        head = "ALTER TABLE "
        if stmt.if_exists:
            head += "IF EXISTS "
        head += quote_identifier(stmt.name, dialect)
        actions = ", ".join(_write_alter_action(a, dialect)
                            for a in stmt.actions)
        return f"{head} {actions}"
    if isinstance(stmt, ast.CreateIndex):
        out = "CREATE "
        if stmt.unique:
            out += "UNIQUE "
        out += "INDEX "
        if stmt.if_not_exists:
            out += "IF NOT EXISTS "
        out += quote_identifier(stmt.name, dialect)
        out += " ON " + quote_identifier(stmt.table, dialect)
        return out + " " + _write_column_list(stmt.columns, dialect)
    if isinstance(stmt, ast.CreateView):
        out = "CREATE "
        if stmt.or_replace:
            out += "OR REPLACE "
        out += "VIEW "
        if stmt.if_not_exists:
            out += "IF NOT EXISTS "
        out += quote_identifier(stmt.name, dialect)
        if stmt.columns:
            out += " " + _write_column_list(stmt.columns, dialect)
        return out + " AS " + stmt.query
    if isinstance(stmt, ast.DropView):
        out = "DROP VIEW "
        if stmt.if_exists:
            out += "IF EXISTS "
        return out + ", ".join(quote_identifier(n, dialect)
                               for n in stmt.names)
    if isinstance(stmt, ast.DropIndex):
        out = "DROP INDEX "
        if stmt.if_exists:
            out += "IF EXISTS "
        out += quote_identifier(stmt.name, dialect)
        if stmt.table:
            out += " ON " + quote_identifier(stmt.table, dialect)
        return out
    raise TypeError(f"unknown statement type: {type(stmt).__name__}")


def write_script(script: ast.Script,
                 dialect: Dialect = Dialect.GENERIC) -> str:
    """Render all DDL statements of a script, semicolon-terminated."""
    return "\n\n".join(write_statement(s, dialect) + ";"
                       for s in script.statements) + ("\n" if script else "")
