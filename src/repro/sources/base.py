"""The :class:`HistorySource` protocol and its in-memory adapter.

A history source decouples *where schema histories come from* (the
synthetic generator, an on-disk corpus, a checked-out git repository)
from *how the study runs* (the engine's stage DAG). The contract is
three methods:

* ``project_ids()`` — the stable, ordered ids of every project;
* ``fingerprint(pid)`` — a content hash of one project, computable
  WITHOUT loading it (a child seed, a file digest, a git sha list);
* ``load(pid)`` — materialize one project.

Sources with ``lightweight = True`` are small picklable objects (a
seed, a path); the engine fans their projects out to worker processes
as :class:`SourceHandle`\\ s (pid + fingerprint) and each worker calls
``load`` itself, so no :class:`~repro.history.repository.SchemaHistory`
ever crosses the parent→worker pickling boundary, and the
content-addressed cache keys directly off the fingerprint without
loading anything at all on a hit.

Sources may additionally implement a **streaming surface** —
``iter_handles()`` yielding one :class:`SourceHandle` at a time and
``count()`` returning the project total without enumeration. The
module-level helpers :func:`iter_source_handles` and
:func:`source_count` bridge sources that implement neither via
``project_ids()``, so third-party three-method sources keep working
unchanged while sharded corpora never materialize a full handle list.

This module deliberately imports nothing from :mod:`repro.engine` at
module level so the engine can depend on it without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Protocol, Sequence, runtime_checkable

from repro.errors import SourceError

#: The two record-computation modes a source can declare. ``"corpus"``
#: items are generated projects carrying their ground-truth pattern;
#: ``"histories"`` items are bare histories classified blindly.
SOURCE_MODES = ("corpus", "histories")


def check_mode(mode: str) -> str:
    """Validate a source mode string.

    Raises:
        SourceError: for anything but ``"corpus"`` / ``"histories"``.
    """
    if mode not in SOURCE_MODES:
        raise SourceError(
            f"unknown source mode {mode!r}; expected one of "
            f"{', '.join(SOURCE_MODES)}")
    return mode


@dataclass(frozen=True)
class SourceHandle:
    """The lightweight stand-in for one project in the engine's map.

    Attributes:
        pid: the project's id within its source.
        fingerprint: the source's content hash for the project — the
            cache key material; loading is not required to compute it.
    """

    pid: str
    fingerprint: str


@runtime_checkable
class HistorySource(Protocol):
    """Anything that can enumerate, fingerprint and load histories.

    Attributes:
        mode: ``"corpus"`` (items are generated projects with ground
            truth) or ``"histories"`` (items are bare histories,
            classified blindly).
        lightweight: True when the source itself is a small picklable
            object, letting the engine ship it to workers and fan out
            over :class:`SourceHandle` instead of loaded projects.

    Sources may additionally implement ``identity() -> list`` — a
    cheap, canonicalizable description of everything that determines
    their project ids and fingerprints (a seed, a manifest digest, a
    HEAD sha). An :class:`~repro.engine.session.EngineSession` uses it
    to enumerate handles once per identity and replay them on
    re-study; sources without it are simply never registry-cached.

    Optional streaming surface (all bridged by helpers when absent):

    * ``iter_handles() -> Iterator[SourceHandle]`` — lazily yield one
      handle per project, in ``project_ids()`` order, without building
      the full id list (:func:`iter_source_handles` bridges).
    * ``count() -> int`` — the project total, cheaper than enumerating
      (:func:`source_count` bridges via ``__len__``/``project_ids``).
    * ``stratum(pid) -> str | None`` — a sampling stratum for the
      project (its pattern for corpora), used by stratified study
      sampling; ``None``/absent groups by pid prefix instead.

    Optional **delta surface** (enables append-only incremental
    re-study; sources without it always recompute in full):

    * ``version_chain(pid) -> tuple[str, ...]`` — one stable hash per
      version of the project, oldest first, such that append-only
      growth *extends* the chain and any rewrite of an existing
      version changes a prefix element (git: the file's commit shas;
      corpora: per-commit content hashes). This is the delta layer's
      prefix proof: "old chain is a prefix of new chain" means the
      checkpointed study state can be extended by parsing only the
      suffix (:func:`source_version_chain` bridges to ``None``).
    * ``load_delta(pid, start) -> list[Commit]`` — the project's
      commits from chain position ``start`` onward, without reading
      earlier payloads (``"histories"`` sources only; ``"corpus"``
      sources slice the loaded commits instead).
    """

    mode: str
    lightweight: bool

    def project_ids(self) -> Sequence[str]:
        """Stable, ordered project ids."""
        ...  # pragma: no cover - protocol

    def fingerprint(self, pid: str) -> str:
        """Content hash of one project, computed without loading it."""
        ...  # pragma: no cover - protocol

    def load(self, pid: str) -> Any:
        """Materialize one project (a GeneratedProject or a history)."""
        ...  # pragma: no cover - protocol


class InMemorySource:
    """A source over objects that already live in this process.

    The adapter behind :func:`repro.study.pipeline.records_from_corpus`
    and :func:`~repro.study.pipeline.records_from_histories`: it wraps
    generated projects (``mode="corpus"``) or schema histories
    (``mode="histories"``) that the caller constructed eagerly. It is
    NOT lightweight — pickling it would pickle every wrapped object —
    so the engine keeps the legacy item-based fan-out for it.

    Args:
        items: generated projects or histories, in study order.
        mode: ``"corpus"`` or ``"histories"``.

    Raises:
        SourceError: for an unknown mode.
    """

    lightweight = False

    def __init__(self, items: Iterable[Any], mode: str = "corpus"):
        self.mode = check_mode(mode)
        self._items: dict[str, Any] = {}
        for index, item in enumerate(items):
            name = item.name if mode == "corpus" else item.project_name
            self._items[f"{index:05d}:{name}"] = item

    def project_ids(self) -> tuple[str, ...]:
        return tuple(self._items)

    def fingerprint(self, pid: str) -> str:
        # In-memory objects have no cheaper identity than their content;
        # reuse the engine's content-hash helpers (imported lazily to
        # keep this module engine-free at import time).
        from repro.engine.cache import fingerprint
        from repro.engine.study_plan import history_fingerprint_parts
        item = self.load(pid)
        if self.mode == "corpus":
            return fingerprint(
                "in-memory-project", item.name,
                item.intended_pattern, item.is_exception,
                item.exception_kind,
                history_fingerprint_parts(item.history),
                tuple(item.source.monthly) if item.source else None)
        return fingerprint("in-memory-history",
                           history_fingerprint_parts(item))

    def load(self, pid: str) -> Any:
        try:
            return self._items[pid]
        except KeyError:
            raise SourceError(
                f"unknown project id {pid!r} (in-memory source holds "
                f"{len(self._items)} projects)") from None

    def count(self) -> int:
        return len(self._items)

    def __len__(self) -> int:
        return len(self._items)


def iter_source_handles(source: Any) -> Iterator[SourceHandle]:
    """Lazily yield one :class:`SourceHandle` per project of ``source``.

    Uses the source's native ``iter_handles()`` when it has one;
    otherwise bridges over ``project_ids()`` + ``fingerprint(pid)``,
    which keeps every pre-streaming three-method source working. The
    bridge still materializes the id list (ids are tiny); only native
    implementations avoid that too.
    """
    native = getattr(source, "iter_handles", None)
    if native is not None:
        yield from native()
        return
    for pid in source.project_ids():
        yield SourceHandle(pid=pid, fingerprint=source.fingerprint(pid))


def source_count(source: Any) -> int:
    """The number of projects in ``source``, as cheaply as possible.

    Prefers a native ``count()``, then ``len(source)``, then the length
    of ``project_ids()`` — the same order of increasing cost the
    streaming executor uses to size work chunks.
    """
    native = getattr(source, "count", None)
    if native is not None:
        return native()
    try:
        return len(source)
    except TypeError:
        return len(source.project_ids())


def source_version_chain(source: Any,
                         pid: str) -> "tuple[str, ...] | None":
    """The project's version-hash chain, or ``None``.

    ``None`` — the source does not speak the delta protocol — simply
    means "no prefix proof available": callers fall back to a full
    recompute, which is always correct.
    """
    native = getattr(source, "version_chain", None)
    if native is None:
        return None
    return tuple(native(pid))


def source_stratum(source: Any, pid: str) -> str:
    """The sampling stratum of one project (stratified study modes).

    Sources that know their projects' strata (the intended pattern of
    a corpus) expose ``stratum(pid)``; anything else falls back to the
    pid with its trailing ``-N`` ordinal stripped, which groups the
    synthetic naming scheme's ``<pattern>-<n>`` ids correctly and
    degrades to per-pid strata elsewhere.
    """
    native = getattr(source, "stratum", None)
    if native is not None:
        stratum = native(pid)
        if stratum is not None:
            return stratum
    head, sep, tail = pid.rpartition("-")
    if sep and tail.isdigit():
        return head
    return pid
