"""The :class:`HistorySource` protocol and its in-memory adapter.

A history source decouples *where schema histories come from* (the
synthetic generator, an on-disk corpus, a checked-out git repository)
from *how the study runs* (the engine's stage DAG). The contract is
three methods:

* ``project_ids()`` — the stable, ordered ids of every project;
* ``fingerprint(pid)`` — a content hash of one project, computable
  WITHOUT loading it (a child seed, a file digest, a git sha list);
* ``load(pid)`` — materialize one project.

Sources with ``lightweight = True`` are small picklable objects (a
seed, a path); the engine fans their projects out to worker processes
as :class:`SourceHandle`\\ s (pid + fingerprint) and each worker calls
``load`` itself, so no :class:`~repro.history.repository.SchemaHistory`
ever crosses the parent→worker pickling boundary, and the
content-addressed cache keys directly off the fingerprint without
loading anything at all on a hit.

This module deliberately imports nothing from :mod:`repro.engine` at
module level so the engine can depend on it without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Protocol, Sequence, runtime_checkable

from repro.errors import SourceError

#: The two record-computation modes a source can declare. ``"corpus"``
#: items are generated projects carrying their ground-truth pattern;
#: ``"histories"`` items are bare histories classified blindly.
SOURCE_MODES = ("corpus", "histories")


def check_mode(mode: str) -> str:
    """Validate a source mode string.

    Raises:
        SourceError: for anything but ``"corpus"`` / ``"histories"``.
    """
    if mode not in SOURCE_MODES:
        raise SourceError(
            f"unknown source mode {mode!r}; expected one of "
            f"{', '.join(SOURCE_MODES)}")
    return mode


@dataclass(frozen=True)
class SourceHandle:
    """The lightweight stand-in for one project in the engine's map.

    Attributes:
        pid: the project's id within its source.
        fingerprint: the source's content hash for the project — the
            cache key material; loading is not required to compute it.
    """

    pid: str
    fingerprint: str


@runtime_checkable
class HistorySource(Protocol):
    """Anything that can enumerate, fingerprint and load histories.

    Attributes:
        mode: ``"corpus"`` (items are generated projects with ground
            truth) or ``"histories"`` (items are bare histories,
            classified blindly).
        lightweight: True when the source itself is a small picklable
            object, letting the engine ship it to workers and fan out
            over :class:`SourceHandle` instead of loaded projects.

    Sources may additionally implement ``identity() -> list`` — a
    cheap, canonicalizable description of everything that determines
    their project ids and fingerprints (a seed, a manifest digest, a
    HEAD sha). An :class:`~repro.engine.session.EngineSession` uses it
    to enumerate handles once per identity and replay them on
    re-study; sources without it are simply never registry-cached.
    """

    mode: str
    lightweight: bool

    def project_ids(self) -> Sequence[str]:
        """Stable, ordered project ids."""
        ...  # pragma: no cover - protocol

    def fingerprint(self, pid: str) -> str:
        """Content hash of one project, computed without loading it."""
        ...  # pragma: no cover - protocol

    def load(self, pid: str) -> Any:
        """Materialize one project (a GeneratedProject or a history)."""
        ...  # pragma: no cover - protocol


class InMemorySource:
    """A source over objects that already live in this process.

    The adapter behind :func:`repro.study.pipeline.records_from_corpus`
    and :func:`~repro.study.pipeline.records_from_histories`: it wraps
    generated projects (``mode="corpus"``) or schema histories
    (``mode="histories"``) that the caller constructed eagerly. It is
    NOT lightweight — pickling it would pickle every wrapped object —
    so the engine keeps the legacy item-based fan-out for it.

    Args:
        items: generated projects or histories, in study order.
        mode: ``"corpus"`` or ``"histories"``.

    Raises:
        SourceError: for an unknown mode.
    """

    lightweight = False

    def __init__(self, items: Iterable[Any], mode: str = "corpus"):
        self.mode = check_mode(mode)
        self._items: dict[str, Any] = {}
        for index, item in enumerate(items):
            name = item.name if mode == "corpus" else item.project_name
            self._items[f"{index:05d}:{name}"] = item

    def project_ids(self) -> tuple[str, ...]:
        return tuple(self._items)

    def fingerprint(self, pid: str) -> str:
        # In-memory objects have no cheaper identity than their content;
        # reuse the engine's content-hash helpers (imported lazily to
        # keep this module engine-free at import time).
        from repro.engine.cache import fingerprint
        from repro.engine.study_plan import history_fingerprint_parts
        item = self.load(pid)
        if self.mode == "corpus":
            return fingerprint(
                "in-memory-project", item.name,
                item.intended_pattern, item.is_exception,
                item.exception_kind,
                history_fingerprint_parts(item.history),
                tuple(item.source.monthly) if item.source else None)
        return fingerprint("in-memory-history",
                           history_fingerprint_parts(item))

    def load(self, pid: str) -> Any:
        try:
            return self._items[pid]
        except KeyError:
            raise SourceError(
                f"unknown project id {pid!r} (in-memory source holds "
                f"{len(self._items)} projects)") from None

    def __len__(self) -> int:
        return len(self._items)
