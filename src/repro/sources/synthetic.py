"""The synthetic corpus as a lazy history source.

:class:`SyntheticSource` is the generator's two-phase design exposed
through the :class:`~repro.sources.base.HistorySource` protocol: the
serial planning pass (one :class:`~repro.corpus.generator.ProjectSpec`
per project, each with its own 64-bit child seed) runs once, cheaply;
realization — DDL synthesis, the expensive part — happens per project
inside ``load``, typically in a worker process. The source itself is a
few hundred bytes of specs, so shipping it to workers costs nothing,
and a project's fingerprint is derived from its spec alone: a warm
cache serves the whole study without generating a single commit.
"""

from __future__ import annotations

from repro.corpus.generator import (
    DEFAULT_SEED,
    GeneratedProject,
    ProjectSpec,
    plan_corpus,
    realize_spec,
)
from repro.engine.cache import fingerprint
from repro.errors import SourceError
from repro.patterns.taxonomy import Pattern

#: Bump when realization output changes for an unchanged spec (DDL
#: scribe rewrites, sampler changes) — spec-derived fingerprints cannot
#: see code changes, so this version is their stand-in.
GENERATOR_VERSION = "1"


class SyntheticSource:
    """Lazily realized synthetic corpus (one project per child seed).

    Args:
        seed: master corpus seed (default: the paper seed).
        population: per-pattern project counts (default: Table 2).
        with_exceptions: inject the paper's documented exceptions.
        with_noise: decorate commits with non-DDL dump noise.

    The project order and content are identical to
    :func:`repro.corpus.generator.generate_corpus` under the same
    arguments — the golden-equivalence tests pin this.
    """

    mode = "corpus"
    lightweight = True

    def __init__(self, seed: int | None = None,
                 population: dict[Pattern, int] | None = None,
                 with_exceptions: bool = True,
                 with_noise: bool = False):
        self.seed = DEFAULT_SEED if seed is None else seed
        self.population = dict(population) if population else None
        self.with_exceptions = with_exceptions
        self.with_noise = with_noise
        self._specs: dict[str, ProjectSpec] | None = None

    def _plan(self) -> dict[str, ProjectSpec]:
        if self._specs is None:
            self._specs = {
                spec.name: spec
                for spec in plan_corpus(self.seed, self.population,
                                        self.with_exceptions,
                                        self.with_noise)
            }
        return self._specs

    def _spec(self, pid: str) -> ProjectSpec:
        try:
            return self._plan()[pid]
        except KeyError:
            raise SourceError(
                f"unknown project id {pid!r} for synthetic corpus "
                f"seed {self.seed}") from None

    def identity(self) -> list:
        """Content identity for engine-session registries.

        Everything that determines the planned corpus — an equal
        identity guarantees equal project ids and fingerprints, so a
        session may replay a previous enumeration.
        """
        population = None
        if self.population is not None:
            population = sorted(
                (pattern.value, count)
                for pattern, count in self.population.items())
        return ["synthetic", GENERATOR_VERSION, self.seed, population,
                self.with_exceptions, self.with_noise]

    def project_ids(self) -> tuple[str, ...]:
        return tuple(self._plan())

    def fingerprint(self, pid: str) -> str:
        spec = self._spec(pid)
        return fingerprint("synthetic-project", GENERATOR_VERSION,
                           spec.seed, spec.pattern, spec.name,
                           spec.bucket, spec.exception_kind,
                           spec.with_noise)

    def load(self, pid: str) -> GeneratedProject:
        return realize_spec(self._spec(pid))

    def version_chain(self, pid: str) -> tuple[str, ...]:
        """A one-element chain: the spec fingerprint.

        Synthetic histories are generated whole from their spec — they
        never grow by append, so a project is either unchanged (same
        fingerprint, served by the result cache before the chain is
        ever consulted) or rewritten (different fingerprint, full
        recompute). Speaking the protocol keeps delta bookkeeping on
        for mixed pipelines without pretending specs have suffixes.
        """
        return (self.fingerprint(pid),)

    def iter_handles(self):
        """One handle per planned project, without an id list.

        Routes through :meth:`fingerprint` so subclasses that override
        it (fault-injecting test sources) keep their behavior on the
        streaming path too.
        """
        from repro.sources.base import SourceHandle
        for pid in self._plan():
            yield SourceHandle(pid=pid,
                               fingerprint=self.fingerprint(pid))

    def count(self) -> int:
        """Planned project total (plans; realizes nothing)."""
        return len(self._plan())

    def stratum(self, pid: str) -> str:
        """The intended pattern — the stratified-sampling stratum."""
        return self._spec(pid).pattern.value

    def __len__(self) -> int:
        return len(self._plan())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SyntheticSource(seed={self.seed}, "
                f"projects={len(self)})")
