"""Extract schema histories from a checked-out git repository.

:class:`GitDirSource` reproduces the paper's corpus-construction step
(its Hecate extraction): walk a repository's history, find the DDL
files, and turn the sequence of committed versions of each file into a
:class:`~repro.history.repository.SchemaHistory` — one project per
tracked DDL file. Discovery applies the paper's §3.1 noise-name filter
(example/demo/test/migration paths) and keeps only files whose current
content actually contains ``CREATE TABLE`` DDL, so a repository full of
data dumps or query scripts does not flood the study.

The source shells out to the ``git`` binary (always present alongside
a checkout); every call is read-only. The instance itself carries only
the repository path and the discovered file list, so it pickles to
workers in a few hundred bytes; fingerprints are the commit-sha chains
of each file — computable without reading any blob.
"""

from __future__ import annotations

import subprocess
from datetime import datetime, timezone
from pathlib import Path

from repro.errors import LexError, ParseError, SourceError, TransientSourceError
from repro.history.commit import Commit
from repro.history.filters import is_noise_name
from repro.history.repository import SchemaHistory
from repro.sqlddl import ast_nodes as ast
from repro.sqlddl.dialect import Dialect
from repro.sqlddl.parser import parse_script

#: Bump when the extraction logic changes observably (fingerprints key
#: the cache off sha chains, which cannot see code changes).
GIT_SOURCE_VERSION = "1"


def _looks_like_ddl(text: str, dialect: Dialect) -> bool:
    """True when ``text`` parses to at least one CREATE TABLE."""
    try:
        script = parse_script(text, dialect)
    except (LexError, ParseError):
        # The expected "this file is not DDL" outcomes, per the
        # errors.py contract; anything else is a programming error
        # and must propagate.
        return False
    return any(isinstance(stmt, (ast.CreateTable, ast.CreateTableLike))
               for stmt in script.statements)


def _naive_utc(iso_text: str) -> datetime:
    """A git ISO timestamp as a naive UTC datetime.

    Histories mix with naive-timestamp corpora downstream; normalizing
    to UTC keeps month indexing deterministic across committer zones.
    """
    stamp = datetime.fromisoformat(iso_text)
    if stamp.tzinfo is not None:
        stamp = stamp.astimezone(timezone.utc).replace(tzinfo=None)
    return stamp


class GitDirSource:
    """DDL-file histories of one checked-out git repository.

    Args:
        root: path of the working copy (the directory holding ``.git``).
        dialect: SQL dialect for parsing the extracted DDL.
        glob: pathspec selecting candidate files (default ``*.sql``).
        drop_noise: apply the paper's noise-name path filter.

    Raises:
        SourceError: (on first use) when the ``git`` binary is missing.
        TransientSourceError: when a ``git`` invocation exits non-zero
            (``root`` not a repository, lock contention, I/O failure) —
            retryable under the engine's ``retry`` error policy.
    """

    mode = "histories"
    lightweight = True

    def __init__(self, root: str | Path,
                 dialect: Dialect = Dialect.GENERIC,
                 glob: str = "*.sql",
                 drop_noise: bool = True):
        self.root = str(root)
        self.dialect = dialect
        self.glob = glob
        self.drop_noise = drop_noise
        self._ids: tuple[str, ...] | None = None
        self._memo_tip: str | None = None
        self._fingerprints: dict[str, str] = {}

    def _git(self, *args: str) -> str:
        try:
            done = subprocess.run(
                ["git", "-C", self.root, *args],
                capture_output=True, check=True)
        except FileNotFoundError as exc:  # pragma: no cover - no git
            raise SourceError("git executable not found") from exc
        except subprocess.CalledProcessError as exc:
            # Transient by contract: a non-zero git exit may be a lock,
            # I/O pressure or a concurrent mutation — the retry policy
            # is allowed to try again (a missing binary above is not).
            detail = exc.stderr.decode("utf-8", "replace").strip()
            raise TransientSourceError(
                f"git {args[0]} failed in {self.root}: "
                f"{detail or exc}") from exc
        return done.stdout.decode("utf-8", "replace")

    def tip(self) -> str:
        """The current HEAD sha — one cheap ``rev-parse``.

        Everything this source serves derives from the commit graph at
        HEAD, so comparing tips is a complete freshness check: a watch
        loop polling an unchanged repository pays one ``rev-parse``
        instead of a full per-file history walk.
        """
        return self._git("rev-parse", "HEAD").strip()

    def _sync_tip(self) -> str:
        """Check HEAD and drop the per-tip memos when it moved."""
        tip = self.tip()
        if tip != self._memo_tip:
            self._memo_tip = tip
            self._ids = None
            self._fingerprints.clear()
        return tip

    def identity(self) -> list:
        """Content identity for engine-session registries.

        Keyed on HEAD: discovery and per-file history both derive from
        the commit graph at HEAD, so an unchanged sha means a session
        may replay its previous enumeration without re-walking git.
        """
        head = self._sync_tip()
        return ["git", GIT_SOURCE_VERSION, self.root, head,
                self.dialect.traits.name, self.glob, self.drop_noise]

    def project_ids(self) -> tuple[str, ...]:
        self._sync_tip()
        if self._ids is None:
            listing = self._git("ls-files", "-z", "--", self.glob)
            kept = []
            for path in sorted(p for p in listing.split("\0") if p):
                if self.drop_noise and is_noise_name(path):
                    continue
                try:
                    head = self._git("show", f"HEAD:{path}")
                except SourceError:
                    continue  # e.g. staged-only file with no commit
                if _looks_like_ddl(head, self.dialect):
                    kept.append(path)
            self._ids = tuple(kept)
        return self._ids

    def fingerprint(self, pid: str) -> str:
        self._sync_tip()
        cached = self._fingerprints.get(pid)
        if cached is not None:
            return cached
        shas = self._git("log", "--format=%H", "--", pid).split()
        from repro.engine.cache import fingerprint
        value = fingerprint("git-history", GIT_SOURCE_VERSION, pid,
                            self.dialect.traits.name, shas)
        self._fingerprints[pid] = value
        return value

    def version_chain(self, pid: str) -> tuple[str, ...]:
        """The file's version-hash chain: its commit shas, oldest first.

        The delta layer's prefix proof — computable without reading a
        single blob. Append-only growth extends the chain; any rewrite
        (rebase, amend, force-push) changes old shas and fails the
        prefix check, forcing a full recompute.
        """
        return tuple(self._git("log", "--reverse", "--format=%H",
                               "--", pid).split())

    def load_delta(self, pid: str, start: int) -> list[Commit]:
        """The file's commits from chain position ``start`` onward.

        The suffix counterpart of :meth:`load`: only the new blobs are
        read. Commits that deleted the file are skipped exactly as in
        :meth:`load` (they occupy chain slots but carry no version).
        """
        log = self._git("log", "--reverse", "--format=%H%x09%cI",
                        "--", pid)
        commits: list[Commit] = []
        lines = [line for line in log.splitlines() if line.strip()]
        for line in lines[start:]:
            sha, _, stamp = line.partition("\t")
            if not sha or not stamp:
                continue
            try:
                ddl_text = self._git("show", f"{sha}:{pid}")
            except SourceError:
                continue  # commit deleted the file: no version to parse
            commits.append(Commit(sha=sha,
                                  timestamp=_naive_utc(stamp),
                                  ddl_text=ddl_text))
        return commits

    def iter_handles(self):
        """One handle per DDL file, fingerprinting lazily.

        Discovery (one ``ls-files`` + per-file DDL sniff) still runs
        up front and is memoized; the per-file ``git log`` sha-chain
        fingerprints — the expensive part at scale — run one at a time
        as the engine's bounded window pulls handles.
        """
        from repro.sources.base import SourceHandle
        for pid in self.project_ids():
            yield SourceHandle(pid=pid,
                               fingerprint=self.fingerprint(pid))

    def count(self) -> int:
        """Discovered DDL-file total (memoized discovery, no logs)."""
        return len(self.project_ids())

    def load(self, pid: str) -> SchemaHistory:
        log = self._git("log", "--reverse", "--format=%H%x09%cI",
                        "--", pid)
        commits: list[Commit] = []
        for line in log.splitlines():
            sha, _, stamp = line.partition("\t")
            if not sha or not stamp:
                continue
            try:
                ddl_text = self._git("show", f"{sha}:{pid}")
            except SourceError:
                continue  # commit deleted the file: no version to parse
            commits.append(Commit(sha=sha,
                                  timestamp=_naive_utc(stamp),
                                  ddl_text=ddl_text))
        if not commits:
            raise SourceError(
                f"no committed versions of {pid!r} in {self.root}")
        name = pid[:-len(Path(pid).suffix)] if Path(pid).suffix else pid
        return SchemaHistory(name, commits, dialect=self.dialect)

    def __len__(self) -> int:
        return len(self.project_ids())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GitDirSource({self.root!r}, glob={self.glob!r})"
