"""The versioned JSONL-on-disk corpus format and its source.

Layout of an exported corpus directory::

    <root>/
      manifest.json            format tag, version, seed, mode,
                               per-project file + sha256 index
      projects/<pid>.jsonl     one project: a header line (metadata,
                               plan, source series) followed by one
                               line per DDL commit

The manifest's per-file SHA-256 digests double as the source's
fingerprints, so the engine's content-addressed cache can decide
hit/miss without opening a single project file. Export → import is a
lossless round trip (the study report over an imported corpus is
byte-identical to the original — pinned by tests).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable

from repro.corpus.dataset import project_from_dict, project_to_dict
from repro.corpus.generator import Corpus, GeneratedProject
from repro.errors import SourceError

#: On-disk format tag; anything else in the manifest is rejected.
CORPUS_DIR_FORMAT = "repro-corpus-dir"

#: Format version; bump on incompatible layout changes.
CORPUS_DIR_VERSION = 1

MANIFEST_NAME = "manifest.json"
_PROJECTS_SUBDIR = "projects"


def _project_jsonl(project: GeneratedProject) -> str:
    """One project rendered as JSONL: header line + commit lines."""
    record = project_to_dict(project)
    commits = record.pop("commits")
    lines = [json.dumps(record, sort_keys=True)]
    lines.extend(json.dumps(commit, sort_keys=True)
                 for commit in commits)
    return "\n".join(lines) + "\n"


def _parse_project_jsonl(text: str, where: str) -> GeneratedProject:
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise SourceError(f"{where}: empty project file")
    try:
        record = json.loads(lines[0])
        record["commits"] = [json.loads(line) for line in lines[1:]]
    except json.JSONDecodeError as exc:
        raise SourceError(f"{where}: invalid JSON: {exc}") from exc
    return project_from_dict(record)


def stratified(projects: Iterable[GeneratedProject],
               limit: int) -> list[GeneratedProject]:
    """The first ``limit`` projects, drawn round-robin across patterns.

    The corpus is laid out pattern-by-pattern, so a plain head slice of
    a small limit would be a single-pattern (often constant-measure)
    sample; round-robin keeps tiny exports analyzable.
    """
    groups: dict[object, list[GeneratedProject]] = {}
    for project in projects:
        groups.setdefault(project.intended_pattern, []).append(project)
    picked: list[GeneratedProject] = []
    queues = list(groups.values())
    while queues and len(picked) < limit:
        for queue in list(queues):
            if len(picked) >= limit:
                break
            picked.append(queue.pop(0))
            if not queue:
                queues.remove(queue)
    return picked


def export_corpus_dir(corpus: Corpus, root: str | Path,
                      limit: int | None = None) -> Path:
    """Write ``corpus`` as a JSONL corpus directory.

    Args:
        corpus: the corpus to export.
        root: target directory (created if missing).
        limit: export only this many projects, sampled round-robin
            across patterns so small exports stay pattern-diverse.

    Returns:
        The directory path.

    Raises:
        SourceError: when the directory cannot be written.
    """
    root = Path(root)
    projects = list(corpus.projects)
    if limit is not None:
        projects = stratified(projects, limit)
    entries = []
    try:
        (root / _PROJECTS_SUBDIR).mkdir(parents=True, exist_ok=True)
        for project in projects:
            text = _project_jsonl(project)
            relative = f"{_PROJECTS_SUBDIR}/{project.name}.jsonl"
            (root / relative).write_text(text)
            entries.append({
                "id": project.name,
                "file": relative,
                "sha256": hashlib.sha256(
                    text.encode("utf-8")).hexdigest(),
            })
        manifest = {
            "format": CORPUS_DIR_FORMAT,
            "version": CORPUS_DIR_VERSION,
            "seed": corpus.seed,
            "mode": "corpus",
            "projects": entries,
        }
        (root / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    except OSError as exc:
        raise SourceError(
            f"cannot write corpus directory {root}: {exc}") from exc
    return root


class CorpusDirSource:
    """A corpus directory as a lazy, lightweight history source.

    The instance carries only the root path and the parsed manifest —
    pickling it to a worker costs a few kilobytes; each worker reads
    and parses only the project files it is assigned.

    Args:
        root: directory written by :func:`export_corpus_dir`.

    Raises:
        SourceError: (on first use) for a missing/invalid manifest.
    """

    lightweight = True

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self._manifest: dict | None = None

    @property
    def mode(self) -> str:
        self._index()
        return self._manifest.get("mode", "corpus")

    def _index(self) -> dict[str, dict]:
        if self._manifest is None:
            path = self.root / MANIFEST_NAME
            try:
                manifest = json.loads(path.read_text())
            except OSError as exc:
                raise SourceError(
                    f"not a corpus directory (cannot read {path}): "
                    f"{exc}") from exc
            except json.JSONDecodeError as exc:
                raise SourceError(
                    f"{path}: invalid manifest JSON: {exc}") from exc
            if manifest.get("format") != CORPUS_DIR_FORMAT:
                raise SourceError(
                    f"{path}: not a {CORPUS_DIR_FORMAT} manifest")
            if manifest.get("version") != CORPUS_DIR_VERSION:
                raise SourceError(
                    f"{path}: unsupported corpus-dir version "
                    f"{manifest.get('version')!r} (expected "
                    f"{CORPUS_DIR_VERSION})")
            manifest["_by_id"] = {
                entry["id"]: entry for entry in manifest["projects"]
            }
            self._manifest = manifest
        return self._manifest["_by_id"]

    def _entry(self, pid: str) -> dict:
        try:
            return self._index()[pid]
        except KeyError:
            raise SourceError(
                f"unknown project id {pid!r} in corpus directory "
                f"{self.root}") from None

    @property
    def seed(self) -> int:
        """The seed recorded at export time (0 for foreign corpora)."""
        self._index()
        return int(self._manifest.get("seed", 0))

    def identity(self) -> list:
        """Content identity for engine-session registries.

        Hashes the manifest file itself — it indexes every project
        file's SHA-256, so any content change on disk changes this
        identity and invalidates a session's replayed enumeration.
        """
        path = self.root / MANIFEST_NAME
        try:
            digest = hashlib.sha256(path.read_bytes()).hexdigest()
        except OSError as exc:
            raise SourceError(
                f"not a corpus directory (cannot read {path}): "
                f"{exc}") from exc
        return ["dir", CORPUS_DIR_FORMAT, CORPUS_DIR_VERSION, digest]

    def project_ids(self) -> tuple[str, ...]:
        return tuple(self._index())

    def fingerprint(self, pid: str) -> str:
        # The manifest digest covers the full project file — commits,
        # metadata and plan — which is exactly the record computation's
        # input; no file read needed.
        return f"{CORPUS_DIR_FORMAT}-v{CORPUS_DIR_VERSION}:" \
               f"{self._entry(pid)['sha256']}"

    def load(self, pid: str) -> GeneratedProject:
        entry = self._entry(pid)
        path = self.root / entry["file"]
        try:
            text = path.read_text()
        except OSError as exc:
            raise SourceError(
                f"cannot read project {pid!r} ({path}): {exc}") from exc
        return _parse_project_jsonl(text, str(path))

    def __len__(self) -> int:
        return len(self._index())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CorpusDirSource({str(self.root)!r})"


def import_corpus_dir(root: str | Path) -> Corpus:
    """Load a whole corpus directory back into an in-memory corpus.

    Raises:
        SourceError: for a missing/invalid manifest or project file.
    """
    source = CorpusDirSource(root)
    projects = tuple(source.load(pid) for pid in source.project_ids())
    return Corpus(projects=projects, seed=source.seed)
