"""The versioned JSONL-on-disk corpus format and its source.

Two layouts share one manifest envelope:

* **v1 (one file per project)**::

      <root>/
        manifest.json            format tag, version, seed, mode,
                                 per-project file + sha256 index
        projects/<pid>.jsonl     one project: a header line (metadata,
                                 plan, source series) followed by one
                                 line per DDL commit

* **v2 (sharded)** — the 100k-project layout::

      <root>/
        manifest.json            shard index: per-shard file, SHA-256
                                 and count, plus per-project id,
                                 sha256, byte offset/length and pattern
        shards/NNNN.jsonl        many projects per file, one JSON line
                                 per project

The manifest's per-project SHA-256 digests double as the source's
fingerprints, so the engine's content-addressed cache can decide
hit/miss without opening a single data file, and a v2 ``load`` is one
seek + one line parse. Writing is streaming in both layouts — projects
are consumed one at a time and the manifest is emitted **last**, so a
crashed export never looks like a valid corpus. Export → import is a
lossless round trip (the study report over an imported corpus is
byte-identical to the original — pinned by tests).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.corpus.dataset import project_from_dict, project_to_dict
from repro.corpus.generator import Corpus, GeneratedProject
from repro.errors import SourceError
from repro.sources.base import SourceHandle

#: On-disk format tag; anything else in the manifest is rejected.
CORPUS_DIR_FORMAT = "repro-corpus-dir"

#: Format version of the one-file-per-project layout.
CORPUS_DIR_VERSION = 1

#: Format version of the sharded layout.
CORPUS_DIR_VERSION_SHARDED = 2

#: Manifest versions this source can read.
SUPPORTED_CORPUS_VERSIONS = (CORPUS_DIR_VERSION,
                             CORPUS_DIR_VERSION_SHARDED)

#: Projects per shard when ``--shard-size`` is requested without a
#: number. Around 256 small projects a shard keeps file counts three
#: orders of magnitude below project counts while individual shards
#: stay re-readable in milliseconds.
DEFAULT_SHARD_SIZE = 256

MANIFEST_NAME = "manifest.json"
_PROJECTS_SUBDIR = "projects"
_SHARDS_SUBDIR = "shards"


def _project_jsonl(project: GeneratedProject) -> str:
    """One project rendered as JSONL: header line + commit lines."""
    record = project_to_dict(project)
    commits = record.pop("commits")
    lines = [json.dumps(record, sort_keys=True)]
    lines.extend(json.dumps(commit, sort_keys=True)
                 for commit in commits)
    return "\n".join(lines) + "\n"


def _parse_project_jsonl(text: str, where: str) -> GeneratedProject:
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise SourceError(f"{where}: empty project file")
    try:
        record = json.loads(lines[0])
        record["commits"] = [json.loads(line) for line in lines[1:]]
    except json.JSONDecodeError as exc:
        raise SourceError(f"{where}: invalid JSON: {exc}") from exc
    return project_from_dict(record)


def _project_line(project: GeneratedProject) -> bytes:
    """One project as a single v2 shard line (no trailing newline)."""
    return json.dumps(project_to_dict(project),
                      sort_keys=True).encode("utf-8")


def stratified(projects: Iterable[GeneratedProject],
               limit: int) -> list[GeneratedProject]:
    """The first ``limit`` projects, drawn round-robin across patterns.

    The corpus is laid out pattern-by-pattern, so a plain head slice of
    a small limit would be a single-pattern (often constant-measure)
    sample; round-robin keeps tiny exports analyzable.
    """
    groups: dict[object, list[GeneratedProject]] = {}
    for project in projects:
        groups.setdefault(project.intended_pattern, []).append(project)
    picked: list[GeneratedProject] = []
    queues = list(groups.values())
    while queues and len(picked) < limit:
        for queue in list(queues):
            if len(picked) >= limit:
                break
            picked.append(queue.pop(0))
            if not queue:
                queues.remove(queue)
    return picked


@dataclass(frozen=True)
class CorpusWriteReport:
    """What one streaming corpus write produced.

    Attributes:
        root: the corpus directory.
        projects: projects written.
        shards: shard files written (0 for the v1 per-project layout).
    """

    root: Path
    projects: int
    shards: int


def write_corpus_dir(projects: Iterable[GeneratedProject],
                     root: str | Path, *,
                     seed: int = 0,
                     mode: str = "corpus",
                     shard_size: int | None = None) -> CorpusWriteReport:
    """Stream ``projects`` to disk as a JSONL corpus directory.

    Projects are consumed one at a time — peak memory is one project
    (v1) or one shard's index entries (v2), never the corpus — and the
    manifest is written last, so an interrupted export is recognizably
    invalid rather than silently truncated.

    Args:
        projects: any iterable of generated projects (a generator is
            fine; it is consumed exactly once).
        root: target directory (created if missing).
        seed: recorded in the manifest (0 for foreign corpora).
        mode: recorded source mode (``"corpus"``).
        shard_size: ``None`` writes the v1 one-file-per-project layout;
            a positive int packs that many projects per v2 shard file.

    Returns:
        A :class:`CorpusWriteReport` (root, project and shard counts).

    Raises:
        SourceError: when the directory cannot be written, or for a
            non-positive ``shard_size``.
    """
    root = Path(root)
    if shard_size is not None and shard_size < 1:
        raise SourceError(
            f"shard_size must be >= 1, got {shard_size}")
    try:
        if shard_size is None:
            return _write_v1(projects, root, seed, mode)
        return _write_v2(projects, root, seed, mode, shard_size)
    except OSError as exc:
        raise SourceError(
            f"cannot write corpus directory {root}: {exc}") from exc


def _write_manifest(root: Path, manifest: dict) -> None:
    (root / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n")


def _write_v1(projects: Iterable[GeneratedProject], root: Path,
              seed: int, mode: str) -> CorpusWriteReport:
    entries = []
    (root / _PROJECTS_SUBDIR).mkdir(parents=True, exist_ok=True)
    for project in projects:
        text = _project_jsonl(project)
        relative = f"{_PROJECTS_SUBDIR}/{project.name}.jsonl"
        (root / relative).write_text(text)
        entries.append({
            "id": project.name,
            "file": relative,
            "sha256": hashlib.sha256(
                text.encode("utf-8")).hexdigest(),
        })
    _write_manifest(root, {
        "format": CORPUS_DIR_FORMAT,
        "version": CORPUS_DIR_VERSION,
        "seed": seed,
        "mode": mode,
        "projects": entries,
    })
    return CorpusWriteReport(root=root, projects=len(entries), shards=0)


def _write_v2(projects: Iterable[GeneratedProject], root: Path,
              seed: int, mode: str,
              shard_size: int) -> CorpusWriteReport:
    shards: list[dict] = []
    total = 0
    (root / _SHARDS_SUBDIR).mkdir(parents=True, exist_ok=True)
    handle = None
    shard_hash = None
    shard_entries: list[dict] = []
    offset = 0

    def close_shard() -> None:
        nonlocal handle
        if handle is None:
            return
        handle.close()
        handle = None
        shards.append({
            "file": f"{_SHARDS_SUBDIR}/{len(shards):04d}.jsonl",
            "sha256": shard_hash.hexdigest(),
            "count": len(shard_entries),
            "projects": list(shard_entries),
        })

    for project in projects:
        if handle is None:
            relative = f"{_SHARDS_SUBDIR}/{len(shards):04d}.jsonl"
            handle = (root / relative).open("wb")
            shard_hash = hashlib.sha256()
            shard_entries = []
            offset = 0
        line = _project_line(project)
        handle.write(line + b"\n")
        shard_hash.update(line + b"\n")
        shard_entries.append({
            "id": project.name,
            "sha256": hashlib.sha256(line).hexdigest(),
            "offset": offset,
            "length": len(line),
            "pattern": project.intended_pattern.value,
        })
        offset += len(line) + 1
        total += 1
        if len(shard_entries) >= shard_size:
            close_shard()
    close_shard()
    _write_manifest(root, {
        "format": CORPUS_DIR_FORMAT,
        "version": CORPUS_DIR_VERSION_SHARDED,
        "seed": seed,
        "mode": mode,
        "shard_size": shard_size,
        "count": total,
        "shards": shards,
    })
    return CorpusWriteReport(root=root, projects=total,
                             shards=len(shards))


def export_corpus_dir(corpus: Corpus, root: str | Path,
                      limit: int | None = None,
                      shard_size: int | None = None) -> Path:
    """Write an in-memory ``corpus`` as a JSONL corpus directory.

    Args:
        corpus: the corpus to export.
        root: target directory (created if missing).
        limit: export only this many projects, sampled round-robin
            across patterns so small exports stay pattern-diverse.
        shard_size: ``None`` for the v1 layout, a positive int for the
            sharded v2 layout (see :func:`write_corpus_dir`).

    Returns:
        The directory path.

    Raises:
        SourceError: when the directory cannot be written.
    """
    projects: Iterable[GeneratedProject] = corpus.projects
    if limit is not None:
        projects = stratified(list(projects), limit)
    return write_corpus_dir(projects, root, seed=corpus.seed,
                            shard_size=shard_size).root


class CorpusDirSource:
    """A corpus directory as a lazy, lightweight history source.

    The instance carries only the root path and the parsed manifest —
    pickling it to a worker costs a few kilobytes; each worker reads
    and parses only the project files (v1) or shard line ranges (v2)
    it is assigned. Both layouts present the same protocol surface;
    the sharded one additionally exposes :meth:`iter_handle_shards`
    so an engine session can memoize handle enumeration per shard.

    Args:
        root: directory written by :func:`write_corpus_dir`.

    Raises:
        SourceError: (on first use) for a missing/invalid manifest.
    """

    lightweight = True

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self._manifest: dict | None = None

    @property
    def mode(self) -> str:
        self._index()
        return self._manifest.get("mode", "corpus")

    @property
    def version(self) -> int:
        """The manifest's layout version (1 per-project, 2 sharded)."""
        self._index()
        return int(self._manifest["version"])

    def _index(self) -> dict[str, dict]:
        if self._manifest is None:
            path = self.root / MANIFEST_NAME
            try:
                manifest = json.loads(path.read_text())
            except OSError as exc:
                raise SourceError(
                    f"not a corpus directory (cannot read {path}): "
                    f"{exc}") from exc
            except json.JSONDecodeError as exc:
                raise SourceError(
                    f"{path}: invalid manifest JSON: {exc}") from exc
            if manifest.get("format") != CORPUS_DIR_FORMAT:
                raise SourceError(
                    f"{path}: not a {CORPUS_DIR_FORMAT} manifest")
            if manifest.get("version") not in SUPPORTED_CORPUS_VERSIONS:
                raise SourceError(
                    f"{path}: unsupported corpus-dir version "
                    f"{manifest.get('version')!r} (expected one of "
                    f"{SUPPORTED_CORPUS_VERSIONS})")
            if manifest["version"] == CORPUS_DIR_VERSION_SHARDED:
                by_id = {}
                for shard in manifest["shards"]:
                    for entry in shard["projects"]:
                        by_id[entry["id"]] = dict(entry,
                                                  file=shard["file"])
                manifest["_by_id"] = by_id
            else:
                manifest["_by_id"] = {
                    entry["id"]: entry
                    for entry in manifest["projects"]
                }
            self._manifest = manifest
        return self._manifest["_by_id"]

    def _entry(self, pid: str) -> dict:
        try:
            return self._index()[pid]
        except KeyError:
            raise SourceError(
                f"unknown project id {pid!r} in corpus directory "
                f"{self.root}") from None

    @property
    def seed(self) -> int:
        """The seed recorded at export time (0 for foreign corpora)."""
        self._index()
        return int(self._manifest.get("seed", 0))

    def identity(self) -> list:
        """Content identity for engine-session registries.

        Hashes the manifest file itself — it indexes every project's
        SHA-256, so any content change on disk changes this identity
        and invalidates a session's replayed enumeration.
        """
        path = self.root / MANIFEST_NAME
        try:
            digest = hashlib.sha256(path.read_bytes()).hexdigest()
        except OSError as exc:
            raise SourceError(
                f"not a corpus directory (cannot read {path}): "
                f"{exc}") from exc
        return ["dir", CORPUS_DIR_FORMAT, CORPUS_DIR_VERSION, digest]

    def project_ids(self) -> tuple[str, ...]:
        return tuple(self._index())

    def _handle(self, entry: dict) -> SourceHandle:
        version = self._manifest["version"]
        return SourceHandle(
            pid=entry["id"],
            fingerprint=f"{CORPUS_DIR_FORMAT}-v{version}:"
                        f"{entry['sha256']}")

    def fingerprint(self, pid: str) -> str:
        # The manifest digest covers the full project content —
        # commits, metadata and plan — which is exactly the record
        # computation's input; no file read needed.
        return self._handle(self._entry(pid)).fingerprint

    def iter_handles(self) -> Iterator[SourceHandle]:
        """One handle per project, straight off the manifest index."""
        for entry in self._index().values():
            yield self._handle(entry)

    def count(self) -> int:
        """Project total without touching any data file."""
        return len(self._index())

    def stratum(self, pid: str) -> str | None:
        """The recorded pattern (v2 manifests; None on v1)."""
        return self._entry(pid).get("pattern")

    def iter_handle_shards(self
                           ) -> Iterator[tuple[str, list[SourceHandle]]]:
        """``(shard_key, handles)`` per shard, for session registries.

        The key folds in the resolved root, the shard file name and
        the shard's content hash, so an engine session can replay a
        shard's enumeration exactly when that shard is byte-identical
        — re-exporting one shard invalidates only its own key. A v1
        corpus is one logical shard keyed off the manifest digest.
        """
        self._index()
        where = str(self.root.expanduser().resolve())
        if self._manifest["version"] == CORPUS_DIR_VERSION_SHARDED:
            for shard in self._manifest["shards"]:
                key = _shard_key(where, shard["file"], shard["sha256"])
                yield key, [self._handle(dict(entry, file=shard["file"]))
                            for entry in shard["projects"]]
            return
        digest = self.identity()[-1]
        yield (_shard_key(where, MANIFEST_NAME, digest),
               [self._handle(entry) for entry in self._index().values()])

    def version_chain(self, pid: str) -> tuple[str, ...]:
        """The project's version-hash chain (one hash per commit).

        Corpus payloads are one cheap JSON read, so the chain is
        derived from the loaded commits; what the delta layer's prefix
        proof then avoids is *parsing* the prefix versions' DDL — the
        dominant cost. Appending commits to a project extends its
        chain; editing any existing commit changes a prefix hash and
        fails the proof.
        """
        from repro.engine.delta import commit_chain
        return commit_chain(self.load(pid).history.commits)

    def load(self, pid: str) -> GeneratedProject:
        entry = self._entry(pid)
        if self._manifest["version"] == CORPUS_DIR_VERSION_SHARDED:
            return self._load_sharded(pid, entry)
        path = self.root / entry["file"]
        try:
            text = path.read_text()
        except OSError as exc:
            raise SourceError(
                f"cannot read project {pid!r} ({path}): {exc}") from exc
        return _parse_project_jsonl(text, str(path))

    def _load_sharded(self, pid: str, entry: dict) -> GeneratedProject:
        path = self.root / entry["file"]
        try:
            with path.open("rb") as handle:
                handle.seek(entry["offset"])
                blob = handle.read(entry["length"])
        except OSError as exc:
            raise SourceError(
                f"cannot read project {pid!r} ({path}): {exc}") from exc
        if hashlib.sha256(blob).hexdigest() != entry["sha256"]:
            raise SourceError(
                f"{path}: shard entry for {pid!r} does not match its "
                f"manifest sha256 (corrupt or truncated shard)")
        try:
            record = json.loads(blob)
        except json.JSONDecodeError as exc:
            raise SourceError(
                f"{path}: invalid JSON: {exc}") from exc
        return project_from_dict(record)

    def __len__(self) -> int:
        return len(self._index())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CorpusDirSource({str(self.root)!r})"


def _shard_key(*parts: object) -> str:
    blob = "\x1f".join(str(part) for part in parts)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def import_corpus_dir(root: str | Path) -> Corpus:
    """Load a whole corpus directory back into an in-memory corpus.

    Raises:
        SourceError: for a missing/invalid manifest or project file.
    """
    source = CorpusDirSource(root)
    projects = tuple(source.load(pid) for pid in source.project_ids())
    return Corpus(projects=projects, seed=source.seed)
