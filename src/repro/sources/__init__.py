"""repro.sources — pluggable history ingestion.

Where the engine (:mod:`repro.engine`) answers *how the study runs*,
this package answers *where the histories come from*. Every source
implements the three-method :class:`HistorySource` protocol —
``project_ids()`` / ``fingerprint(pid)`` / ``load(pid)`` — and
declares a ``mode`` (``"corpus"`` for generated projects with ground
truth, ``"histories"`` for blind classification) plus a
``lightweight`` flag (True when the source is a small picklable object
the engine can ship to workers, fanning projects out as
:class:`SourceHandle`\\ s instead of loaded histories).

Shipped sources:

* :class:`SyntheticSource` — the paper's 151-project corpus, realized
  lazily from per-project child seeds;
* :class:`CorpusDirSource` — the versioned JSONL-on-disk corpus format
  (see :func:`export_corpus_dir` / :func:`import_corpus_dir`);
* :class:`GitDirSource` — Hecate-style extraction of DDL-file
  histories from a checked-out git repository;
* :class:`InMemorySource` — adapter over objects already in memory
  (what keeps ``records_from_corpus`` / ``records_from_histories``
  working unchanged).

The CLI's ``--source`` flag maps onto :func:`source_from_spec`::

    synthetic:           the default corpus (config seed)
    synthetic:SEED       the corpus under another seed
    dir:PATH             a JSONL corpus directory
    git:PATH             a checked-out git repository
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SourceError
from repro.sources.base import (
    SOURCE_MODES,
    HistorySource,
    InMemorySource,
    SourceHandle,
    check_mode,
    iter_source_handles,
    source_count,
    source_stratum,
)
from repro.sources.corpusdir import (
    CORPUS_DIR_FORMAT,
    CORPUS_DIR_VERSION,
    CORPUS_DIR_VERSION_SHARDED,
    DEFAULT_SHARD_SIZE,
    CorpusDirSource,
    CorpusWriteReport,
    export_corpus_dir,
    import_corpus_dir,
    write_corpus_dir,
)
from repro.sources.gitdir import GitDirSource
from repro.sources.synthetic import SyntheticSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.config import StudyConfig

__all__ = [
    "CORPUS_DIR_FORMAT",
    "CORPUS_DIR_VERSION",
    "CORPUS_DIR_VERSION_SHARDED",
    "DEFAULT_SHARD_SIZE",
    "SOURCE_MODES",
    "CorpusDirSource",
    "CorpusWriteReport",
    "GitDirSource",
    "HistorySource",
    "InMemorySource",
    "SourceHandle",
    "SyntheticSource",
    "check_mode",
    "export_corpus_dir",
    "import_corpus_dir",
    "iter_source_handles",
    "source_count",
    "source_from_spec",
    "source_stratum",
    "write_corpus_dir",
]


def source_from_spec(spec: str,
                     config: "StudyConfig | None" = None
                     ) -> HistorySource:
    """Build a history source from a ``kind:argument`` spec string.

    Args:
        spec: ``synthetic:[SEED]``, ``dir:PATH`` or ``git:PATH``.
        config: supplies the default seed for ``synthetic:``.

    Raises:
        SourceError: for an unknown kind, a malformed seed, or a
            missing required argument.
    """
    kind, sep, argument = spec.partition(":")
    if not sep:
        raise SourceError(
            f"malformed source spec {spec!r}: expected KIND:ARG "
            f"(synthetic:, dir:PATH or git:PATH)")
    if kind == "synthetic":
        if argument:
            try:
                seed = int(argument)
            except ValueError:
                raise SourceError(
                    f"synthetic source seed must be an integer, "
                    f"got {argument!r}") from None
        else:
            seed = config.seed if config is not None else None
        return SyntheticSource(seed=seed)
    if kind in ("dir", "git") and not argument:
        raise SourceError(f"source spec {spec!r} needs a path")
    if kind == "dir":
        return CorpusDirSource(argument)
    if kind == "git":
        return GitDirSource(argument)
    raise SourceError(
        f"unknown source kind {kind!r}; expected synthetic, dir or git")
