"""Quantization of raw metrics into Table-1 labels.

A :class:`LabelScheme` holds the numeric boundaries; :func:`label_profile`
applies a scheme to a :class:`~repro.metrics.profile.ProjectProfile` and
yields a :class:`LabeledProfile` — the record that pattern definitions,
the decision tree and the coverage analysis all consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LabelError
from repro.labels.classes import (
    ActiveGrowthClass,
    ActivePupClass,
    BirthTimingClass,
    BirthVolumeClass,
    IntervalBirthToTopClass,
    IntervalTopToEndClass,
    TopBandTimingClass,
)
from repro.metrics.profile import ProjectProfile

_EPS = 1e-9


def _check_fraction(value: float, what: str) -> float:
    if not -_EPS <= value <= 1 + _EPS:
        raise LabelError(f"{what} must be in [0, 1], got {value}")
    return min(max(value, 0.0), 1.0)


@dataclass(frozen=True)
class LabelScheme:
    """Numeric boundaries of the quantization (defaults = paper Table 1).

    Every ``*_bounds`` tuple lists the *inclusive upper* boundary of each
    label except the last, which absorbs the remainder.
    """

    #: Birth volume: LOW <= b1 < FAIR <= b2 < HIGH < 1, FULL = 1.
    birth_volume_bounds: tuple[float, float] = (0.25, 0.75)
    #: Timing classes: V0 = month 0; EARLY <= b1 < MIDDLE <= b2 < LATE.
    timing_bounds: tuple[float, float] = (0.25, 0.75)
    #: Birth-to-top interval: ZERO = 0; SOON/FAIR/LONG upper bounds.
    interval_birth_top_bounds: tuple[float, float, float] = (0.1, 0.35, 0.75)
    #: Top-to-end interval: SOON/FAIR upper bounds; LONG < 1; FULL = 1.
    interval_top_end_bounds: tuple[float, float] = (0.25, 0.75)
    #: Active-growth share: ZERO = 0; FEW/FAIR upper bounds.
    active_growth_bounds: tuple[float, float] = (0.2, 0.75)
    #: Active-PUP share: ZERO = 0; FAIR/HIGH upper bounds.
    active_pup_bounds: tuple[float, float] = (0.08, 0.5)

    # ------------------------------------------------------------------

    def birth_volume(self, fraction: float) -> BirthVolumeClass:
        """Label the volume of activity at schema birth."""
        fraction = _check_fraction(fraction, "birth volume")
        if fraction >= 1 - _EPS:
            return BirthVolumeClass.FULL
        low, fair = self.birth_volume_bounds
        if fraction <= low:
            return BirthVolumeClass.LOW
        if fraction <= fair:
            return BirthVolumeClass.FAIR
        return BirthVolumeClass.HIGH

    def _timing(self, month: int, pct: float, enum_cls):
        if month == 0:
            return enum_cls.V0
        pct = _check_fraction(pct, "timing point")
        early, middle = self.timing_bounds
        if pct <= early:
            return enum_cls.EARLY
        if pct <= middle:
            return enum_cls.MIDDLE
        return enum_cls.LATE

    def birth_timing(self, month: int, pct: float) -> BirthTimingClass:
        """Label the time point of schema birth."""
        return self._timing(month, pct, BirthTimingClass)

    def top_band_timing(self, month: int, pct: float) -> TopBandTimingClass:
        """Label the time point of top-band attainment."""
        return self._timing(month, pct, TopBandTimingClass)

    def interval_birth_to_top(self, months: int,
                              pct: float) -> IntervalBirthToTopClass:
        """Label the birth-to-top interval length."""
        if months == 0:
            return IntervalBirthToTopClass.ZERO
        pct = _check_fraction(pct, "birth-to-top interval")
        soon, fair, long_ = self.interval_birth_top_bounds
        if pct <= soon:
            return IntervalBirthToTopClass.SOON
        if pct <= fair:
            return IntervalBirthToTopClass.FAIR
        if pct <= long_:
            return IntervalBirthToTopClass.LONG
        return IntervalBirthToTopClass.VERY_LONG

    def interval_top_to_end(self, pct: float) -> IntervalTopToEndClass:
        """Label the tail after top-band attainment."""
        pct = _check_fraction(pct, "top-to-end interval")
        if pct >= 1 - _EPS:
            return IntervalTopToEndClass.FULL
        soon, fair = self.interval_top_end_bounds
        if pct <= soon:
            return IntervalTopToEndClass.SOON
        if pct <= fair:
            return IntervalTopToEndClass.FAIR
        return IntervalTopToEndClass.LONG

    def active_growth(self, months: int,
                      share: float) -> ActiveGrowthClass:
        """Label active growth months as a share of the growth period."""
        if months == 0:
            return ActiveGrowthClass.ZERO
        share = _check_fraction(share, "active growth share")
        few, fair = self.active_growth_bounds
        if share <= few:
            return ActiveGrowthClass.FEW
        if share <= fair:
            return ActiveGrowthClass.FAIR
        return ActiveGrowthClass.HIGH

    def active_pup(self, months: int, share: float) -> ActivePupClass:
        """Label active growth months as a share of the PUP."""
        if months == 0:
            return ActivePupClass.ZERO
        share = _check_fraction(share, "active PUP share")
        fair, high = self.active_pup_bounds
        if share <= fair:
            return ActivePupClass.FAIR
        if share <= high:
            return ActivePupClass.HIGH
        return ActivePupClass.ULTRA


    # ------------------------------------------------------------------
    # serialization (reproducible ablation configs)

    def to_dict(self) -> dict:
        """The scheme's boundaries as a plain JSON-ready dict."""
        return {
            "birth_volume_bounds": list(self.birth_volume_bounds),
            "timing_bounds": list(self.timing_bounds),
            "interval_birth_top_bounds":
                list(self.interval_birth_top_bounds),
            "interval_top_end_bounds":
                list(self.interval_top_end_bounds),
            "active_growth_bounds": list(self.active_growth_bounds),
            "active_pup_bounds": list(self.active_pup_bounds),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LabelScheme":
        """Rebuild a scheme from :meth:`to_dict` output.

        Raises:
            LabelError: on missing keys or wrong boundary arity.
        """
        try:
            scheme = cls(
                birth_volume_bounds=tuple(data["birth_volume_bounds"]),
                timing_bounds=tuple(data["timing_bounds"]),
                interval_birth_top_bounds=tuple(
                    data["interval_birth_top_bounds"]),
                interval_top_end_bounds=tuple(
                    data["interval_top_end_bounds"]),
                active_growth_bounds=tuple(data["active_growth_bounds"]),
                active_pup_bounds=tuple(data["active_pup_bounds"]),
            )
        except KeyError as exc:
            raise LabelError(f"label scheme dict missing {exc}") from exc
        expected = {"birth_volume_bounds": 2, "timing_bounds": 2,
                    "interval_birth_top_bounds": 3,
                    "interval_top_end_bounds": 2,
                    "active_growth_bounds": 2, "active_pup_bounds": 2}
        for key, arity in expected.items():
            if len(data[key]) != arity:
                raise LabelError(f"{key} must have {arity} boundaries")
        return scheme


#: The paper's quantization.
DEFAULT_SCHEME = LabelScheme()


@dataclass(frozen=True)
class LabeledProfile:
    """A project profile together with all its ordinal labels.

    Attributes:
        profile: the measured profile.
        birth_volume: class of the activity share at birth.
        birth_timing: class of the birth time point.
        top_band_timing: class of the top-band time point.
        interval_birth_to_top: class of the growth interval.
        interval_top_to_end: class of the tail interval.
        active_growth: class of active months over the growth period.
        active_pup: class of active months over the PUP.
        active_growth_months: raw ActiveGrowthMonths (the classifier uses
            the raw count for its "<= 3 steps" conditions).
        has_single_vault: vault flag from the landmarks.
    """

    profile: ProjectProfile
    birth_volume: BirthVolumeClass
    birth_timing: BirthTimingClass
    top_band_timing: TopBandTimingClass
    interval_birth_to_top: IntervalBirthToTopClass
    interval_top_to_end: IntervalTopToEndClass
    active_growth: ActiveGrowthClass
    active_pup: ActivePupClass
    active_growth_months: int
    has_single_vault: bool

    @property
    def name(self) -> str:
        """The project's name."""
        return self.profile.name

    def feature_dict(self) -> dict[str, str]:
        """The label values as plain strings (decision-tree features)."""
        return {
            "birth_volume": self.birth_volume.value,
            "birth_timing": self.birth_timing.value,
            "top_band_timing": self.top_band_timing.value,
            "interval_birth_to_top": self.interval_birth_to_top.value,
            "interval_top_to_end": self.interval_top_to_end.value,
            "active_growth": self.active_growth.value,
            "active_pup": self.active_pup.value,
            "has_single_vault": str(self.has_single_vault),
        }


def label_profile(profile: ProjectProfile,
                  scheme: LabelScheme = DEFAULT_SCHEME) -> LabeledProfile:
    """Quantize every metric of ``profile`` under ``scheme``."""
    marks = profile.landmarks
    return LabeledProfile(
        profile=profile,
        birth_volume=scheme.birth_volume(marks.birth_volume_fraction),
        birth_timing=scheme.birth_timing(marks.birth_month,
                                         marks.birth_pct),
        top_band_timing=scheme.top_band_timing(marks.top_band_month,
                                               marks.top_band_pct),
        interval_birth_to_top=scheme.interval_birth_to_top(
            marks.interval_birth_to_top_months,
            marks.interval_birth_to_top_pct),
        interval_top_to_end=scheme.interval_top_to_end(
            marks.interval_top_to_end_pct),
        active_growth=scheme.active_growth(marks.active_growth_months,
                                           marks.active_pct_growth),
        active_pup=scheme.active_pup(marks.active_growth_months,
                                     marks.active_pct_pup),
        active_growth_months=marks.active_growth_months,
        has_single_vault=marks.has_vault,
    )
