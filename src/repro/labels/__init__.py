"""Quantization of time-related metrics into ordinal labels (paper §3.3).

The study reasons over *classes*, not raw numbers: every metric is mapped
to an ordinal label through the boundaries of Table 1. The boundaries
live in a :class:`LabelScheme` so alternative quantizations can be tried
without touching the pattern definitions.
"""

from repro.labels.classes import (
    ActiveGrowthClass,
    ActivePupClass,
    BirthTimingClass,
    BirthVolumeClass,
    IntervalBirthToTopClass,
    IntervalTopToEndClass,
    TopBandTimingClass,
)
from repro.labels.quantization import (
    DEFAULT_SCHEME,
    LabelScheme,
    LabeledProfile,
    label_profile,
)

__all__ = [
    "ActiveGrowthClass",
    "ActivePupClass",
    "BirthTimingClass",
    "BirthVolumeClass",
    "DEFAULT_SCHEME",
    "IntervalBirthToTopClass",
    "IntervalTopToEndClass",
    "LabelScheme",
    "LabeledProfile",
    "TopBandTimingClass",
    "label_profile",
]
