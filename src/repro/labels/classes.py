"""Ordinal label enums for the quantized schema-evolution metrics.

One enum per row of the paper's Table 1. Members are ordered from
"smallest/earliest" to "largest/latest"; their ``order`` attribute makes
them usable as ordinal features for the decision tree.
"""

from __future__ import annotations

import enum


class _OrdinalLabel(enum.Enum):
    """Base for ordered label enums."""

    @property
    def order(self) -> int:
        """0-based ordinal position within the enum."""
        return list(type(self)).index(self)

    def __lt__(self, other):
        if type(self) is not type(other):
            return NotImplemented
        return self.order < other.order

    def __le__(self, other):
        if type(self) is not type(other):
            return NotImplemented
        return self.order <= other.order


class BirthVolumeClass(_OrdinalLabel):
    """Volume of activity at schema birth, as % of total change."""

    LOW = "low"        # <= 0.25
    FAIR = "fair"      # (0.25 .. 0.75]
    HIGH = "high"      # (0.75 .. 1)
    FULL = "full"      # exactly 1


class BirthTimingClass(_OrdinalLabel):
    """Time point of schema birth, as % of the project update period."""

    V0 = "v0"          # the originating version (month 0)
    EARLY = "early"    # (0 .. 0.25]
    MIDDLE = "middle"  # (0.25 .. 0.75]
    LATE = "late"      # > 0.75


class TopBandTimingClass(_OrdinalLabel):
    """Time point of reaching 90 % of total activity, as % of PUP."""

    V0 = "v0"
    EARLY = "early"
    MIDDLE = "middle"
    LATE = "late"


class IntervalBirthToTopClass(_OrdinalLabel):
    """Length of the birth-to-top-band interval, as % of PUP."""

    ZERO = "zero"            # exactly 0
    SOON = "soon"            # (0 .. 0.1]
    FAIR = "fair"            # (0.1 .. 0.35]
    LONG = "long"            # (0.35 .. 0.75]
    VERY_LONG = "very_long"  # > 0.75


class IntervalTopToEndClass(_OrdinalLabel):
    """Length of the tail after top-band attainment, as % of PUP."""

    SOON = "soon"    # <= 0.25
    FAIR = "fair"    # (0.25 .. 0.75]
    LONG = "long"    # (0.75 .. 1)
    FULL = "full"    # exactly 1 (top band attained at the first month)


class ActiveGrowthClass(_OrdinalLabel):
    """Active months as a share of the growth period."""

    ZERO = "zero"    # exactly 0
    FEW = "few"      # (0 .. 0.2]
    FAIR = "fair"    # (0.2 .. 0.75]
    HIGH = "high"    # > 0.75


class ActivePupClass(_OrdinalLabel):
    """Active growth months as a share of the whole PUP."""

    ZERO = "zero"    # exactly 0
    FAIR = "fair"    # (0 .. 0.08]
    HIGH = "high"    # (0.08 .. 0.5]
    ULTRA = "ultra"  # > 0.5
