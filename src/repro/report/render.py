"""Text renderings of :class:`~repro.study.pipeline.StudyResults`.

One function per paper artifact; every benchmark prints through these so
``pytest benchmarks/ --benchmark-only`` shows the same rows the paper
reports.
"""

from __future__ import annotations

from repro.analysis.prediction import BUCKET_LABELS
from repro.analysis.records import MEASURE_NAMES
from repro.analysis.stats_tables import TABLE1_ROWS
from repro.patterns.taxonomy import (
    Family,
    Pattern,
    REAL_PATTERNS,
    family_of,
)
from repro.study.pipeline import StudyResults
from repro.viz.tables import format_table


def render_table1(results: StudyResults) -> str:
    """Table 1 — label distribution of the quantized metrics."""
    rows = []
    for key, enum_cls, _attr in TABLE1_ROWS:
        counts = results.table1.rows[key]
        cells = [f"{member.value}={counts[member.value]}"
                 for member in enum_cls]
        rows.append([key, "  ".join(cells)])
    return format_table(
        ["Metric", "Label counts"], rows,
        title=f"Table 1 — labeling of schema evolution metrics "
              f"(n={results.table1.total})")


def render_table2(results: StudyResults) -> str:
    """Table 2 — population, exceptions and overlaps per pattern."""
    rows = [[pattern.value, population, exceptions, overlaps]
            for pattern, population, exceptions, overlaps
            in results.table2.rows]
    rows.append(["(unclassified)", results.table2.unclassified, "-", "-"])
    return format_table(
        ["Pattern", "#prjs", "Exceptions", "Overlaps"], rows,
        title="Table 2 — exceptions and overlaps of the pattern "
              "definitions")


def render_correlations(results: StudyResults) -> str:
    """Fig. 2 — Spearman correlation matrix of the time measures."""
    headers = ["measure"] + [name[:14] for name in MEASURE_NAMES]
    rows = []
    for a in MEASURE_NAMES:
        row: list[object] = [a]
        for b in MEASURE_NAMES:
            rho = results.correlations[(a, b)]
            row.append(f"{rho:+.2f}")
        rows.append(row)
    return format_table(headers, rows,
                        title="Fig. 2 — Spearman correlations of "
                              "time-related metrics")


def render_fig4_overview(results: StudyResults) -> str:
    """Fig. 4 — per-pattern characteristics overview."""
    rows = []
    for pattern in REAL_PATTERNS:
        members = [r for r in results.records if r.pattern is pattern]
        if not members:
            continue
        family = family_of(pattern)
        rows.append([
            family.value if family else "-",
            f"{pattern.value} ({len(members)})",
            _label_range(members, "birth_volume"),
            _label_range(members, "birth_timing"),
            _label_range(members, "top_band_timing"),
            _bool_range(members),
            _label_range(members, "interval_birth_to_top"),
            _agm_range(members),
            _label_range(members, "interval_top_to_end"),
        ])
    return format_table(
        ["Family", "Pattern", "BirthVol", "BirthTime", "TopBand",
         "Vault", "Birth->Top", "ActiveGrowth", "Top->End"],
        rows,
        title="Fig. 4 — overview of the time-related pattern "
              "characteristics")


def _label_range(members, attr: str) -> str:
    values = sorted({getattr(r.labeled, attr).value for r in members})
    return ",".join(values)


def _bool_range(members) -> str:
    values = sorted({str(r.labeled.has_single_vault) for r in members})
    return ",".join(values)


def _agm_range(members) -> str:
    values = [r.labeled.active_growth_months for r in members]
    low, high = min(values), max(values)
    return str(low) if low == high else f"{low}-{high}"


def render_tree(results: StudyResults) -> str:
    """Fig. 5 — the decision tree and its training misclassifications."""
    lines = [
        "Fig. 5 — decision tree over the defining label features",
        f"misclassified: {len(results.tree_misclassified)} of "
        f"{results.total} "
        f"({', '.join(results.tree_misclassified) or 'none'})",
        "",
        results.tree.render(),
    ]
    return "\n".join(lines)


def render_coverage(results: StudyResults) -> str:
    """Fig. 6 — active-domain coverage of the definitions."""
    coverage = results.coverage
    rows = []
    for cell in sorted(coverage.cells):
        patterns = coverage.cells[cell]
        content = ", ".join(f"{p.value}:{n}"
                            for p, n in sorted(patterns.items(),
                                               key=lambda kv: kv[0].value))
        rows.append([cell[0], cell[1], cell[2], cell[3], content])
    title = (f"Fig. 6 — active-domain coverage "
             f"({coverage.populated_cells} of "
             f"{coverage.total_cells_possible} cells populated, "
             f"{len(coverage.shared_cells)} shared)")
    return format_table(["birth", "top", "interval", "agm", "patterns"],
                        rows, title=title)


def render_prediction(results: StudyResults) -> str:
    """Fig. 7 — P(pattern | point of schema birth)."""
    prediction = results.prediction
    headers = ["Pattern", "Overall"] + list(BUCKET_LABELS)
    rows = []
    for pattern in REAL_PATTERNS:
        counts = prediction.counts.get(pattern, (0, 0, 0, 0))
        row: list[object] = [
            pattern.value,
            f"{sum(counts)} ({prediction.overall_probability(pattern):.0%})",
        ]
        for bucket in range(4):
            probability = prediction.probability(pattern, bucket)
            row.append(f"{counts[bucket]} ({probability:.0%})")
        rows.append(row)
    totals_row: list[object] = ["TOTAL", str(prediction.total)]
    totals_row += [str(t) for t in prediction.bucket_totals]
    rows.append(totals_row)
    return format_table(headers, rows,
                        title="Fig. 7 — probability of a pattern given "
                              "the point of schema birth")


def render_section34(results: StudyResults) -> str:
    """§3.4 — headline statistics."""
    stats = results.stats34
    normality = results.normality
    rows = [
        ["projects", stats.total],
        ["born at V0", stats.born_at_v0],
        ["born in first 10% of time", stats.born_first_10pct],
        ["born at V0 or first 25%", stats.born_first_25pct],
        ["top band by 25% of time", stats.top_attained_first_25pct],
        ["High/Full activity at birth", stats.high_activity_at_birth],
        ["Full activity at birth", stats.full_activity_at_birth],
        ["share of projects with a vault", f"{stats.vault_share:.0%}"],
        ["zero active growth months", stats.zero_active_growth],
        ["<=1 active growth months", stats.at_most_one_active_growth],
        ["birth->top under 10% of PUP",
         stats.interval_birth_top_under_10pct],
        ["birth->top exactly zero", stats.interval_birth_top_zero],
        ["max Shapiro-Wilk p-value", f"{normality.max_p_value:.2e}"],
        ["all measures non-normal", normality.all_non_normal],
    ]
    return format_table(["statistic", "value"], rows,
                        title="Sec. 3.4 — statistical properties of the "
                              "time-related measures")


def render_section52(results: StudyResults) -> str:
    """§5.2 — pattern cohesion via Mean Distance to Centroid."""
    report = results.centroids
    rows = [[name, report.sizes[name], report.mdc[name],
             report.max_distance[name]]
            for name in sorted(report.mdc)]
    separation = report.separation_ratio()
    return format_table(
        ["Pattern", "n", "MDC", "max distance"], rows,
        title=f"Sec. 5.2 — cohesion of the patterns "
              f"(20-point vectors; min-centroid-gap / max-MDC = "
              f"{separation:.2f})")


def render_section61(results: StudyResults) -> str:
    """§6.1 — activity volume per pattern."""
    rows = []
    for row in results.activity.rows:
        rows.append([row.pattern.value, row.count,
                     row.median_post_birth, row.median_total,
                     row.median_expansion, row.median_maintenance,
                     row.median_pup, row.median_birth_size])
    return format_table(
        ["Pattern", "n", "med post-birth", "med total", "med expan",
         "med maint", "med PUP", "med birth size"], rows,
        title="Sec. 6.1 — activity measures per pattern (medians)")


def render_section63(results: StudyResults) -> str:
    """§6.3 — change-type mixture per pattern."""
    mix = results.change_mix
    rows = []
    for row in mix.rows:
        family = family_of(row.pattern)
        rows.append([
            family.value if family else "-",
            row.pattern.value,
            f"{row.median_expansion_fraction:.0%}",
            f"{row.table_granule_fraction:.0%}",
            f"{row.monothematic_projects}/{row.count}",
        ])
    title = (f"Sec. 6.3 — change mixture "
             f"(overall expansion {mix.overall_expansion_fraction:.0%}, "
             f"whole-table granule "
             f"{mix.overall_table_granule_fraction:.0%})")
    return format_table(
        ["Family", "Pattern", "med expansion", "table granule",
         "monothematic"], rows, title=title)
