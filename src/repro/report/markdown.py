"""Single-document Markdown report of a study run.

``repro-schema report out.md`` (or :func:`markdown_report`) renders the
complete study — headline summary plus every table/figure — into one
self-contained Markdown file, the shareable artifact of a run.
"""

from __future__ import annotations

from repro.patterns.taxonomy import Family, family_of
from repro.report.render import (
    render_correlations,
    render_coverage,
    render_fig4_overview,
    render_prediction,
    render_section34,
    render_section52,
    render_section61,
    render_section63,
    render_table1,
    render_table2,
    render_tree,
)
from repro.study.pipeline import StudyResults

_SECTIONS = (
    ("Table 1 — metric quantization", render_table1),
    ("Table 2 — patterns, exceptions, overlaps", render_table2),
    ("Figure 2 — Spearman correlations", render_correlations),
    ("Figure 4 — pattern characteristics", render_fig4_overview),
    ("Figure 5 — decision tree", render_tree),
    ("Figure 6 — active-domain coverage", render_coverage),
    ("Figure 7 — birth-point prediction", render_prediction),
    ("Section 3.4 — statistics", render_section34),
    ("Section 5.2 — cohesion", render_section52),
    ("Section 6.1 — activity volume", render_section61),
    ("Section 6.3 — change mixture", render_section63),
)


def _summary(results: StudyResults) -> str:
    stats = results.stats34
    by_family = {family: 0 for family in Family}
    for record in results.records:
        family = family_of(record.pattern)
        if family is not None:
            by_family[family] += 1
    total = results.total
    lines = [
        f"* **{total} projects** studied; "
        f"{results.strict_agreement} satisfy their pattern definition "
        f"strictly, {results.table2.total_exceptions} are documented "
        f"exceptions.",
        f"* Families: Be Quick or Be Dead "
        f"{by_family[Family.BE_QUICK_OR_BE_DEAD]} "
        f"({by_family[Family.BE_QUICK_OR_BE_DEAD] / total:.0%}), "
        f"Stairway to Heaven {by_family[Family.STAIRWAY_TO_HEAVEN]} "
        f"({by_family[Family.STAIRWAY_TO_HEAVEN] / total:.0%}), "
        f"Scared to Fall Asleep Again "
        f"{by_family[Family.SCARED_TO_FALL_ASLEEP_AGAIN]} "
        f"({by_family[Family.SCARED_TO_FALL_ASLEEP_AGAIN] / total:.0%}).",
        f"* Aversion to change: {stats.zero_active_growth} projects "
        f"({stats.zero_active_growth / total:.0%}) have zero active "
        f"growth months; {stats.vault_share:.0%} vault straight to the "
        f"top band.",
        f"* Schema birth: {stats.born_at_v0} projects are born with the "
        f"project's first version; {stats.born_first_25pct} within the "
        f"first quarter of project life.",
        f"* The decision tree misclassifies "
        f"{len(results.tree_misclassified)} of {total} projects.",
    ]
    return "\n".join(lines)


def markdown_report(results: StudyResults,
                    title: str = "Schema-evolution timing study"
                    ) -> str:
    """Render the full study as one Markdown document."""
    parts = [f"# {title}", "", "## Summary", "", _summary(results), ""]
    for heading, renderer in _SECTIONS:
        parts.append(f"## {heading}")
        parts.append("")
        parts.append("```text")
        parts.append(renderer(results))
        parts.append("```")
        parts.append("")
    return "\n".join(parts)
