"""CSV export of the study dataset.

The paper publishes its measurements as downloadable datasets; this
module writes the equivalent artifacts for any record set:

* ``measurements.csv`` — one row per project: raw metrics, labels,
  pattern assignment;
* ``heartbeats.csv`` — long format, one row per (project, month) with
  the schema activity of that month;
* ``vectors.csv`` — the 20-point cumulative-progress vectors.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from repro.analysis.records import StudyRecord

_MEASUREMENT_COLUMNS = (
    "project", "pattern", "is_exception", "pup_months", "birth_month",
    "birth_pct", "birth_volume_fraction", "top_band_month",
    "top_band_pct", "interval_birth_to_top_months",
    "interval_birth_to_top_pct", "interval_top_to_end_pct", "has_vault",
    "active_growth_months", "active_pct_growth", "active_pct_pup",
    "total_activity", "post_birth_activity", "expansion", "maintenance",
    "schema_size_at_birth",
    "label_birth_volume", "label_birth_timing", "label_top_band_timing",
    "label_interval_birth_to_top", "label_interval_top_to_end",
    "label_active_growth", "label_active_pup",
)


def export_measurements(records: Sequence[StudyRecord],
                        path: str | Path) -> None:
    """Write the per-project measurement table as CSV."""
    with Path(path).open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_MEASUREMENT_COLUMNS)
        for record in records:
            marks = record.profile.landmarks
            totals = record.profile.totals
            labeled = record.labeled
            writer.writerow([
                record.name, record.pattern.value,
                int(record.is_exception), marks.pup_months,
                marks.birth_month, f"{marks.birth_pct:.6f}",
                f"{marks.birth_volume_fraction:.6f}",
                marks.top_band_month, f"{marks.top_band_pct:.6f}",
                marks.interval_birth_to_top_months,
                f"{marks.interval_birth_to_top_pct:.6f}",
                f"{marks.interval_top_to_end_pct:.6f}",
                int(marks.has_vault), marks.active_growth_months,
                f"{marks.active_pct_growth:.6f}",
                f"{marks.active_pct_pup:.6f}",
                totals.total_activity, totals.post_birth_activity,
                totals.expansion, totals.maintenance,
                totals.schema_size_at_birth,
                labeled.birth_volume.value, labeled.birth_timing.value,
                labeled.top_band_timing.value,
                labeled.interval_birth_to_top.value,
                labeled.interval_top_to_end.value,
                labeled.active_growth.value, labeled.active_pup.value,
            ])


def export_heartbeats(records: Sequence[StudyRecord],
                      path: str | Path) -> None:
    """Write the monthly heartbeats in long format as CSV."""
    with Path(path).open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["project", "month", "affected_attributes",
                         "cumulative_fraction"])
        for record in records:
            series = record.profile.heartbeat
            fractions = series.cumulative_fraction()
            for month, amount in enumerate(series.monthly):
                writer.writerow([record.name, month, amount,
                                 f"{fractions[month]:.6f}"])


def export_vectors(records: Sequence[StudyRecord],
                   path: str | Path) -> None:
    """Write the 20-point progress vectors as CSV."""
    with Path(path).open("w", newline="") as handle:
        writer = csv.writer(handle)
        width = len(records[0].profile.vector) if records else 0
        writer.writerow(["project", "pattern"]
                        + [f"t{5 * i:02d}" for i in range(width)])
        for record in records:
            writer.writerow(
                [record.name, record.pattern.value]
                + [f"{v:.6f}" for v in record.profile.vector])


def export_dataset(records: Sequence[StudyRecord],
                   directory: str | Path) -> list[Path]:
    """Write the full dataset (all three CSVs) into ``directory``.

    Returns:
        The written file paths.
    """
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    paths = [base / "measurements.csv", base / "heartbeats.csv",
             base / "vectors.csv"]
    export_measurements(records, paths[0])
    export_heartbeats(records, paths[1])
    export_vectors(records, paths[2])
    return paths
