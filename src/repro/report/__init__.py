"""Rendering of study results into the paper's tables and figures,
plus CSV export of the measured dataset."""

from repro.report.export import (
    export_dataset,
    export_heartbeats,
    export_measurements,
    export_vectors,
)
from repro.report.markdown import markdown_report
from repro.report.render import (
    render_correlations,
    render_coverage,
    render_fig4_overview,
    render_prediction,
    render_section34,
    render_section52,
    render_section61,
    render_section63,
    render_table1,
    render_table2,
    render_tree,
)

__all__ = [
    "markdown_report",
    "export_dataset",
    "export_heartbeats",
    "export_measurements",
    "export_vectors",
    "render_correlations",
    "render_coverage",
    "render_fig4_overview",
    "render_prediction",
    "render_section34",
    "render_section52",
    "render_section61",
    "render_section63",
    "render_table1",
    "render_table2",
    "render_tree",
]
