"""Standalone SVG rendering of cumulative-progress charts.

Produces self-contained ``.svg`` documents visually matching the paper's
Fig. 3: blue dashed schema line, green solid source line, axes in % of
project life / % of cumulative activity.
"""

from __future__ import annotations

from repro.history.heartbeat import ActivitySeries

_WIDTH = 480
_HEIGHT = 280
_MARGIN = 42


def _polyline_points(series: ActivitySeries, samples: int = 120) -> str:
    plot_w = _WIDTH - 2 * _MARGIN
    plot_h = _HEIGHT - 2 * _MARGIN
    points = []
    for index in range(samples):
        t = index / (samples - 1)
        fraction = series.fraction_at(t)
        x = _MARGIN + t * plot_w
        y = _HEIGHT - _MARGIN - fraction * plot_h
        points.append(f"{x:.1f},{y:.1f}")
    return " ".join(points)


def svg_chart(schema: ActivitySeries,
              source: ActivitySeries | None = None,
              title: str = "") -> str:
    """Render a Fig.-3-style chart as an SVG document string.

    Args:
        schema: the schema heartbeat (blue, dashed).
        source: optional source heartbeat (green, solid).
        title: chart title printed at the top.
    """
    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
    ]
    x0, y0 = _MARGIN, _HEIGHT - _MARGIN
    x1, y1 = _WIDTH - _MARGIN, _MARGIN
    parts.append(f'<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" '
                 f'stroke="#444" stroke-width="1"/>')
    parts.append(f'<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" '
                 f'stroke="#444" stroke-width="1"/>')
    # Gridlines at 25/50/75 %.
    for pct in (0.25, 0.5, 0.75):
        gy = y0 - pct * (y0 - y1)
        gx = x0 + pct * (x1 - x0)
        parts.append(f'<line x1="{x0}" y1="{gy:.1f}" x2="{x1}" '
                     f'y2="{gy:.1f}" stroke="#ddd" stroke-width="0.5"/>')
        parts.append(f'<line x1="{gx:.1f}" y1="{y0}" x2="{gx:.1f}" '
                     f'y2="{y1}" stroke="#ddd" stroke-width="0.5"/>')
    if source is not None:
        parts.append(f'<polyline points="{_polyline_points(source)}" '
                     f'fill="none" stroke="#2a7f2a" stroke-width="1.6"/>')
    parts.append(f'<polyline points="{_polyline_points(schema)}" '
                 f'fill="none" stroke="#1f4fbf" stroke-width="1.8" '
                 f'stroke-dasharray="5,3"/>')
    if title:
        parts.append(f'<text x="{_WIDTH / 2:.0f}" y="20" '
                     f'text-anchor="middle" font-family="sans-serif" '
                     f'font-size="13">{_escape(title)}</text>')
    parts.append(f'<text x="{x0}" y="{y0 + 16}" font-family="sans-serif" '
                 f'font-size="10">0%</text>')
    parts.append(f'<text x="{x1 - 18}" y="{y0 + 16}" '
                 f'font-family="sans-serif" font-size="10">100%</text>')
    parts.append(f'<text x="{x0 - 34}" y="{y1 + 4}" '
                 f'font-family="sans-serif" font-size="10">100%</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))
