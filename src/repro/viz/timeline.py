"""ASCII timeline of table lives (Gantt-style).

Pairs with :func:`repro.metrics.tables.table_lives`: one row per table,
bars spanning birth to death (or to the project's end), update events
marked along the bar.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import MetricError
from repro.metrics.tables import TableLife


def table_timeline(lives: Sequence[TableLife], pup_months: int,
                   width: int = 60, max_rows: int = 30) -> str:
    """Render table lives as an ASCII timeline.

    Args:
        lives: table lives (from :func:`table_lives`).
        pup_months: the project's update period, for the time axis.
        width: characters available for the time axis.
        max_rows: largest number of tables to draw (the rest is
            summarized in a trailing line).

    Bar glyphs: ``=`` alive span, ``+`` birth, ``x`` death,
    ``*`` a month with update events.

    Raises:
        MetricError: for an empty life list or degenerate dimensions.
    """
    if not lives:
        raise MetricError("no table lives to draw")
    if width < 10 or pup_months < 1:
        raise MetricError("need width >= 10 and pup_months >= 1")

    def column(month: int) -> int:
        if pup_months <= 1:
            return 0
        return min(int(month / (pup_months - 1) * (width - 1)),
                   width - 1)

    label_width = min(max(len(l.name) for l in lives), 24)
    lines: list[str] = []
    shown = list(lives)[:max_rows]
    for life in shown:
        bar = [" "] * width
        start = column(life.birth_month)
        end = column(life.death_month if life.death_month is not None
                     else pup_months - 1)
        for x in range(start, end + 1):
            bar[x] = "="
        bar[start] = "+"
        if life.death_month is not None:
            bar[end] = "x"
        for month in sorted(life._active):
            bar[column(month)] = "*"
        name = life.name[:label_width]
        lines.append(f"{name:<{label_width}} |{''.join(bar)}|")
    axis = (" " * label_width + " |0%" + " " * (width - 8) + "100%|")
    lines.append(axis)
    if len(lives) > max_rows:
        lines.append(f"... and {len(lives) - max_rows} more tables")
    lines.append("+ birth   = alive   * updated   x dropped")
    return "\n".join(lines)
