"""Fixed-width table rendering for terminal reports."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render a fixed-width text table.

    Args:
        headers: column headers.
        rows: row cells; every row must have ``len(headers)`` entries.
            Floats are shown with 3 decimals, everything else via str().
        title: optional title line above the table.

    Returns:
        The rendered table as one string (no trailing newline).

    Raises:
        ValueError: when a row's width disagrees with the headers.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    for index, row in enumerate(rendered):
        if len(row) != len(headers):
            raise ValueError(f"row {index} has {len(row)} cells, "
                             f"expected {len(headers)}")
    widths = [len(h) for h in headers]
    for row in rendered:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width)
                          for cell, width in zip(cells, widths)).rstrip()

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * width for width in widths))
    out.extend(line(row) for row in rendered)
    return "\n".join(out)
