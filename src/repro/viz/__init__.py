"""Visualization: terminal and SVG renderings of schema heartbeats.

No plotting library is assumed: :mod:`repro.viz.ascii_chart` draws the
paper's Fig.-3-style cumulative-progress lines on a character grid, and
:mod:`repro.viz.svg_chart` writes standalone SVG files.
:mod:`repro.viz.tables` renders the fixed-width tables every benchmark
prints.
"""

from repro.viz.ascii_chart import annotated_chart, ascii_chart
from repro.viz.heatmap import ascii_heatmap, svg_heatmap
from repro.viz.svg_chart import svg_chart
from repro.viz.tables import format_table
from repro.viz.timeline import table_timeline

__all__ = ["annotated_chart", "ascii_chart", "ascii_heatmap", "format_table", "svg_chart",
           "svg_heatmap", "table_timeline"]
