"""ASCII rendering of cumulative-progress lines (Fig.-3 style).

Draws the schema heartbeat (``*``) and, optionally, the source-code
heartbeat (``.``) of one project on a character grid: x = % of project
life, y = % of cumulative activity.
"""

from __future__ import annotations

from repro.errors import MetricError
from repro.history.heartbeat import ActivitySeries


def _sample_curve(series: ActivitySeries, width: int) -> list[float]:
    return [series.fraction_at(x / (width - 1) if width > 1 else 0.0)
            for x in range(width)]


def ascii_chart(schema: ActivitySeries,
                source: ActivitySeries | None = None,
                width: int = 64, height: int = 16,
                title: str | None = None) -> str:
    """Render cumulative-progress curves on a character grid.

    Args:
        schema: the schema heartbeat (drawn with ``*``).
        source: optional source-code heartbeat (drawn with ``.``; where
            both curves land on one cell the schema wins).
        width: chart width in characters (>= 2).
        height: chart height in characters (>= 2).
        title: optional title printed above the chart.

    Returns:
        The chart as one string.

    Raises:
        MetricError: for degenerate dimensions.
    """
    if width < 2 or height < 2:
        raise MetricError("chart needs width >= 2 and height >= 2")
    grid = [[" "] * width for _ in range(height)]

    def plot(series: ActivitySeries, mark: str) -> None:
        for x, fraction in enumerate(_sample_curve(series, width)):
            y = height - 1 - int(fraction * (height - 1) + 1e-9)
            if grid[y][x] == " " or mark == "*":
                grid[y][x] = mark

    if source is not None:
        plot(source, ".")
    plot(schema, "*")

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("100% +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append("     |" + "".join(row))
    lines.append("  0% +" + "".join(grid[-1]))
    lines.append("      " + "0%" + " " * (width - 6) + "100%")
    legend = "      * schema"
    if source is not None:
        legend += "   . source"
    lines.append(legend)
    return "\n".join(lines)


def annotated_chart(schema: ActivitySeries, landmarks,
                    source: ActivitySeries | None = None,
                    width: int = 64, height: int = 16,
                    title: str | None = None) -> str:
    """A Fig.-1-style chart with the landmark points marked.

    Renders the plain chart plus a marker row flagging schema birth
    (``B``) and top-band attainment (``T``) on the time axis, and a
    caption with the growth/tail intervals and the vault flag.

    Args:
        schema: the schema heartbeat.
        landmarks: a :class:`~repro.metrics.landmarks.Landmarks` record
            for the same series.
        source / width / height / title: as in :func:`ascii_chart`.
    """
    base = ascii_chart(schema, source=source, width=width,
                       height=height, title=title)

    def column(month: int) -> int:
        if landmarks.pup_months <= 1:
            return 0
        return min(int(month / (landmarks.pup_months - 1)
                       * (width - 1)), width - 1)

    marker_row = [" "] * width
    birth_col = column(landmarks.birth_month)
    top_col = column(landmarks.top_band_month)
    marker_row[birth_col] = "B"
    if top_col == birth_col:
        marker_row[birth_col] = "#"  # birth and top coincide
    else:
        marker_row[top_col] = "T"
    caption = (
        f"      B=birth (month {landmarks.birth_month}, "
        f"{landmarks.birth_volume_fraction:.0%} of activity)  "
        f"T=top band (month {landmarks.top_band_month})"
        + ("  [vault]" if landmarks.has_vault else ""))
    if marker_row[birth_col] == "#":
        caption = caption.replace("B=birth", "#=birth+top", 1) \
            .replace("  T=top band "
                     f"(month {landmarks.top_band_month})", "", 1)
    return base + "\n      " + "".join(marker_row) + "\n" + caption
