"""Correlation heatmaps (ASCII and SVG renderings of Fig. 2)."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import MetricError

#: Shade ramp for [-1, 1]: strong negative .. strong positive.
_RAMP = ("#", "=", "-", ".", " ", ".", "-", "=", "#")


def _shade(value: float) -> str:
    """Map rho in [-1, 1] to a shade character (sign-symmetric)."""
    index = int((value + 1.0) / 2.0 * (len(_RAMP) - 1) + 0.5)
    index = min(max(index, 0), len(_RAMP) - 1)
    return _RAMP[index]


def ascii_heatmap(names: Sequence[str],
                  matrix: Mapping[tuple[str, str], float],
                  cell_width: int = 6) -> str:
    """Render a correlation matrix as a shaded ASCII grid.

    Args:
        names: measure names, in display order.
        matrix: ``(a, b) -> rho`` with every ordered pair present.
        cell_width: characters per cell (>= 5 to fit ``+0.00``).

    Raises:
        MetricError: for missing pairs or a too-narrow cell width.
    """
    if cell_width < 5:
        raise MetricError("cell_width must be at least 5")
    label_width = max(len(n) for n in names) if names else 0
    lines: list[str] = []
    header = " " * (label_width + 1) + "".join(
        f"{chr(ord('A') + i):>{cell_width}}" for i in range(len(names)))
    lines.append(header)
    for row_index, row_name in enumerate(names):
        cells = []
        for col_name in names:
            key = (row_name, col_name)
            if key not in matrix:
                raise MetricError(f"missing correlation pair {key}")
            value = matrix[key]
            cells.append(f"{value:+.2f}{_shade(value)}"
                         .rjust(cell_width))
        lines.append(f"{row_name:<{label_width}} " + "".join(cells))
    legend = ", ".join(f"{chr(ord('A') + i)}={name}"
                       for i, name in enumerate(names))
    lines.append("")
    lines.append("columns: " + legend)
    return "\n".join(lines)


def _rho_color(value: float) -> str:
    """Blue (negative) -> white (zero) -> red (positive)."""
    clamped = min(max(value, -1.0), 1.0)
    if clamped >= 0:
        intensity = int(255 * (1 - clamped))
        return f"rgb(255,{intensity},{intensity})"
    intensity = int(255 * (1 + clamped))
    return f"rgb({intensity},{intensity},255)"


def svg_heatmap(names: Sequence[str],
                matrix: Mapping[tuple[str, str], float],
                cell: int = 34) -> str:
    """Render a correlation matrix as an SVG heatmap document."""
    count = len(names)
    margin = 150
    size = margin + count * cell + 10
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{size}" viewBox="0 0 {size} {size}">',
        f'<rect width="{size}" height="{size}" fill="white"/>',
    ]
    for row in range(count):
        y = margin + row * cell
        label = names[row]
        parts.append(f'<text x="{margin - 6}" y="{y + cell * 0.65:.0f}" '
                     f'text-anchor="end" font-family="sans-serif" '
                     f'font-size="10">{label}</text>')
        parts.append(
            f'<text x="{margin + row * cell + cell / 2:.0f}" '
            f'y="{margin - 8}" text-anchor="start" '
            f'font-family="sans-serif" font-size="10" '
            f'transform="rotate(-45 '
            f'{margin + row * cell + cell / 2:.0f} {margin - 8})">'
            f'{label}</text>')
        for col in range(count):
            x = margin + col * cell
            value = matrix[(names[row], names[col])]
            parts.append(
                f'<rect x="{x}" y="{y}" width="{cell}" height="{cell}" '
                f'fill="{_rho_color(value)}" stroke="#ccc" '
                f'stroke-width="0.5"/>')
            parts.append(
                f'<text x="{x + cell / 2:.0f}" '
                f'y="{y + cell * 0.62:.0f}" text-anchor="middle" '
                f'font-family="sans-serif" font-size="9">'
                f'{value:+.2f}</text>')
    parts.append("</svg>")
    return "\n".join(parts)
