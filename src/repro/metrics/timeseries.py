"""Quantized time-series vectors of cumulative schema progress.

Section 5.2 of the paper quantizes each project's cumulative-progress line
into a vector of 20 measurements (one per 5 % of normalized time) and uses
centroid distances to argue pattern cohesion. This module provides that
vector and the distance helpers the mining layer builds on.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import MetricError
from repro.history.heartbeat import ActivitySeries

#: The paper's grid: one sample per 5 % of time, 0 % .. 95 %.
DEFAULT_POINTS = 20


def heartbeat_vector(series: ActivitySeries,
                     points: int = DEFAULT_POINTS) -> tuple[float, ...]:
    """The cumulative-fraction curve sampled on an even time grid.

    Args:
        series: the monthly schema heartbeat.
        points: number of grid points (20 in the paper: 0 %, 5 %, ... 95 %).

    Returns:
        A monotone non-decreasing vector of fractions in [0, 1].
    """
    return series.sample(points)


def euclidean_distance(left: Sequence[float],
                       right: Sequence[float]) -> float:
    """Plain Euclidean distance between two equal-length vectors.

    Raises:
        MetricError: when the vectors differ in length.
    """
    if len(left) != len(right):
        raise MetricError(f"vector lengths differ: "
                          f"{len(left)} vs {len(right)}")
    return math.sqrt(sum((a - b) ** 2 for a, b in zip(left, right)))


def mean_vector(vectors: Iterable[Sequence[float]]) -> tuple[float, ...]:
    """Component-wise mean of a non-empty collection of vectors.

    Raises:
        MetricError: for an empty collection or ragged vector lengths.
    """
    items = [tuple(v) for v in vectors]
    if not items:
        raise MetricError("cannot average zero vectors")
    length = len(items[0])
    if any(len(v) != length for v in items):
        raise MetricError("all vectors must share one length")
    count = len(items)
    return tuple(sum(v[i] for v in items) / count for i in range(length))
