"""Per-table lives within a schema history (library extension).

The paper measures whole-schema timing; its companion studies (e.g.
"Gravitating to rigidity") work at the granularity of individual table
*lives*. This module derives that view from the same transitions: for
every table that ever existed, its birth month, death month (if any),
update activity and size trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diff.changes import ChangeKind
from repro.diff.engine import DiffOptions
from repro.history.repository import SchemaHistory
from repro.history.transitions import compute_transitions


@dataclass
class TableLife:
    """The life of one table inside a project.

    Attributes:
        name: the (normalized) table name.
        birth_month: project month the table first appears.
        death_month: project month the table disappears; None if alive
            at the end of the history.
        birth_size: attributes at creation.
        final_size: attributes at death or at the last version.
        update_events: attribute events on the table after birth,
            excluding the whole-table deletion itself.
        active_months: distinct months with changes after birth
            (again excluding the deletion month for dropped tables).
    """

    name: str
    birth_month: int
    death_month: int | None = None
    birth_size: int = 0
    final_size: int = 0
    update_events: int = 0
    _active: set = field(default_factory=set, repr=False)

    @property
    def active_months(self) -> int:
        """Distinct months with post-birth change."""
        return len(self._active)

    @property
    def is_alive(self) -> bool:
        """True when the table survives to the end of the history."""
        return self.death_month is None

    @property
    def duration_months(self) -> int | None:
        """Life length in months (None while alive: open-ended)."""
        if self.death_month is None:
            return None
        return self.death_month - self.birth_month


def table_lives(history: SchemaHistory,
                options: DiffOptions | None = None) -> list[TableLife]:
    """Compute the life of every table that ever existed in ``history``.

    A re-created table (dropped, later created again under the same
    name) yields two separate lives.
    """
    lives: list[TableLife] = []
    open_lives: dict[str, TableLife] = {}
    for transition in compute_transitions(history, options):
        month = transition.month
        born: dict[str, int] = {}
        dropped: set[str] = set()
        per_table_updates: dict[str, int] = {}
        for change in transition.diff:
            if change.kind is ChangeKind.BORN_WITH_TABLE:
                born[change.table] = born.get(change.table, 0) + 1
            elif change.kind is ChangeKind.DELETED_WITH_TABLE:
                dropped.add(change.table)
            else:
                per_table_updates[change.table] = \
                    per_table_updates.get(change.table, 0) + 1
        for name in dropped:
            life = open_lives.pop(name, None)
            if life is not None:
                life.death_month = month
                lives.append(life)
        for name, size in born.items():
            life = TableLife(name=name, birth_month=month,
                             birth_size=size, final_size=size)
            open_lives[name] = life
        for name, events in per_table_updates.items():
            life = open_lives.get(name)
            if life is None:
                continue  # rename-detected or out-of-model change
            life.update_events += events
            life._active.add(month)
        # Track final sizes from the materialized schema.
        for table in transition.version.schema:
            life = open_lives.get(table.name)
            if life is not None:
                life.final_size = len(table)
    lives.extend(open_lives.values())
    lives.sort(key=lambda l: (l.birth_month, l.name))
    return lives


def rigidity_share(lives: list[TableLife]) -> float:
    """Share of table lives with zero post-birth change — the
    table-level analogue of the paper's aversion-to-change trait."""
    if not lives:
        return 0.0
    rigid = sum(1 for l in lives if l.update_events == 0)
    return rigid / len(lives)
