"""Time-related metrics of schema evolution (paper §3.2).

Given a schema history's monthly heartbeat, this package computes the
landmarks and measures the study is built on:

* schema birth point and the volume of activity at birth,
* top-band (90 % of total activity) attainment point,
* the birth-to-top and top-to-end intervals, and vault detection,
* active growth months and their normalizations,
* the 20-point quantized cumulative-progress vector (§5.2),
* a :class:`ProjectProfile` bundling everything for one project.
"""

from repro.metrics.landmarks import TOP_BAND_FRACTION, Landmarks, compute_landmarks
from repro.metrics.activity import ActivityTotals, compute_activity_totals
from repro.metrics.timeseries import (
    euclidean_distance,
    heartbeat_vector,
    mean_vector,
)
from repro.metrics.profile import ProjectProfile
from repro.metrics.tables import TableLife, rigidity_share, table_lives

__all__ = [
    "ActivityTotals",
    "Landmarks",
    "ProjectProfile",
    "TOP_BAND_FRACTION",
    "TableLife",
    "compute_activity_totals",
    "compute_landmarks",
    "euclidean_distance",
    "heartbeat_vector",
    "mean_vector",
    "rigidity_share",
    "table_lives",
]
