"""Volume-of-activity measures of a schema history (paper §6.1, §6.3)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.diff.changes import ChangeKind
from repro.diff.stats import ChangeBreakdown
from repro.history.heartbeat import ActivitySeries


@dataclass(frozen=True, slots=True)
class ActivityTotals:
    """Change-volume aggregates of one project.

    Attributes:
        total_activity: all affected attributes over the whole life,
            including the attributes born at schema birth.
        birth_activity: affected attributes in the birth month.
        post_birth_activity: the paper's *Total Schema Activity* — the
            amount of schema change after schema birth (§6.1).
        expansion: affected attributes on the expansion side.
        maintenance: affected attributes on the maintenance side.
        breakdown: the full per-kind split.
        schema_size_at_birth: attributes born with the first version.
    """

    total_activity: int
    birth_activity: int
    post_birth_activity: int
    expansion: int
    maintenance: int
    breakdown: ChangeBreakdown
    schema_size_at_birth: int

    @property
    def expansion_fraction(self) -> float:
        """Expansion share of total activity (0.0 when no activity)."""
        if self.total_activity == 0:
            return 0.0
        return self.expansion / self.total_activity


def compute_activity_totals(series: ActivitySeries,
                            birth_month: int) -> ActivityTotals:
    """Aggregate a schema heartbeat into :class:`ActivityTotals`.

    Args:
        series: the monthly schema heartbeat, with breakdowns.
        birth_month: the schema-birth month (see
            :func:`repro.metrics.landmarks.compute_landmarks`).
    """
    total = series.total
    birth = series.monthly[birth_month]
    full_breakdown = series.total_breakdown
    born_at_birth = 0
    if series.breakdowns is not None:
        born_at_birth = series.breakdowns[birth_month].count(
            ChangeKind.BORN_WITH_TABLE)
    return ActivityTotals(
        total_activity=total,
        birth_activity=birth,
        post_birth_activity=total - birth,
        expansion=full_breakdown.expansion,
        maintenance=full_breakdown.maintenance,
        breakdown=full_breakdown,
        schema_size_at_birth=born_at_birth,
    )
