"""Landmarks of a schema life: birth, top-band, intervals, vaults.

All percentage normalizations follow the paper's convention of measuring
time as a fraction of the Project Update Period. A point at month ``m`` of
a project with ``P`` months normalizes to ``m / (P - 1)`` (the last month
is 100 % of time); single-month projects normalize every point to 0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MetricError
from repro.history.heartbeat import ActivitySeries

#: The paper's Top Band threshold: 90 % of total schema evolution activity.
TOP_BAND_FRACTION = 0.9

#: A birth-to-top transition shorter than this fraction of the project's
#: life is a *vault* (paper Fig. 1).
VAULT_FRACTION = 0.10


@dataclass(frozen=True, slots=True)
class Landmarks:
    """The time-related landmarks of one project's schema life.

    Month indices are 0-based within the project update period;
    ``*_pct`` values are fractions of project lifetime in [0, 1].

    Attributes:
        pup_months: project update period, in months.
        birth_month: month of schema birth (first DDL appearance).
        birth_volume_fraction: share of total activity at the birth month
            (1.0 for projects with all activity at birth, including
            flatliners by convention).
        top_band_month: first month at or after which cumulative activity
            reaches 90 % of the total.
        birth_pct / top_band_pct: the same points in normalized time.
        interval_birth_to_top_months / _pct: the growth interval.
        interval_top_to_end_pct: the inactivity tail after the top band.
        has_vault: True when the growth interval is under 10 % of life.
        active_growth_months: months with activity strictly between birth
            and top-band attainment (the paper's ActiveGrowthMonths).
        active_pct_growth: ActiveGrowthMonths over the interior length of
            the growth period (0 when the growth period has no interior).
        active_pct_pup: ActiveGrowthMonths over the PUP.
    """

    pup_months: int
    birth_month: int
    birth_volume_fraction: float
    top_band_month: int
    birth_pct: float
    top_band_pct: float
    interval_birth_to_top_months: int
    interval_birth_to_top_pct: float
    interval_top_to_end_pct: float
    has_vault: bool
    active_growth_months: int
    active_pct_growth: float
    active_pct_pup: float

    @property
    def born_at_v0(self) -> bool:
        """True when the schema is born at the originating version."""
        return self.birth_month == 0

    @property
    def top_at_v0(self) -> bool:
        """True when the top band is attained at the originating version."""
        return self.top_band_month == 0


def _pct(month: int, pup_months: int) -> float:
    """Normalize a month index to a fraction of project life."""
    if pup_months <= 1:
        return 0.0
    return month / (pup_months - 1)


def compute_landmarks(series: ActivitySeries,
                      birth_month: int | None = None) -> Landmarks:
    """Compute all landmarks from a monthly schema heartbeat.

    Args:
        series: the project's schema activity series over its full PUP.
        birth_month: month of the first DDL commit. When None, the first
            active month of the series is used; passing it explicitly is
            needed for degenerate histories whose DDL never defines an
            attribute (total activity zero).

    Raises:
        MetricError: when birth cannot be determined (zero activity and no
            explicit ``birth_month``), or when ``birth_month`` lies
            outside the series.
    """
    pup = series.months
    if birth_month is None:
        birth_month = series.first_active_month()
        if birth_month is None:
            raise MetricError(
                "cannot determine schema birth: series has no activity "
                "and no explicit birth_month was given")
    if not 0 <= birth_month < pup:
        raise MetricError(f"birth_month {birth_month} outside the "
                          f"{pup}-month series")

    total = series.total
    if total == 0:
        # Degenerate: DDL exists but never defines attributes. All
        # activity (vacuously) happens at birth.
        birth_volume = 1.0
        top_month = birth_month
    else:
        birth_volume = series.monthly[birth_month] / total
        top_month = series.month_reaching_fraction(TOP_BAND_FRACTION)
        assert top_month is not None
        # Activity before the recorded DDL birth is impossible by
        # construction, but guard against inconsistent explicit births.
        if top_month < birth_month:
            raise MetricError(
                f"top band at month {top_month} precedes the declared "
                f"schema birth at month {birth_month}")

    interval_months = top_month - birth_month
    interval_pct = _pct(interval_months, pup) if pup > 1 else 0.0
    last_month = pup - 1
    tail_pct = _pct(last_month - top_month, pup) if pup > 1 else 0.0

    growth_interior = max(interval_months - 1, 0)
    active = sum(1 for m in range(birth_month + 1, top_month)
                 if series.monthly[m] > 0)
    active_pct_growth = active / growth_interior if growth_interior else 0.0

    return Landmarks(
        pup_months=pup,
        birth_month=birth_month,
        birth_volume_fraction=birth_volume,
        top_band_month=top_month,
        birth_pct=_pct(birth_month, pup),
        top_band_pct=_pct(top_month, pup),
        interval_birth_to_top_months=interval_months,
        interval_birth_to_top_pct=interval_pct,
        interval_top_to_end_pct=tail_pct,
        has_vault=interval_pct < VAULT_FRACTION,
        active_growth_months=active,
        active_pct_growth=active_pct_growth,
        active_pct_pup=active / pup,
    )
