"""Project profiles: one record per studied project.

A :class:`ProjectProfile` is "one row" of the paper's study — everything
the labeling, classification and analysis layers need about a project,
computed once from its history.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diff.engine import DiffOptions
from repro.history.heartbeat import ActivitySeries, schema_heartbeat
from repro.history.repository import SchemaHistory
from repro.metrics.activity import ActivityTotals, compute_activity_totals
from repro.metrics.landmarks import Landmarks, compute_landmarks
from repro.metrics.timeseries import DEFAULT_POINTS, heartbeat_vector


@dataclass(frozen=True)
class ProjectProfile:
    """All measured facts about one project's schema evolution.

    Attributes:
        name: project identifier.
        landmarks: time-related landmarks (§3.2).
        totals: change-volume aggregates (§6.1, §6.3).
        vector: the 20-point cumulative-progress vector (§5.2).
        heartbeat: the underlying monthly series (kept for charts).
        source: optional source-code series for joint charts.
        history: the originating history (kept so table-level analyses
            can re-derive per-table views; None for deserialized
            profiles). Excluded from equality: two profiles measured
            from identical histories — in different processes, or one
            revived from the result cache — compare equal.
    """

    name: str
    landmarks: Landmarks
    totals: ActivityTotals
    vector: tuple[float, ...]
    heartbeat: ActivitySeries
    source: ActivitySeries | None = None
    history: SchemaHistory | None = field(default=None, compare=False)

    # Convenience passthroughs used across the analysis layer -----------

    @property
    def pup_months(self) -> int:
        """Project update period in months."""
        return self.landmarks.pup_months

    @property
    def birth_month(self) -> int:
        """Month of schema birth."""
        return self.landmarks.birth_month

    @property
    def total_activity(self) -> int:
        """Total affected attributes over the project's whole life."""
        return self.totals.total_activity

    @classmethod
    def from_history(cls, history: SchemaHistory,
                     source: ActivitySeries | None = None,
                     diff_options: DiffOptions | None = None,
                     vector_points: int = DEFAULT_POINTS
                     ) -> "ProjectProfile":
        """Measure a schema history into a profile.

        Args:
            history: the project's DDL history.
            source: optional source-code activity series (must span the
                same PUP as the history when provided).
            diff_options: options for the logical diff engine.
            vector_points: grid size of the cumulative-progress vector.
        """
        series = schema_heartbeat(history, diff_options)
        birth_month = history.commit_month(history.commits[0])
        landmarks = compute_landmarks(series, birth_month=birth_month)
        totals = compute_activity_totals(series, landmarks.birth_month)
        return cls(
            name=history.project_name,
            landmarks=landmarks,
            totals=totals,
            vector=heartbeat_vector(series, vector_points),
            heartbeat=series,
            source=source,
            history=history,
        )
