"""Per-version transitions of a schema history."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.diff.changes import SchemaDiff
from repro.diff.engine import DiffOptions, diff_schemas
from repro.history.commit import SchemaVersion
from repro.history.repository import SchemaHistory
from repro.schema.model import EMPTY_SCHEMA, Schema


@dataclass(frozen=True, slots=True)
class Transition:
    """The logical change between two consecutive schema versions.

    Attributes:
        month: project month index of the *target* version — when the
            change lands in the heartbeat.
        previous: the source version (None for the birth transition from
            the empty schema).
        version: the target version.
        diff: affected attributes of the transition.
    """

    month: int
    previous: SchemaVersion | None
    version: SchemaVersion
    diff: SchemaDiff

    @property
    def is_birth(self) -> bool:
        """True for the transition that creates the schema."""
        return self.previous is None


def compute_transitions(history: SchemaHistory,
                        options: DiffOptions | None = None
                        ) -> list[Transition]:
    """Diff every consecutive version pair of ``history``.

    The first transition compares the empty schema against the first
    version — this is **schema birth**, whose affected attributes are the
    birth volume of the project.
    """
    transitions: list[Transition] = []
    previous_schema: Schema = EMPTY_SCHEMA
    previous_version: SchemaVersion | None = None
    for version in history.versions():
        diff = diff_schemas(previous_schema, version.schema, options)
        transitions.append(Transition(
            month=history.commit_month(version.commit),
            previous=previous_version,
            version=version,
            diff=diff,
        ))
        previous_schema = version.schema
        previous_version = version
    return transitions


def iter_month_kind_counts(history: SchemaHistory,
                           options: DiffOptions | None = None
                           ) -> Iterator[tuple[int, tuple[int, ...]]]:
    """Yield ``(month, flat_kind_counts)`` per consecutive-version diff.

    The columnar feed of :func:`repro.history.heartbeat.schema_heartbeat`:
    the same diffs :func:`compute_transitions` computes, but without
    materializing :class:`Transition` records or per-transition
    breakdown objects. Transitions that affect no attribute are elided —
    they contribute zero to every monthly count.
    """
    previous_schema: Schema = EMPTY_SCHEMA
    for version in history.versions():
        diff = diff_schemas(previous_schema, version.schema, options)
        if diff.changes:
            yield (history.commit_month(version.commit),
                   diff.kind_counts_flat())
        previous_schema = version.schema
