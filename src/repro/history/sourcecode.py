"""Source-code heartbeat (the green line of the paper's charts).

The paper's dataset pairs every schema heartbeat with the project's
source-code heartbeat (LoC changed per month). We have no GitHub access
offline, so the corpus generator synthesizes a plausible source series:
development activity spread over most of the project's life, with random
monthly intensity and occasional quiet months. Nothing in the study's
*results* depends on this series — it exists for joint visualization.
"""

from __future__ import annotations

import random

from repro.history.heartbeat import ActivitySeries


def synthetic_source_series(months: int, rng: random.Random,
                            base_loc: int = 400,
                            quiet_probability: float = 0.15
                            ) -> ActivitySeries:
    """Generate a plausible monthly source-code activity series.

    Args:
        months: project update period in months (>= 1).
        rng: seeded random generator — determinism is the caller's job.
        base_loc: typical LoC changed in an active month.
        quiet_probability: chance that a given month has no commits.

    Returns:
        An :class:`~repro.history.heartbeat.ActivitySeries` of LoC/month.
        The first and last months are always active (a project's lifespan
        is delimited by commits on the source side).
    """
    monthly: list[int] = []
    for index in range(months):
        forced_active = index in (0, months - 1)
        if not forced_active and rng.random() < quiet_probability:
            monthly.append(0)
            continue
        # Log-uniform-ish spread: most months small-to-medium, few bursts.
        scale = rng.choice((0.25, 0.5, 1.0, 1.0, 1.5, 3.0))
        amount = max(1, int(rng.gauss(base_loc * scale, base_loc * 0.3)))
        monthly.append(amount)
    return ActivitySeries(monthly=tuple(monthly))
