"""Monthly heartbeats and cumulative fractional activity.

The paper's central measurement device (its Fig. 1): per project month,
the number of affected attributes; cumulatively, the *fractional* progress
of schema evolution over normalized project time.

The cumulative views are served by the columnar kernel layer
(:mod:`repro.history.kernel`): the prefix arrays of a series are
computed exactly once, memoized on the frozen instance, and every
``fraction_at`` / ``sample`` / landmark helper becomes an O(1) or O(M)
lookup against them. Memoization is safe on the frozen dataclass
because the cached state is a pure function of the ``monthly`` field,
lives only in ``__dict__`` (never part of equality or the pickle — see
``__getstate__``), and is installed via ``object.__setattr__``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.diff.engine import DiffOptions
from repro.diff.stats import EMPTY_BREAKDOWN, ChangeBreakdown, \
    combine_breakdowns
from repro.errors import MetricError
from repro.history.kernel import (
    PrefixView,
    accumulate_month_counts,
    activity_prefix,
    count_reuse,
)
from repro.history.repository import SchemaHistory
from repro.history.transitions import iter_month_kind_counts


@dataclass(frozen=True)
class ActivitySeries:
    """A per-month activity series over a project's update period.

    Attributes:
        monthly: activity amount per month, index 0 .. PUP-1. The unit is
            whatever the producer measures (affected attributes for the
            schema heartbeat, LoC for the source heartbeat).
        breakdowns: optional per-month change breakdowns (schema side).
    """

    monthly: tuple[int, ...]
    breakdowns: tuple[ChangeBreakdown, ...] | None = None

    def __post_init__(self):
        if not self.monthly:
            raise MetricError("an activity series needs at least one month")
        if any(v < 0 for v in self.monthly):
            raise MetricError("activity amounts cannot be negative")
        if self.breakdowns is not None \
                and len(self.breakdowns) != len(self.monthly):
            raise MetricError("breakdowns must align with monthly values")

    # ------------------------------------------------------------------
    # kernel memo plumbing

    def _prefix(self) -> PrefixView:
        """The series' prefix state, built on first use and memoized."""
        state = self.__dict__.get("_prefix_state")
        if state is None:
            state = activity_prefix(self.monthly)
            object.__setattr__(self, "_prefix_state", state)
        else:
            count_reuse()
        return state

    def __getstate__(self):
        # Ship only the declared fields: the memoized prefix state and
        # total breakdown are cheap derivations, and stripping them
        # keeps cache payloads and worker pickles at their pre-kernel
        # size (and byte layout).
        return {"monthly": self.monthly, "breakdowns": self.breakdowns}

    # ------------------------------------------------------------------
    # basic aggregates

    @property
    def months(self) -> int:
        """Length of the series in months (the PUP)."""
        return len(self.monthly)

    @property
    def total(self) -> int:
        """Total activity over the whole series."""
        return self._prefix()[1]

    @property
    def active_month_indices(self) -> tuple[int, ...]:
        """Indices of months with non-zero activity."""
        return tuple(i for i, v in enumerate(self.monthly) if v)

    @property
    def total_breakdown(self) -> ChangeBreakdown:
        """Sum of all per-month breakdowns (empty if none recorded)."""
        cached = self.__dict__.get("_total_breakdown")
        if cached is None:
            if self.breakdowns is None:
                cached = ChangeBreakdown.empty()
            else:
                cached = combine_breakdowns(self.breakdowns)
            object.__setattr__(self, "_total_breakdown", cached)
        return cached

    # ------------------------------------------------------------------
    # cumulative views

    def cumulative(self) -> tuple[int, ...]:
        """Cumulative activity per month."""
        return self._prefix()[0]

    def cumulative_fraction(self) -> tuple[float, ...]:
        """Cumulative activity as a fraction of the total per month.

        A series with zero total activity yields all zeros.
        """
        return self._prefix()[2]

    def fraction_at(self, time_pct: float) -> float:
        """Cumulative fraction at a normalized time point in [0, 1].

        Time percentage p maps to month ``min(floor(p * months),
        months - 1)`` — i.e. the curve is sampled as a step function of
        month values, the same convention the paper's charts use.

        Raises:
            MetricError: when ``time_pct`` is outside [0, 1].
        """
        if not 0.0 <= time_pct <= 1.0:
            raise MetricError(f"time_pct must be in [0, 1], "
                              f"got {time_pct}")
        months = len(self.monthly)
        index = min(int(time_pct * months), months - 1)
        return self._prefix()[2][index]

    def sample(self, points: int = 20) -> tuple[float, ...]:
        """Sample the cumulative-fraction curve at ``points`` evenly spaced
        normalized time points starting at 0 (the paper's 5 %-grid vector
        uses ``points=20``: 0 %, 5 %, ..., 95 %).

        Raises:
            MetricError: when ``points`` < 1.
        """
        if points < 1:
            raise MetricError("sample needs at least one point")
        fractions = self._prefix()[2]
        months = len(self.monthly)
        last = months - 1
        return tuple(
            fractions[min(int(i / points * months), last)]
            for i in range(points))

    # ------------------------------------------------------------------
    # landmark helpers (consumed by repro.metrics)

    def first_active_month(self) -> int | None:
        """Index of the first month with activity, or None when frozen."""
        for index, value in enumerate(self.monthly):
            if value:
                return index
        return None

    def month_reaching_fraction(self, fraction: float) -> int | None:
        """First month whose cumulative fraction reaches ``fraction``.

        Returns None when total activity is zero.
        """
        cumulative, total, fractions = self._prefix()
        if total == 0:
            return None
        threshold = fraction - 1e-12
        for index, value in enumerate(fractions):
            if value >= threshold:
                return index
        return len(self.monthly) - 1  # pragma: no cover - defensive


def schema_heartbeat(history: SchemaHistory,
                     options: DiffOptions | None = None) -> ActivitySeries:
    """Compute the monthly schema heartbeat of ``history``.

    Every transition's affected attributes are charged to the month of the
    target commit; all transitions within one month are summed — straight
    into flat per-kind count rows, with no intermediate per-transition
    :class:`ChangeBreakdown` lists. Months no change touched share the
    :data:`~repro.diff.stats.EMPTY_BREAKDOWN` singleton.
    """
    monthly, rows = accumulate_month_counts(
        history.pup_months, iter_month_kind_counts(history, options))
    breakdowns = tuple(
        EMPTY_BREAKDOWN if row is None else ChangeBreakdown(flat=tuple(row))
        for row in rows)
    return ActivitySeries(monthly=tuple(monthly), breakdowns=breakdowns)
