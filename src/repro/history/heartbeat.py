"""Monthly heartbeats and cumulative fractional activity.

The paper's central measurement device (its Fig. 1): per project month,
the number of affected attributes; cumulatively, the *fractional* progress
of schema evolution over normalized project time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.diff.engine import DiffOptions
from repro.diff.stats import ChangeBreakdown, breakdown, combine_breakdowns
from repro.errors import MetricError
from repro.history.repository import SchemaHistory
from repro.history.transitions import compute_transitions


@dataclass(frozen=True)
class ActivitySeries:
    """A per-month activity series over a project's update period.

    Attributes:
        monthly: activity amount per month, index 0 .. PUP-1. The unit is
            whatever the producer measures (affected attributes for the
            schema heartbeat, LoC for the source heartbeat).
        breakdowns: optional per-month change breakdowns (schema side).
    """

    monthly: tuple[int, ...]
    breakdowns: tuple[ChangeBreakdown, ...] | None = None

    def __post_init__(self):
        if not self.monthly:
            raise MetricError("an activity series needs at least one month")
        if any(v < 0 for v in self.monthly):
            raise MetricError("activity amounts cannot be negative")
        if self.breakdowns is not None \
                and len(self.breakdowns) != len(self.monthly):
            raise MetricError("breakdowns must align with monthly values")

    # ------------------------------------------------------------------
    # basic aggregates

    @property
    def months(self) -> int:
        """Length of the series in months (the PUP)."""
        return len(self.monthly)

    @property
    def total(self) -> int:
        """Total activity over the whole series."""
        return sum(self.monthly)

    @property
    def active_month_indices(self) -> tuple[int, ...]:
        """Indices of months with non-zero activity."""
        return tuple(i for i, v in enumerate(self.monthly) if v)

    @property
    def total_breakdown(self) -> ChangeBreakdown:
        """Sum of all per-month breakdowns (empty if none recorded)."""
        if self.breakdowns is None:
            return ChangeBreakdown.empty()
        return combine_breakdowns(self.breakdowns)

    # ------------------------------------------------------------------
    # cumulative views

    def cumulative(self) -> tuple[int, ...]:
        """Cumulative activity per month."""
        out: list[int] = []
        running = 0
        for value in self.monthly:
            running += value
            out.append(running)
        return tuple(out)

    def cumulative_fraction(self) -> tuple[float, ...]:
        """Cumulative activity as a fraction of the total per month.

        A series with zero total activity yields all zeros.
        """
        total = self.total
        if total == 0:
            return tuple(0.0 for _ in self.monthly)
        return tuple(c / total for c in self.cumulative())

    def fraction_at(self, time_pct: float) -> float:
        """Cumulative fraction at a normalized time point in [0, 1].

        Time percentage p maps to month ``floor(p * (months - 1))`` —
        i.e. the curve is sampled as a step function of month values, the
        same convention the paper's charts use.

        Raises:
            MetricError: when ``time_pct`` is outside [0, 1].
        """
        if not 0.0 <= time_pct <= 1.0:
            raise MetricError(f"time_pct must be in [0, 1], "
                              f"got {time_pct}")
        index = min(int(time_pct * self.months), self.months - 1)
        return self.cumulative_fraction()[index]

    def sample(self, points: int = 20) -> tuple[float, ...]:
        """Sample the cumulative-fraction curve at ``points`` evenly spaced
        normalized time points starting at 0 (the paper's 5 %-grid vector
        uses ``points=20``: 0 %, 5 %, ..., 95 %).

        Raises:
            MetricError: when ``points`` < 1.
        """
        if points < 1:
            raise MetricError("sample needs at least one point")
        return tuple(self.fraction_at(i / points) for i in range(points))

    # ------------------------------------------------------------------
    # landmark helpers (consumed by repro.metrics)

    def first_active_month(self) -> int | None:
        """Index of the first month with activity, or None when frozen."""
        for index, value in enumerate(self.monthly):
            if value:
                return index
        return None

    def month_reaching_fraction(self, fraction: float) -> int | None:
        """First month whose cumulative fraction reaches ``fraction``.

        Returns None when total activity is zero.
        """
        if self.total == 0:
            return None
        for index, value in enumerate(self.cumulative_fraction()):
            if value >= fraction - 1e-12:
                return index
        return len(self.monthly) - 1  # pragma: no cover - defensive


def schema_heartbeat(history: SchemaHistory,
                     options: DiffOptions | None = None) -> ActivitySeries:
    """Compute the monthly schema heartbeat of ``history``.

    Every transition's affected attributes are charged to the month of the
    target commit; all transitions within one month are summed.
    """
    months = history.pup_months
    monthly = [0] * months
    per_month: list[list[ChangeBreakdown]] = [[] for _ in range(months)]
    for transition in compute_transitions(history, options):
        monthly[transition.month] += transition.diff.total_affected
        per_month[transition.month].append(breakdown(transition.diff))
    breakdowns = tuple(combine_breakdowns(items) for items in per_month)
    return ActivitySeries(monthly=tuple(monthly), breakdowns=breakdowns)
