"""Commit and schema-version records."""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

from repro.schema.model import Schema


@dataclass(frozen=True, slots=True)
class Commit:
    """One commit touching the project's DDL file.

    The history model follows the paper's dataset: each commit carries the
    *entire* DDL file content as of that commit (full snapshots, the way
    git stores and Hecate extracts them) — not incremental patches.

    Attributes:
        sha: commit identifier (any unique string).
        timestamp: commit time.
        ddl_text: full DDL file content at this commit.
        message: commit message, if known.
    """

    sha: str
    timestamp: datetime
    ddl_text: str
    message: str = ""


@dataclass(frozen=True, slots=True)
class SchemaVersion:
    """A commit together with its parsed logical schema.

    Attributes:
        commit: the originating commit.
        schema: the logical schema built from the commit's DDL text.
        parse_issues: count of statements the robust parser skipped plus
            lenient-builder issues — a data-quality signal.
    """

    commit: Commit
    schema: Schema
    parse_issues: int = 0

    @property
    def timestamp(self) -> datetime:
        """Shortcut to the commit timestamp."""
        return self.commit.timestamp
