"""Corpus-selection protocol (paper §3.1).

The study filters its raw corpus before analysis: zero-evolution
repositories are omitted, and only projects with a lifespan above 12
months are studied. This module implements that protocol for arbitrary
history collections, reporting *why* each project was excluded — the
step that turned the paper's 195 raw histories into the studied 151.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.history.heartbeat import schema_heartbeat
from repro.history.repository import SchemaHistory

#: The paper's lifespan threshold: strictly more than 12 months.
MIN_LIFESPAN_MONTHS = 12


@dataclass(frozen=True)
class ExclusionRecord:
    """One excluded project and the reason.

    Attributes:
        name: project name.
        reason: machine-readable exclusion reason, one of
            ``"short-lifespan"``, ``"zero-evolution"``,
            ``"noise-name"``.
    """

    name: str
    reason: str


@dataclass(frozen=True)
class FilterResult:
    """Outcome of the corpus-selection protocol.

    Attributes:
        kept: histories passing every criterion, in input order.
        excluded: exclusion records, in input order.
    """

    kept: tuple[SchemaHistory, ...]
    excluded: tuple[ExclusionRecord, ...]

    @property
    def kept_count(self) -> int:
        """Number of surviving projects."""
        return len(self.kept)

    def excluded_by_reason(self) -> dict[str, int]:
        """Exclusion counts per reason."""
        counts: dict[str, int] = {}
        for record in self.excluded:
            counts[record.reason] = counts.get(record.reason, 0) + 1
        return counts


#: Name fragments the paper's selection treats as noise (§3.1:
#: "projects with the terms 'example, demo, test, migrat' in their path").
NOISE_NAME_FRAGMENTS = ("example", "demo", "test", "migrat")


def is_noise_name(name: str) -> bool:
    """True when a project name matches the paper's noise filter."""
    lowered = name.lower()
    return any(fragment in lowered for fragment in NOISE_NAME_FRAGMENTS)


def filter_study_corpus(histories: Iterable[SchemaHistory],
                        min_lifespan_months: int = MIN_LIFESPAN_MONTHS,
                        drop_zero_evolution: bool = True,
                        drop_noise_names: bool = True) -> FilterResult:
    """Apply the paper's corpus-selection protocol.

    Args:
        histories: candidate schema histories.
        min_lifespan_months: keep projects with a PUP strictly above
            this many months (the paper uses 12).
        drop_zero_evolution: drop projects whose heartbeat carries no
            activity at all (the paper's 132 zero-evolution repos).
        drop_noise_names: drop example/demo/test/migration projects.

    Returns:
        A :class:`FilterResult` with the kept histories and the
        per-project exclusion reasons.
    """
    kept: list[SchemaHistory] = []
    excluded: list[ExclusionRecord] = []
    for history in histories:
        if drop_noise_names and is_noise_name(history.project_name):
            excluded.append(ExclusionRecord(history.project_name,
                                            "noise-name"))
            continue
        if history.pup_months <= min_lifespan_months:
            excluded.append(ExclusionRecord(history.project_name,
                                            "short-lifespan"))
            continue
        if drop_zero_evolution \
                and schema_heartbeat(history).total == 0:
            excluded.append(ExclusionRecord(history.project_name,
                                            "zero-evolution"))
            continue
        kept.append(history)
    return FilterResult(kept=tuple(kept), excluded=tuple(excluded))
