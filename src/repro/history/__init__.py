"""Schema-history substrate: commits, repositories and heartbeats.

A :class:`SchemaHistory` is the unit of study of the paper: the ordered
sequence of versions of a project's DDL file, together with the project's
overall lifespan. From it the package derives:

* per-transition logical diffs (:mod:`repro.history.transitions`),
* the **monthly schema heartbeat** — affected attributes per month and the
  cumulative fractional activity curve (:mod:`repro.history.heartbeat`),
* a joint source-code heartbeat for Fig-3-style charts
  (:mod:`repro.history.sourcecode`).
"""

from repro.history.commit import Commit, SchemaVersion
from repro.history.repository import (
    SchemaHistory,
    incremental_parse_default,
    load_history_from_directory,
    load_history_from_jsonl,
    save_history_to_jsonl,
    set_incremental_parse_default,
)
from repro.history.transitions import Transition, compute_transitions
from repro.history.heartbeat import ActivitySeries, schema_heartbeat
from repro.history.filters import FilterResult, filter_study_corpus
from repro.history.sizes import SizeSeries, size_series
from repro.history.sourcecode import synthetic_source_series

__all__ = [
    "ActivitySeries",
    "FilterResult",
    "filter_study_corpus",
    "SizeSeries",
    "size_series",
    "Commit",
    "SchemaHistory",
    "SchemaVersion",
    "Transition",
    "compute_transitions",
    "incremental_parse_default",
    "load_history_from_directory",
    "load_history_from_jsonl",
    "save_history_to_jsonl",
    "schema_heartbeat",
    "set_incremental_parse_default",
    "synthetic_source_series",
]
