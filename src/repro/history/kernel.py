"""Columnar timeline kernels for the heartbeat/metrics stack.

The paper's measurement device — the monthly heartbeat and its
cumulative-fraction curve — is consumed many times per project: the
landmark finder, the activity totals, the 20-point progress vector and
the chart renderers all walk the same cumulative arrays. This module
computes those arrays **once** per series, in a single fused pass over
the flat monthly counts, and exposes process-wide counters so the
execution engine can report kernel activity next to its cache and
parse-memo statistics (mirroring :mod:`repro.sqlddl.memo`).

The naive per-call implementations the kernels replaced are retained
below as ``naive_*`` functions. They are the *oracles*: the hypothesis
suite in ``tests/history/test_kernel_oracle.py`` asserts the kernels
are exactly equal to them on arbitrary inputs, which is the argument
that the golden-pinned study outputs cannot drift.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.diff.changes import KIND_ORDER, N_KINDS

__all__ = [
    "PrefixView",
    "accumulate_month_counts",
    "activity_prefix",
    "count_reuse",
    "kernel_counters",
    "naive_accumulate_month_counts",
    "naive_combine_flat",
    "naive_cumulative",
    "naive_cumulative_fraction",
    "reset_kernel_counters",
]

#: Process-global kernel counters: prefix tables built (one per
#: distinct ActivitySeries that was ever inspected) and memo-served
#: reuse hits (lookups answered from an already-built table — each one
#: a full cumulative-array recomputation before this layer existed).
_SERIES_BUILT = 0
_REUSE_HITS = 0


def kernel_counters() -> tuple[int, int]:
    """Process-wide (series_built, reuse_hits) of the prefix kernels."""
    return _SERIES_BUILT, _REUSE_HITS


def reset_kernel_counters() -> None:
    """Zero the process-wide kernel counters (tests, worker deltas)."""
    global _SERIES_BUILT, _REUSE_HITS
    _SERIES_BUILT = 0
    _REUSE_HITS = 0


def count_reuse() -> None:
    """Record one memo-served prefix lookup."""
    global _REUSE_HITS
    _REUSE_HITS += 1


#: The fused prefix state of one activity series:
#: ``(cumulative, total, fractions)``.
PrefixView = tuple[tuple[int, ...], int, tuple[float, ...]]


def activity_prefix(monthly: Sequence[int]) -> PrefixView:
    """Cumulative array, total and cumulative-fraction vector, fused.

    One pass over ``monthly``; the total falls out of the prefix sum,
    and the fraction vector divides it back in (all zeros for a series
    with no activity — the convention the golden outputs pin).
    """
    global _SERIES_BUILT
    _SERIES_BUILT += 1
    cumulative: list[int] = []
    running = 0
    for value in monthly:
        running += value
        cumulative.append(running)
    if running == 0:
        fractions = (0.0,) * len(cumulative)
    else:
        fractions = tuple(c / running for c in cumulative)
    return tuple(cumulative), running, fractions


def accumulate_month_counts(
    months: int,
    events: Iterable[tuple[int, tuple[int, ...]]],
) -> tuple[list[int], list[list[int] | None]]:
    """Accumulate per-transition flat kind counts into monthly rows.

    Args:
        months: length of the project update period.
        events: ``(month, flat_counts)`` per transition, flat counts in
            :data:`~repro.diff.changes.KIND_ORDER` order.

    Returns:
        ``(monthly, rows)`` — total affected attributes per month, and
        one flat per-kind count row per month (``None`` for months no
        event touched, so callers can share an empty singleton).
    """
    monthly = [0] * months
    rows: list[list[int] | None] = [None] * months
    for month, flat in events:
        monthly[month] += sum(flat)
        row = rows[month]
        if row is None:
            rows[month] = list(flat)
        else:
            for index in range(N_KINDS):
                row[index] += flat[index]
    return monthly, rows


# ----------------------------------------------------------------------
# naive reference implementations (oracles for the kernel tests)


def naive_cumulative(monthly: Sequence[int]) -> tuple[int, ...]:
    """Reference cumulative array (the pre-kernel per-call loop)."""
    out: list[int] = []
    running = 0
    for value in monthly:
        running += value
        out.append(running)
    return tuple(out)


def naive_cumulative_fraction(monthly: Sequence[int]) -> tuple[float, ...]:
    """Reference cumulative-fraction vector (recomputes everything)."""
    total = sum(monthly)
    if total == 0:
        return tuple(0.0 for _ in monthly)
    return tuple(c / total for c in naive_cumulative(monthly))


def naive_combine_flat(flats: Iterable[tuple[int, ...]]) -> tuple[int, ...]:
    """Reference breakdown sum via the old enum-keyed dict churn."""
    totals = {kind: 0 for kind in KIND_ORDER}
    for flat in flats:
        for kind, count in zip(KIND_ORDER, flat):
            totals[kind] += count
    return tuple(totals[kind] for kind in KIND_ORDER)


def naive_accumulate_month_counts(
    months: int,
    events: Iterable[tuple[int, tuple[int, ...]]],
) -> tuple[list[int], list[tuple[int, ...]]]:
    """Reference per-month accumulation via intermediate lists.

    Mirrors the pre-kernel ``schema_heartbeat`` shape: collect every
    transition's counts per month, then dict-combine each month.
    """
    monthly = [0] * months
    per_month: list[list[tuple[int, ...]]] = [[] for _ in range(months)]
    for month, flat in events:
        monthly[month] += sum(flat)
        per_month[month].append(flat)
    combined = [naive_combine_flat(items) for items in per_month]
    return monthly, combined
