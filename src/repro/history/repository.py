"""Schema histories: loading, storage and version materialization."""

from __future__ import annotations

import json
import re
from datetime import datetime
from pathlib import Path

from repro.errors import HistoryError
from repro.history.commit import Commit, SchemaVersion
from repro.schema.builder import SchemaBuilder
from repro.sqlddl.dialect import Dialect
from repro.sqlddl.parser import parse_script

_FILENAME_TIMESTAMP = re.compile(
    r"(\d{4})-(\d{2})-(\d{2})(?:[T_](\d{2}))?(?:[-:]?(\d{2}))?(?:[-:]?(\d{2}))?"
)


def month_index(start: datetime, when: datetime) -> int:
    """0-based calendar-month index of ``when`` relative to ``start``.

    The paper's granule of time is the month: all activity inside one
    calendar month counts together.
    """
    return (when.year - start.year) * 12 + (when.month - start.month)


class SchemaHistory:
    """The ordered DDL history of one project.

    Args:
        project_name: human-readable project identifier.
        commits: the DDL commits; sorted by timestamp on construction.
        project_start: start of the *project* (source-code side) — may
            precede the first DDL commit (late schema birth). Defaults to
            the first commit's timestamp.
        project_end: end of the project's update period. Defaults to the
            last commit's timestamp.
        dialect: SQL dialect used when parsing the DDL snapshots.
        incremental: commit-format switch. False (default): every commit
            holds the *entire* DDL file (git-snapshot style, the paper's
            dataset format). True: each commit holds only the new
            statements of that change (migration-script style); versions
            are materialized cumulatively.

    Raises:
        HistoryError: for empty commit lists or a project window that does
            not contain every commit.
    """

    def __init__(self, project_name: str, commits: list[Commit],
                 project_start: datetime | None = None,
                 project_end: datetime | None = None,
                 dialect: Dialect = Dialect.GENERIC,
                 incremental: bool = False):
        if not commits:
            raise HistoryError(f"project {project_name!r} has no commits")
        self.project_name = project_name
        self.commits = sorted(commits, key=lambda c: c.timestamp)
        self.project_start = project_start or self.commits[0].timestamp
        self.project_end = project_end or self.commits[-1].timestamp
        self.dialect = dialect
        self.incremental = incremental
        self._versions: list[SchemaVersion] | None = None
        if self.project_start > self.commits[0].timestamp:
            raise HistoryError(
                f"project {project_name!r}: project_start is after the "
                f"first DDL commit")
        if self.project_end < self.commits[-1].timestamp:
            raise HistoryError(
                f"project {project_name!r}: project_end is before the "
                f"last DDL commit")

    # ------------------------------------------------------------------
    # time frame

    @property
    def pup_months(self) -> int:
        """Project Update Period in months (inclusive of both endpoints)."""
        return month_index(self.project_start, self.project_end) + 1

    def commit_month(self, commit: Commit) -> int:
        """Month index of one commit within the project window."""
        return month_index(self.project_start, commit.timestamp)

    @property
    def duration_months(self) -> int:
        """Alias of :attr:`pup_months` (paper nomenclature: PUP)."""
        return self.pup_months

    # ------------------------------------------------------------------
    # versions

    def versions(self) -> list[SchemaVersion]:
        """Parse every commit into a schema version (cached)."""
        if self._versions is None:
            if self.incremental:
                self._versions = self._materialize_incremental()
            else:
                self._versions = [self._materialize(c)
                                  for c in self.commits]
        return self._versions

    def _materialize_incremental(self) -> list[SchemaVersion]:
        """Apply migration-style commits cumulatively to one builder."""
        builder = SchemaBuilder(strict=False)
        versions: list[SchemaVersion] = []
        issues_seen = 0
        for commit in self.commits:
            script = parse_script(commit.ddl_text, self.dialect)
            builder.apply_script(script)
            new_issues = len(builder.issues) - issues_seen
            issues_seen = len(builder.issues)
            versions.append(SchemaVersion(
                commit=commit,
                schema=builder.snapshot(),
                parse_issues=len(script.skipped) + new_issues,
            ))
        return versions

    def _materialize(self, commit: Commit) -> SchemaVersion:
        script = parse_script(commit.ddl_text, self.dialect)
        builder = SchemaBuilder(strict=False)
        builder.apply_script(script)
        return SchemaVersion(
            commit=commit,
            schema=builder.snapshot(),
            parse_issues=len(script.skipped) + len(builder.issues),
        )

    def __len__(self) -> int:
        return len(self.commits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SchemaHistory({self.project_name!r}, "
                f"{len(self.commits)} commits, {self.pup_months} months)")


# ----------------------------------------------------------------------
# loaders / savers


def load_history_from_directory(path: str | Path, project_name: str | None
                                = None, dialect: Dialect = Dialect.GENERIC
                                ) -> SchemaHistory:
    """Load a history from a directory of timestamp-named ``.sql`` files.

    File names must embed an ISO-like date, e.g. ``2021-03-07.sql`` or
    ``2021-03-07T142500_v12.sql``; files sort by that timestamp.

    Raises:
        HistoryError: when the directory holds no parseable-named files.
    """
    directory = Path(path)
    commits: list[Commit] = []
    for file in sorted(directory.glob("*.sql")):
        match = _FILENAME_TIMESTAMP.search(file.name)
        if match is None:
            continue
        year, month, day, hour, minute, second = (
            int(g) if g else 0 for g in match.groups())
        timestamp = datetime(year, month, day, hour, minute, second)
        commits.append(Commit(sha=file.stem, timestamp=timestamp,
                              ddl_text=file.read_text()))
    if not commits:
        raise HistoryError(f"no timestamped .sql files found in {directory}")
    return SchemaHistory(project_name or directory.name, commits,
                         dialect=dialect)


def load_history_from_jsonl(path: str | Path,
                            dialect: Dialect | None = None) -> SchemaHistory:
    """Load a history from a JSONL file.

    The first line may be a header object with keys ``project``,
    ``start``, ``end`` and ``dialect``; every other line is a commit
    object with keys ``sha``, ``timestamp`` (ISO 8601) and ``ddl``.

    Raises:
        HistoryError: on malformed lines or an empty file.
    """
    file = Path(path)
    project_name = file.stem
    start = end = None
    file_dialect = Dialect.GENERIC
    incremental = False
    commits: list[Commit] = []
    with file.open() as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise HistoryError(
                    f"{file}:{line_no}: invalid JSON: {exc}") from exc
            if "ddl" not in record:
                project_name = record.get("project", project_name)
                if record.get("start"):
                    start = datetime.fromisoformat(record["start"])
                if record.get("end"):
                    end = datetime.fromisoformat(record["end"])
                if record.get("dialect"):
                    file_dialect = Dialect.from_name(record["dialect"])
                incremental = bool(record.get("incremental", False))
                continue
            try:
                commits.append(Commit(
                    sha=str(record.get("sha", f"c{line_no}")),
                    timestamp=datetime.fromisoformat(record["timestamp"]),
                    ddl_text=record["ddl"],
                    message=record.get("message", ""),
                ))
            except (KeyError, ValueError) as exc:
                raise HistoryError(
                    f"{file}:{line_no}: bad commit record: {exc}") from exc
    if not commits:
        raise HistoryError(f"{file}: no commits found")
    return SchemaHistory(project_name, commits, project_start=start,
                         project_end=end,
                         dialect=dialect or file_dialect,
                         incremental=incremental)


def save_history_to_jsonl(history: SchemaHistory, path: str | Path) -> None:
    """Write ``history`` in the JSONL format of
    :func:`load_history_from_jsonl`."""
    file = Path(path)
    with file.open("w") as handle:
        header = {
            "project": history.project_name,
            "start": history.project_start.isoformat(),
            "end": history.project_end.isoformat(),
            "dialect": history.dialect.traits.name,
            "incremental": history.incremental,
        }
        handle.write(json.dumps(header) + "\n")
        for commit in history.commits:
            record = {
                "sha": commit.sha,
                "timestamp": commit.timestamp.isoformat(),
                "ddl": commit.ddl_text,
            }
            if commit.message:
                record["message"] = commit.message
            handle.write(json.dumps(record) + "\n")
