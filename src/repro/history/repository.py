"""Schema histories: loading, storage and version materialization."""

from __future__ import annotations

import json
import os
import re
from datetime import datetime
from pathlib import Path

from repro.errors import HistoryError
from repro.history.commit import Commit, SchemaVersion
from repro.schema.builder import SchemaBuilder
from repro.sqlddl.dialect import Dialect
from repro.sqlddl.memo import StatementMemo
from repro.sqlddl.parser import parse_script
from repro.sqlddl.splitter import split_statements

_FILENAME_TIMESTAMP = re.compile(
    r"(\d{4})-(\d{2})-(\d{2})(?:[T_](\d{2}))?(?:[-:]?(\d{2}))?(?:[-:]?(\d{2}))?"
)

#: Environment flag disabling the incremental parse path process-wide.
#: An env var (rather than a config field) so per-project workers spawned
#: by the execution engine inherit the choice automatically.
NO_INCREMENTAL_ENV = "REPRO_NO_INCREMENTAL"


def incremental_parse_default() -> bool:
    """Whether histories materialize incrementally by default (on unless
    ``REPRO_NO_INCREMENTAL`` is set)."""
    return not os.environ.get(NO_INCREMENTAL_ENV)


def set_incremental_parse_default(enabled: bool) -> None:
    """Set the process-wide incremental-parse default (and that of any
    worker process spawned afterwards)."""
    if enabled:
        os.environ.pop(NO_INCREMENTAL_ENV, None)
    else:
        os.environ[NO_INCREMENTAL_ENV] = "1"


def month_index(start: datetime, when: datetime) -> int:
    """0-based calendar-month index of ``when`` relative to ``start``.

    The paper's granule of time is the month: all activity inside one
    calendar month counts together.
    """
    return (when.year - start.year) * 12 + (when.month - start.month)


class SchemaHistory:
    """The ordered DDL history of one project.

    Args:
        project_name: human-readable project identifier.
        commits: the DDL commits; sorted by timestamp on construction.
        project_start: start of the *project* (source-code side) — may
            precede the first DDL commit (late schema birth). Defaults to
            the first commit's timestamp.
        project_end: end of the project's update period. Defaults to the
            last commit's timestamp.
        dialect: SQL dialect used when parsing the DDL snapshots.
        incremental: commit-format switch. False (default): every commit
            holds the *entire* DDL file (git-snapshot style, the paper's
            dataset format). True: each commit holds only the new
            statements of that change (migration-script style); versions
            are materialized cumulatively.
        incremental_parse: whether full-snapshot commits materialize
            through the statement memo (parse only statements changed
            since the previous version, reuse unchanged ``Table``
            objects). None (default) defers to the process-wide default
            (:func:`incremental_parse_default`). Output is guaranteed
            identical either way; the flag exists for A/B verification
            and as an escape hatch.

    Raises:
        HistoryError: for empty commit lists or a project window that does
            not contain every commit.
    """

    def __init__(self, project_name: str, commits: list[Commit],
                 project_start: datetime | None = None,
                 project_end: datetime | None = None,
                 dialect: Dialect = Dialect.GENERIC,
                 incremental: bool = False,
                 incremental_parse: bool | None = None):
        if not commits:
            raise HistoryError(f"project {project_name!r} has no commits")
        self.project_name = project_name
        self.commits = sorted(commits, key=lambda c: c.timestamp)
        self.project_start = project_start or self.commits[0].timestamp
        self.project_end = project_end or self.commits[-1].timestamp
        self.dialect = dialect
        self.incremental = incremental
        self.incremental_parse = incremental_parse
        #: (memo hits, memo misses) of the last materialization, or None
        #: when the classic full-parse path ran.
        self.parse_stats: tuple[int, int] | None = None
        #: (final segment-hash tuple, final Table pool) of the last
        #: memoized materialization — the tail state the delta layer
        #: checkpoints so a grown history can resume mid-stream; None
        #: when the classic or incremental path ran.
        self._delta_state: tuple | None = None
        self._versions: list[SchemaVersion] | None = None
        if self.project_start > self.commits[0].timestamp:
            raise HistoryError(
                f"project {project_name!r}: project_start is after the "
                f"first DDL commit")
        if self.project_end < self.commits[-1].timestamp:
            raise HistoryError(
                f"project {project_name!r}: project_end is before the "
                f"last DDL commit")

    # ------------------------------------------------------------------
    # time frame

    @property
    def pup_months(self) -> int:
        """Project Update Period in months (inclusive of both endpoints)."""
        return month_index(self.project_start, self.project_end) + 1

    def commit_month(self, commit: Commit) -> int:
        """Month index of one commit within the project window."""
        return month_index(self.project_start, commit.timestamp)

    @property
    def duration_months(self) -> int:
        """Alias of :attr:`pup_months` (paper nomenclature: PUP)."""
        return self.pup_months

    # ------------------------------------------------------------------
    # versions

    def versions(self) -> list[SchemaVersion]:
        """Parse every commit into a schema version (cached)."""
        if self._versions is None:
            if self.incremental:
                self._versions = self._materialize_incremental()
            elif (self.incremental_parse
                  if self.incremental_parse is not None
                  else incremental_parse_default()):
                self._versions = self._materialize_memoized()
            else:
                self._versions = [self._materialize(c)
                                  for c in self.commits]
        return self._versions

    def _materialize_memoized(self) -> list[SchemaVersion]:
        """Materialize full-snapshot commits through the statement memo.

        Three reuse layers, each provably output-identical to the
        classic per-commit full parse:

        1. *Whole-version shortcut* — a commit whose segment-hash tuple
           equals the previous commit's reuses that version's schema
           and issue count outright (identical spans lex to identical
           token streams, so the classic path would reproduce them).
        2. *Statement memo* — only spans unseen in this history are
           tokenized and parsed; repeats return the cached frozen AST
           (or the cached SkippedStatement).
        3. *Table reuse* — every version still folds all statements
           through a fresh builder (cheap; parsing is the ~93% cost),
           but the snapshot hands back version N−1's frozen ``Table``
           for tables whose ``(name, statement-trace)`` is unchanged,
           which in turn arms the diff engine's identity fast path.

        Any span the memo cannot handle in isolation (lex error, or a
        raw/token split disagreement) falls the whole commit back to
        :meth:`_materialize`, reproducing classic behaviour bit for bit.
        """
        memo = StatementMemo(self.dialect)
        versions: list[SchemaVersion] = []
        prev_hashes: tuple[str, ...] | None = None
        prev_pool: dict | None = None
        for commit in self.commits:
            segments = split_statements(commit.ddl_text, self.dialect)
            hashes = tuple(s.content_hash for s in segments)
            if versions and hashes == prev_hashes:
                previous = versions[-1]
                versions.append(SchemaVersion(
                    commit=commit, schema=previous.schema,
                    parse_issues=previous.parse_issues))
                continue
            parsed = [memo.parse(segment) for segment in segments]
            if any(entry.fallback for entry in parsed):
                versions.append(self._materialize(commit))
                prev_hashes = hashes
                prev_pool = None
                continue
            builder = SchemaBuilder(strict=False)
            skipped = 0
            for segment, entry in zip(segments, parsed):
                if entry.statement is not None:
                    builder.apply(entry.statement,
                                  token=segment.content_hash)
                else:
                    skipped += 1
            schema, pool = builder.snapshot_reusing(prev_pool)
            versions.append(SchemaVersion(
                commit=commit, schema=schema,
                parse_issues=skipped + len(builder.issues)))
            prev_hashes = hashes
            prev_pool = pool
        self._delta_state = (prev_hashes, prev_pool)
        self.parse_stats = (memo.hits, memo.misses)
        return versions

    def _materialize_incremental(self) -> list[SchemaVersion]:
        """Apply migration-style commits cumulatively to one builder."""
        builder = SchemaBuilder(strict=False)
        versions: list[SchemaVersion] = []
        issues_seen = 0
        for commit in self.commits:
            script = parse_script(commit.ddl_text, self.dialect)
            builder.apply_script(script)
            new_issues = len(builder.issues) - issues_seen
            issues_seen = len(builder.issues)
            versions.append(SchemaVersion(
                commit=commit,
                schema=builder.snapshot(),
                parse_issues=len(script.skipped) + new_issues,
            ))
        return versions

    def _materialize(self, commit: Commit) -> SchemaVersion:
        script = parse_script(commit.ddl_text, self.dialect)
        builder = SchemaBuilder(strict=False)
        builder.apply_script(script)
        return SchemaVersion(
            commit=commit,
            schema=builder.snapshot(),
            parse_issues=len(script.skipped) + len(builder.issues),
        )

    def __len__(self) -> int:
        return len(self.commits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SchemaHistory({self.project_name!r}, "
                f"{len(self.commits)} commits, {self.pup_months} months)")


# ----------------------------------------------------------------------
# loaders / savers


def load_history_from_directory(path: str | Path, project_name: str | None
                                = None, dialect: Dialect = Dialect.GENERIC
                                ) -> SchemaHistory:
    """Load a history from a directory of timestamp-named ``.sql`` files.

    File names must embed an ISO-like date, e.g. ``2021-03-07.sql`` or
    ``2021-03-07T142500_v12.sql``; files sort by that timestamp.

    Raises:
        HistoryError: when the directory holds no parseable-named files.
    """
    directory = Path(path)
    commits: list[Commit] = []
    for file in sorted(directory.glob("*.sql")):
        match = _FILENAME_TIMESTAMP.search(file.name)
        if match is None:
            continue
        year, month, day, hour, minute, second = (
            int(g) if g else 0 for g in match.groups())
        timestamp = datetime(year, month, day, hour, minute, second)
        commits.append(Commit(sha=file.stem, timestamp=timestamp,
                              ddl_text=file.read_text()))
    if not commits:
        raise HistoryError(f"no timestamped .sql files found in {directory}")
    return SchemaHistory(project_name or directory.name, commits,
                         dialect=dialect)


def load_history_from_jsonl(path: str | Path,
                            dialect: Dialect | None = None) -> SchemaHistory:
    """Load a history from a JSONL file.

    The first line may be a header object with keys ``project``,
    ``start``, ``end`` and ``dialect``; every other line is a commit
    object with keys ``sha``, ``timestamp`` (ISO 8601) and ``ddl``.

    Raises:
        HistoryError: on malformed lines or an empty file.
    """
    file = Path(path)
    project_name = file.stem
    start = end = None
    file_dialect = Dialect.GENERIC
    incremental = False
    commits: list[Commit] = []
    with file.open() as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise HistoryError(
                    f"{file}:{line_no}: invalid JSON: {exc}") from exc
            if "ddl" not in record:
                project_name = record.get("project", project_name)
                if record.get("start"):
                    start = datetime.fromisoformat(record["start"])
                if record.get("end"):
                    end = datetime.fromisoformat(record["end"])
                if record.get("dialect"):
                    file_dialect = Dialect.from_name(record["dialect"])
                incremental = bool(record.get("incremental", False))
                continue
            try:
                commits.append(Commit(
                    sha=str(record.get("sha", f"c{line_no}")),
                    timestamp=datetime.fromisoformat(record["timestamp"]),
                    ddl_text=record["ddl"],
                    message=record.get("message", ""),
                ))
            except (KeyError, ValueError) as exc:
                raise HistoryError(
                    f"{file}:{line_no}: bad commit record: {exc}") from exc
    if not commits:
        raise HistoryError(f"{file}: no commits found")
    return SchemaHistory(project_name, commits, project_start=start,
                         project_end=end,
                         dialect=dialect or file_dialect,
                         incremental=incremental)


def save_history_to_jsonl(history: SchemaHistory, path: str | Path) -> None:
    """Write ``history`` in the JSONL format of
    :func:`load_history_from_jsonl`."""
    file = Path(path)
    with file.open("w") as handle:
        header = {
            "project": history.project_name,
            "start": history.project_start.isoformat(),
            "end": history.project_end.isoformat(),
            "dialect": history.dialect.traits.name,
            "incremental": history.incremental,
        }
        handle.write(json.dumps(header) + "\n")
        for commit in history.commits:
            record = {
                "sha": commit.sha,
                "timestamp": commit.timestamp.isoformat(),
                "ddl": commit.ddl_text,
            }
            if commit.message:
                record["message"] = commit.message
            handle.write(json.dumps(record) + "\n")
