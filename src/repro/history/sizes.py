"""Schema size over time (tables / attributes per month).

Several prior studies the paper builds on report *schema size over time*
([31], [44]); this module derives that series from a history: for every
project month, the table and attribute counts of the schema as of that
month (forward-filled between commits, zero before schema birth).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MetricError
from repro.history.repository import SchemaHistory


@dataclass(frozen=True)
class SizeSeries:
    """Monthly table/attribute counts of a project's schema.

    Attributes:
        tables: table count per month, index 0 .. PUP-1.
        attributes: attribute count per month.
    """

    tables: tuple[int, ...]
    attributes: tuple[int, ...]

    def __post_init__(self):
        if not self.tables or len(self.tables) != len(self.attributes):
            raise MetricError("size series needs aligned, non-empty "
                              "table and attribute counts")

    @property
    def months(self) -> int:
        """Series length in months."""
        return len(self.tables)

    @property
    def final_tables(self) -> int:
        """Table count at the end of the project."""
        return self.tables[-1]

    @property
    def final_attributes(self) -> int:
        """Attribute count at the end of the project."""
        return self.attributes[-1]

    @property
    def peak_attributes(self) -> int:
        """Largest attribute count ever reached."""
        return max(self.attributes)

    def growth_months(self) -> tuple[int, ...]:
        """Months where the attribute count strictly increased."""
        out = []
        previous = 0
        for month, count in enumerate(self.attributes):
            if count > previous:
                out.append(month)
            previous = count
        return tuple(out)

    def shrink_months(self) -> tuple[int, ...]:
        """Months where the attribute count strictly decreased."""
        out = []
        previous = 0
        for month, count in enumerate(self.attributes):
            if count < previous:
                out.append(month)
            previous = count
        return tuple(out)


def size_series(history: SchemaHistory) -> SizeSeries:
    """Compute the monthly size series of ``history``.

    Months before the first DDL commit count zero tables/attributes; a
    month with several commits reflects the last one.
    """
    months = history.pup_months
    tables = [0] * months
    attributes = [0] * months
    per_month: dict[int, tuple[int, int]] = {}
    for version in history.versions():
        month = history.commit_month(version.commit)
        per_month[month] = (version.schema.table_count,
                            version.schema.attribute_count)
    current = (0, 0)
    for month in range(months):
        if month in per_month:
            current = per_month[month]
        tables[month], attributes[month] = current
    return SizeSeries(tables=tuple(tables), attributes=tuple(attributes))
