"""repro — reproduction of "Time-Related Patterns Of Schema Evolution"
(EDBT 2025).

A complete toolchain for mining time-related patterns from relational
schema histories:

* :mod:`repro.sqlddl` — SQL DDL lexer/parser/writer (MySQL, PostgreSQL,
  SQLite flavors);
* :mod:`repro.schema` — logical schema model and builder;
* :mod:`repro.diff` — affected-attribute diff engine;
* :mod:`repro.history` — schema histories, monthly heartbeats;
* :mod:`repro.metrics` — landmarks, activity measures, progress vectors;
* :mod:`repro.labels` — Table-1 quantization;
* :mod:`repro.patterns` — the 8 patterns / 3 families and the classifier;
* :mod:`repro.mining` — decision tree, Spearman, centroids, clustering;
* :mod:`repro.analysis` — one module per paper table/figure;
* :mod:`repro.corpus` — the synthetic 151-project study corpus;
* :mod:`repro.study` — the one-call study pipeline;
* :mod:`repro.viz` — ASCII/SVG heartbeat charts and text tables.

Quickstart::

    from repro.corpus import generate_corpus
    from repro.study import records_from_corpus, run_study

    results = run_study(records_from_corpus(generate_corpus()))

See ``examples/quickstart.py`` for a complete tour.
"""

from repro.errors import ReproError
from repro.history.repository import SchemaHistory
from repro.labels.quantization import LabeledProfile, label_profile
from repro.metrics.profile import ProjectProfile
from repro.patterns.classifier import classify, classify_with_tolerance
from repro.patterns.taxonomy import Family, Pattern

__version__ = "1.0.0"

__all__ = [
    "Family",
    "LabeledProfile",
    "Pattern",
    "ProjectProfile",
    "ReproError",
    "SchemaHistory",
    "__version__",
    "classify",
    "classify_with_tolerance",
    "label_profile",
    "quick_profile",
]


def quick_profile(history: SchemaHistory) -> LabeledProfile:
    """Measure and label one schema history in a single call.

    Convenience wrapper: ``label_profile(ProjectProfile.from_history(h))``.
    """
    return label_profile(ProjectProfile.from_history(history))
