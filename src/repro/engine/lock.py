"""Inter-process locking and atomic appends for shared cache dirs.

Two or more sessions (CLI invocations, watch loops, a warm service) may
point at the same ``--cache-dir``. Most of the cache is already safe by
construction — result objects and delta checkpoints are content-addressed
and written via atomic tmp+rename, and each run's journal has exactly one
writer — but the run ledger (``ledger.jsonl``) is a single append-only
file shared by every writer. :class:`CacheLock` serializes those writers.

The primary implementation uses ``fcntl.flock`` on ``<cache_dir>/.lock``:
the kernel releases the lock automatically when the holder dies, so a
SIGKILLed writer can never wedge the cache dir. On platforms without
``fcntl`` (or when forced for tests) a create-exclusive lockfile is used
instead, with pid + heartbeat metadata and stale-lock takeover: a lock
whose owner pid is gone, or whose heartbeat is older than
``stale_after`` seconds, is broken and re-acquired.

:func:`append_line` is the shared append discipline for JSONL files: one
``os.write`` of the whole line on an ``O_APPEND`` descriptor (atomic with
respect to concurrent readers and same-file appenders on local
filesystems), optionally fsynced.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.errors import EngineError

try:  # pragma: no cover - import guard exercised only off-linux
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

#: Name of the lock file inside a cache dir.
LOCK_NAME = ".lock"

#: Default seconds to wait for a contended lock before giving up.
LOCK_TIMEOUT = 10.0

#: Fallback-mode only: a heartbeat older than this marks the lock stale.
STALE_AFTER = 30.0

_POLL_SECONDS = 0.02


def append_line(path: Path, data: bytes, fsync: bool = False) -> None:
    """Append ``data`` (a complete ``...\\n`` line) atomically to ``path``.

    The whole line goes down in a single ``write`` on an ``O_APPEND``
    descriptor, so concurrent readers never observe a torn record and
    two appenders never interleave bytes. ``fsync=True`` additionally
    forces the line to stable storage before returning. Raises
    ``OSError`` when the filesystem refuses (full disk, read-only).
    """
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)


class CacheLock:
    """Advisory inter-process lock over a shared cache directory.

    Usage::

        with CacheLock(cache_dir):
            append_line(cache_dir / "ledger.jsonl", line, fsync=True)

    Acquisition polls until ``timeout`` seconds, then raises
    :class:`EngineError` naming the recorded holder. Lock metadata
    (pid + heartbeat timestamp) is written into the lock file for
    observability; long-running holders may call :meth:`heartbeat` to
    refresh it (the fallback path treats an old heartbeat as stale).
    """

    def __init__(self, cache_dir: Path | str, name: str = LOCK_NAME,
                 timeout: float = LOCK_TIMEOUT,
                 stale_after: float = STALE_AFTER,
                 use_fcntl: bool | None = None):
        self.path = Path(cache_dir) / name
        self.timeout = timeout
        self.stale_after = stale_after
        if use_fcntl is None:
            use_fcntl = fcntl is not None
        if use_fcntl and fcntl is None:  # pragma: no cover
            raise EngineError("fcntl locking requested but unavailable")
        self._use_fcntl = use_fcntl
        self._fd: int | None = None

    # -- metadata ---------------------------------------------------

    def _metadata(self) -> bytes:
        payload = {"pid": os.getpid(), "heartbeat": time.time()}
        return (json.dumps(payload, sort_keys=True) + "\n").encode("ascii")

    @staticmethod
    def read_holder(path: Path) -> dict | None:
        """Best-effort read of the pid/heartbeat left by the holder."""
        try:
            record = json.loads(path.read_text(encoding="ascii"))
        except (OSError, ValueError):
            return None
        return record if isinstance(record, dict) else None

    def heartbeat(self) -> None:
        """Refresh the held lock's heartbeat timestamp."""
        if self._fd is None:
            raise EngineError(f"cannot heartbeat {self.path}: not held")
        data = self._metadata()
        os.lseek(self._fd, 0, os.SEEK_SET)
        os.truncate(self._fd, 0)
        os.write(self._fd, data)

    # -- acquisition ------------------------------------------------

    def acquire(self) -> "CacheLock":
        if self._fd is not None:
            raise EngineError(f"lock {self.path} already held")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + self.timeout
        while True:
            acquired = (self._try_flock() if self._use_fcntl
                        else self._try_lockfile())
            if acquired:
                return self
            if time.monotonic() >= deadline:
                holder = self.read_holder(self.path) or {}
                raise EngineError(
                    f"could not lock shared cache dir via {self.path} "
                    f"within {self.timeout:.1f}s"
                    + (f" (held by pid {holder['pid']})"
                       if "pid" in holder else ""))
            time.sleep(_POLL_SECONDS)

    def _try_flock(self) -> bool:
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return False
        self._fd = fd
        self.heartbeat()
        return True

    def _try_lockfile(self) -> bool:
        try:
            fd = os.open(self.path,
                         os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            self._break_if_stale()
            return False
        except OSError:
            return False
        self._fd = fd
        os.write(fd, self._metadata())
        return True

    def _break_if_stale(self) -> None:
        """Fallback path: remove a lockfile whose owner is provably gone."""
        holder = self.read_holder(self.path)
        stale = False
        if holder is None:
            # Unreadable metadata: only age can prove staleness.
            try:
                stale = (time.time() - self.path.stat().st_mtime
                         > self.stale_after)
            except OSError:
                return
        else:
            pid = holder.get("pid")
            beat = holder.get("heartbeat", 0.0)
            if isinstance(pid, int) and not _pid_alive(pid):
                stale = True
            elif time.time() - float(beat) > self.stale_after:
                stale = True
        if stale:
            try:
                self.path.unlink()
            except OSError:
                pass

    def release(self) -> None:
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        if self._use_fcntl:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:  # pragma: no cover
                pass
            os.close(fd)
        else:
            os.close(fd)
            try:
                self.path.unlink()
            except OSError:  # pragma: no cover
                pass

    @property
    def held(self) -> bool:
        return self._fd is not None

    def __enter__(self) -> "CacheLock":
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, not ours
        return True
    except OSError:  # pragma: no cover
        return False
    return True
