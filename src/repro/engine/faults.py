"""Fault tolerance: failure records, error policies, fault injection.

Real corpora are messy — the paper itself keeps 151 of 195 mined
histories — so a large study run must *degrade*, not die, when one
project is unparseable, one git invocation fails or one cache entry is
truncated. This module holds the three building blocks the executor
uses to do that:

* :class:`ProjectFailure` — the structured record of one project that
  could not be computed (who, where, why, how many attempts);
* :class:`ErrorPolicy` — what the executor does when a mapped item
  raises: ``fail`` (propagate, today's behaviour and the default),
  ``skip`` (quarantine the project and continue with the survivors) or
  ``retry`` (N extra attempts with exponential backoff and
  deterministic jitter, for :class:`~repro.errors.TransientSourceError`
  only — permanent failures never burn the retry budget);
* :class:`FaultPlan` / :class:`FaultSpec` — a deterministic, seeded
  fault-injection harness that makes chosen projects raise parse
  errors, transient source errors, corrupt their cache entries or
  crash their worker process, so every policy path can be exercised
  end-to-end (engine, CLI, CI) instead of only unit-mocked.

Everything here is a small frozen dataclass: policies and plans pickle
to worker processes for free and compare by value, and a plan can
round-trip through a compact spec string (``REPRO_FAULT_PLAN``) so the
CLI and CI can inject faults without touching code.
"""

from __future__ import annotations

import hashlib
import os
import signal
import traceback
from dataclasses import dataclass, field

from repro.errors import (
    EngineError,
    ParseError,
    TransientSourceError,
)

#: The modes an :class:`ErrorPolicy` can take.
POLICY_MODES = ("fail", "skip", "retry")

#: The fault kinds a :class:`FaultSpec` can inject.
FAULT_KINDS = ("parse", "source", "cache", "crash",
               "kill", "enospc", "interrupt")

#: Kinds that fire in the *parent* at dispatch time (see
#: :meth:`FaultPlan.parent_kind`) rather than inside the mapped call.
PARENT_FAULT_KINDS = ("kill", "enospc", "interrupt")

#: Environment variable holding a fault-plan spec string.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit status an injected worker crash dies with (recognizable in
#: CI logs; any abnormal exit breaks the pool identically).
CRASH_EXIT_STATUS = 97

#: Exit status an injected ``kill`` fault dies with — 128 + SIGKILL,
#: what a real ``kill -9`` of the run would report.
KILL_EXIT_STATUS = 137

# Set by the pool-worker initializer so an injected "crash" knows it
# may genuinely kill the process; in the parent (serial execution,
# pool-crash recovery) it raises instead.
_POOL_WORKER = False


def mark_pool_worker() -> None:
    """Flag this process as a pool worker (executor initializer)."""
    global _POOL_WORKER
    _POOL_WORKER = True
    # A terminal Ctrl-C goes to the whole foreground process group;
    # workers ignore SIGINT so the parent keeps a live pool while it
    # drains finished chunks during graceful shutdown.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass


def in_pool_worker() -> bool:
    """True inside a process-pool worker of the executor."""
    return _POOL_WORKER


def item_id(item: object) -> str:
    """The project id of one mapped item, best effort.

    Handles carry ``pid``, generated projects ``name``, histories
    ``project_name``; anything else falls back to a trimmed ``repr``
    so a failure record is never nameless.
    """
    for attr in ("pid", "name", "project_name"):
        value = getattr(item, attr, None)
        if isinstance(value, str):
            return value
    return repr(item)[:80]


def _traceback_snippet(exc: BaseException, limit: int = 4) -> str:
    """The last ``limit`` frames of ``exc``'s traceback, as text."""
    lines = traceback.format_exception(type(exc), exc, exc.__traceback__,
                                       limit=-limit)
    return "".join(lines).strip()


@dataclass(frozen=True)
class ProjectFailure:
    """One project the study could not compute.

    Attributes:
        project: the project's id within its source.
        stage: name of the stage that failed (``"records"`` usually).
        error_type: exception class name (``ParseError``, ...).
        message: the exception message, trimmed.
        traceback: the last frames of the traceback, for debugging.
        attempts: how many attempts were made before giving up.
    """

    project: str
    stage: str
    error_type: str
    message: str
    traceback: str = ""
    attempts: int = 1

    @classmethod
    def from_exception(cls, project: str, stage: str,
                       exc: BaseException,
                       attempts: int = 1) -> "ProjectFailure":
        """Build a failure record from a caught exception."""
        return cls(project=project, stage=stage,
                   error_type=type(exc).__name__,
                   message=str(exc)[:500],
                   traceback=_traceback_snippet(exc),
                   attempts=attempts)

    def summary(self) -> str:
        """One log-friendly line describing this failure."""
        tries = f" after {self.attempts} attempts" \
            if self.attempts > 1 else ""
        return (f"{self.project} [{self.stage}] "
                f"{self.error_type}: {self.message}{tries}")


@dataclass(frozen=True)
class ErrorPolicy:
    """What the executor does when computing one project raises.

    Attributes:
        mode: ``"fail"`` (propagate — today's behaviour and the
            default), ``"skip"`` (record a :class:`ProjectFailure`,
            drop the project, continue) or ``"retry"`` (like skip, but
            transient source errors get ``max_retries`` extra attempts
            first).
        max_retries: extra attempts after the first, ``retry`` mode
            only.
        backoff_base: first retry delay in seconds; attempt *k* waits
            ``backoff_base * 2**(k-1)``, jittered ±25 %, capped at
            ``backoff_cap``. Zero disables sleeping (tests).
        backoff_cap: upper bound of any single backoff sleep.
    """

    mode: str = "fail"
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def __post_init__(self):
        if self.mode not in POLICY_MODES:
            raise EngineError(
                f"unknown error-policy mode {self.mode!r}; expected "
                f"one of {', '.join(POLICY_MODES)}")
        if self.max_retries < 0:
            raise EngineError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise EngineError("backoff durations must be >= 0")

    @classmethod
    def fail_fast(cls) -> "ErrorPolicy":
        """Propagate the first failure — the default policy."""
        return cls(mode="fail")

    @classmethod
    def skip(cls) -> "ErrorPolicy":
        """Quarantine failing projects, compute over the survivors."""
        return cls(mode="skip")

    @classmethod
    def retry(cls, max_retries: int = 2,
              backoff_base: float = 0.05) -> "ErrorPolicy":
        """Retry transient source failures, then skip like ``skip``."""
        return cls(mode="retry", max_retries=max_retries,
                   backoff_base=backoff_base)

    @property
    def captures(self) -> bool:
        """True when per-item failures are captured, not propagated."""
        return self.mode != "fail"

    def attempts_for(self, exc: BaseException) -> int:
        """Total attempts a failure of this type is allowed."""
        if self.mode == "retry" \
                and isinstance(exc, TransientSourceError):
            return 1 + self.max_retries
        return 1

    def backoff_seconds(self, project: str, attempt: int) -> float:
        """Delay before retry number ``attempt`` of ``project``.

        Exponential with a ±25 % jitter derived from a content hash of
        ``(project, attempt)`` — deterministic across runs and
        processes, no global RNG touched — capped at ``backoff_cap``.
        """
        base = self.backoff_base * (2 ** max(0, attempt - 1))
        digest = hashlib.blake2b(f"{project}:{attempt}".encode("utf-8"),
                                 digest_size=8).digest()
        fraction = int.from_bytes(digest, "big") / 2 ** 64
        return min(self.backoff_cap, base * (0.75 + 0.5 * fraction))


def policy_from_name(name: str, max_retries: int = 2) -> ErrorPolicy:
    """The policy behind a CLI ``--on-error`` value.

    Raises:
        EngineError: for an unknown name.
    """
    if name == "fail":
        return ErrorPolicy.fail_fast()
    if name == "skip":
        return ErrorPolicy.skip()
    if name == "retry":
        return ErrorPolicy.retry(max_retries=max_retries)
    raise EngineError(
        f"unknown error policy {name!r}; expected one of "
        f"{', '.join(POLICY_MODES)}")


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: a kind aimed at chosen projects.

    Attributes:
        kind: ``"parse"`` (raise :class:`~repro.errors.ParseError` —
            permanent), ``"source"`` (raise
            :class:`~repro.errors.TransientSourceError` — retryable),
            ``"cache"`` (scribble over the project's on-disk cache
            entry before it is read, exercising envelope self-healing),
            ``"crash"`` (kill the worker process; in-parent execution
            raises :class:`~repro.errors.EngineError` instead),
            ``"kill"`` (hard-exit the whole run with status 137 when
            the target is reached — a deterministic in-process
            ``kill -9``, for crash-recovery tests), ``"enospc"``
            (cache + journal writes start failing, as a full disk
            would) or ``"interrupt"`` (a deterministic Ctrl-C: the
            executor's graceful-shutdown path runs as if SIGINT had
            arrived at that item).
        target: which projects the fault hits — an exact project id, a
            ``prefix*`` glob, or ``~N`` selecting a deterministic
            pseudo-random 1-in-N sample keyed on the plan seed.
        stage: the stage the fault fires in (default ``"records"``).
        times: fire on attempts ``1..times`` only, so a ``retry``
            policy with budget >= ``times`` heals the project.
    """

    kind: str
    target: str
    stage: str = "records"
    times: int = 1

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise EngineError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}")
        if not self.target:
            raise EngineError("a fault spec needs a target")
        if self.times < 1:
            raise EngineError(f"times must be >= 1, got {self.times}")

    def matches(self, pid: str, stage: str, seed: int) -> bool:
        """True when this fault applies to ``pid`` in ``stage``."""
        if stage != self.stage:
            return False
        if self.target.startswith("~"):
            try:
                modulus = int(self.target[1:])
            except ValueError:
                raise EngineError(
                    f"bad sample target {self.target!r}: expected ~N")
            if modulus < 1:
                raise EngineError(
                    f"sample target must be ~N with N >= 1, "
                    f"got {self.target!r}")
            digest = hashlib.blake2b(f"{seed}:{pid}".encode("utf-8"),
                                     digest_size=8).digest()
            return int.from_bytes(digest, "big") % modulus == 0
        if self.target.endswith("*"):
            return pid.startswith(self.target[:-1])
        return pid == self.target

    def to_token(self) -> str:
        """This spec as one token of a plan spec string."""
        token = f"{self.kind}@{self.target}"
        if self.times != 1:
            token += f"*{self.times}"
        if self.stage != "records":
            token += f"#{self.stage}"
        return token


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of injected faults.

    The plan travels inside :class:`~repro.engine.config.StudyConfig`
    (and pickles to workers with the map closure), or as a compact
    spec string via the ``REPRO_FAULT_PLAN`` environment variable::

        seed=7;parse@flatliner-01;source@siesta-01*2;cache@~10

    i.e. ``;``-separated :meth:`FaultSpec.to_token` tokens plus an
    optional ``seed=N`` entry (the seed keys ``~N`` sampling targets).

    Attributes:
        seed: seed for deterministic ``~N`` sampling targets.
        faults: the injected fault specs, checked in order — the first
            matching spec wins for a given (project, stage).
    """

    seed: int = 0
    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self):
        # Tolerate list input; the plan must stay hashable/picklable.
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))

    def spec_for(self, pid: str, stage: str) -> FaultSpec | None:
        """The first fault spec matching ``(pid, stage)``, if any."""
        for spec in self.faults:
            if spec.matches(pid, stage, self.seed):
                return spec
        return None

    def check(self, pid: str, stage: str, attempt: int) -> None:
        """Raise (or crash) when a non-cache fault fires here.

        Args:
            pid: project being computed.
            stage: stage it is computed in.
            attempt: 1-based attempt number — a spec fires on attempts
                ``1..times`` only, which is what lets retry policies
                (and the pool-crash serial re-run, which counts as a
                later attempt) heal injected transient faults.
        """
        spec = self.spec_for(pid, stage)
        if spec is None or spec.kind not in ("parse", "source", "crash") \
                or attempt > spec.times:
            return
        if spec.kind == "parse":
            raise ParseError(
                f"injected parse fault for {pid} (attempt {attempt})")
        if spec.kind == "source":
            raise TransientSourceError(
                f"injected transient source fault for {pid} "
                f"(attempt {attempt})")
        # crash: only a pool worker may genuinely die — in the parent
        # (serial mode, recovery re-run) that would kill the study.
        if in_pool_worker():
            os._exit(CRASH_EXIT_STATUS)
        raise EngineError(
            f"injected worker crash for {pid} (no pool worker to "
            f"kill; attempt {attempt})")

    def wants_cache_corruption(self, pid: str, stage: str) -> bool:
        """True when this project's cache entry should be scribbled."""
        spec = self.spec_for(pid, stage)
        return spec is not None and spec.kind == "cache"

    def parent_kind(self, pid: str, stage: str) -> str | None:
        """The parent-side fault to fire when ``pid`` is dispatched.

        ``kill``/``enospc``/``interrupt`` faults act on the *run*, not
        on one mapped call, so the executor checks for them at probe
        time in the parent process (``times`` does not apply — a run
        only reaches each dispatch point once). Returns the kind, or
        ``None``.
        """
        spec = self.spec_for(pid, stage)
        if spec is not None and spec.kind in PARENT_FAULT_KINDS:
            return spec.kind
        return None

    def to_spec(self) -> str:
        """The plan as a spec-string (``REPRO_FAULT_PLAN`` format)."""
        tokens = [spec.to_token() for spec in self.faults]
        if self.seed:
            tokens.insert(0, f"seed={self.seed}")
        return ";".join(tokens)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a spec string back into a plan.

        Raises:
            EngineError: for malformed tokens.
        """
        seed = 0
        specs: list[FaultSpec] = []
        for token in text.split(";"):
            token = token.strip()
            if not token:
                continue
            if token.startswith("seed="):
                try:
                    seed = int(token[5:])
                except ValueError:
                    raise EngineError(
                        f"bad fault-plan seed {token!r}") from None
                continue
            kind, sep, rest = token.partition("@")
            if not sep or not rest:
                raise EngineError(
                    f"bad fault token {token!r}: expected "
                    f"KIND@TARGET[*TIMES][#STAGE]")
            stage = "records"
            if "#" in rest:
                rest, _, stage = rest.partition("#")
            times = 1
            if "*" in rest and not rest.endswith("*"):
                rest, _, times_text = rest.rpartition("*")
                try:
                    times = int(times_text)
                except ValueError:
                    raise EngineError(
                        f"bad fault repeat count in {token!r}") \
                        from None
            specs.append(FaultSpec(kind=kind, target=rest,
                                   stage=stage, times=times))
        return cls(seed=seed, faults=tuple(specs))

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan | None":
        """The plan named by ``REPRO_FAULT_PLAN``, or ``None``."""
        environ = os.environ if environ is None else environ
        text = environ.get(FAULT_PLAN_ENV, "").strip()
        return cls.parse(text) if text else None

    def __bool__(self) -> bool:
        return bool(self.faults)
