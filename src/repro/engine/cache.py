"""Content-addressed result cache.

Cache keys are stable SHA-256 fingerprints of *content* — DDL text,
timestamps, label-scheme boundaries, stage code versions — never of
object identities, so a key computed in any process on any run
addresses the same result. Values are pickled to
``<cache_dir>/objects/<k[:2]>/<key>.pkl``; writes are atomic
(tmp + rename) and reads treat any corruption as a miss, so a shared
cache directory survives concurrent studies and killed runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from datetime import date, datetime
from enum import Enum
from pathlib import Path
from typing import Any

from repro.errors import EngineError

#: Sentinel returned by :meth:`ResultCache.get` for absent/corrupt keys.
MISS = object()

#: On-disk layout version; bump on incompatible pickle layout changes.
CACHE_FORMAT = "repro-cache-v1"


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-serializable canonical form.

    Supports the scalar types plus tuples/lists, string-keyed dicts
    (sorted), datetimes (ISO text) and enums (their value).

    Raises:
        EngineError: for types with no stable canonical form.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (datetime, date)):
        return value.isoformat()
    if isinstance(value, Enum):
        return ["enum", type(value).__name__, canonical(value.value)]
    if isinstance(value, (tuple, list)):
        return [canonical(item) for item in value]
    if isinstance(value, dict):
        out = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise EngineError(
                    f"cache-key dicts need string keys, got {key!r}")
            out[key] = canonical(value[key])
        return out
    raise EngineError(
        f"cannot canonicalize {type(value).__name__!r} for a cache key")


def fingerprint(*parts: Any) -> str:
    """A stable SHA-256 hex digest of the given content parts."""
    payload = json.dumps([CACHE_FORMAT, canonical(list(parts))],
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory-backed store of pickled stage results.

    Args:
        root: cache directory; created lazily on first write.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`MISS`.

        Unreadable or corrupt entries count as misses — the cache is an
        accelerator, never a correctness dependency.
        """
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return MISS
        except Exception:  # corrupt/truncated/foreign entry: recompute
            return MISS

    def put(self, key: str, value: Any) -> bool:
        """Store ``value`` under ``key``; best-effort, atomic.

        Returns:
            True when the entry was written; False when the filesystem
            refused (read-only cache dirs degrade to pass-through).
        """
        path = self._path(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with tmp.open("wb") as handle:
                pickle.dump(value, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
            return True
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        """Number of stored entries (walks the directory)."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        return sum(1 for _ in objects.glob("*/*.pkl"))
