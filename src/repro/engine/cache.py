"""Content-addressed result cache with a self-healing envelope.

Cache keys are stable SHA-256 fingerprints of *content* — DDL text,
timestamps, label-scheme boundaries, stage code versions — never of
object identities, so a key computed in any process on any run
addresses the same result. Values are pickled inside a checksummed
envelope to ``<cache_dir>/objects/<k[:2]>/<key>.pkl``; writes are
atomic (tmp + rename).

The envelope is one ASCII header line followed by the pickle payload::

    %repro-cache% <version> <sha256-of-payload>\\n<payload bytes>

Reads verify the magic, version and checksum before unpickling. A
truncated, scribbled, zero-byte or foreign-version entry is *never* an
unpickling crash: it counts as a miss, and the bad file is moved aside
to ``<cache_dir>/corrupt/`` (quarantine) so the next write repopulates
the slot and the evidence survives for debugging. A shared cache
directory therefore survives concurrent studies, killed runs and torn
disk writes.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from datetime import date, datetime
from enum import Enum
from pathlib import Path
from typing import Any

from repro.errors import EngineError

#: Sentinel returned by :meth:`ResultCache.get` for absent/corrupt keys.
MISS = object()

#: Key-space version; bump on incompatible pickle layout changes.
#: "v2": checksummed envelope — pre-envelope entries address different
#: keys entirely instead of being mass-quarantined on first read.
CACHE_FORMAT = "repro-cache-v2"

#: First token of every entry's header line.
ENVELOPE_MAGIC = b"%repro-cache%"

#: Envelope layout version; a mismatch quarantines the entry.
ENVELOPE_VERSION = 1

#: Default cap on ``<cache_dir>/corrupt/`` entries (oldest pruned first),
#: so a flaky disk cannot grow the quarantine without bound.
QUARANTINE_LIMIT = 256


def prune_oldest(directory: Path, limit: int) -> int:
    """Delete the oldest files in ``directory`` beyond ``limit``.

    Best-effort (a file already gone, or undeletable, is skipped) and
    tolerant of concurrent pruners. Returns the number removed.
    """
    try:
        entries = [(path.stat().st_mtime, path.name, path)
                   for path in directory.iterdir() if path.is_file()]
    except OSError:
        return 0
    excess = len(entries) - limit
    if excess <= 0:
        return 0
    entries.sort()
    removed = 0
    for _, _, path in entries[:excess]:
        try:
            path.unlink(missing_ok=True)
            removed += 1
        except OSError:
            pass
    return removed


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-serializable canonical form.

    Supports the scalar types plus tuples/lists, string-keyed dicts
    (sorted), datetimes (ISO text) and enums (their value).

    Raises:
        EngineError: for types with no stable canonical form.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (datetime, date)):
        return value.isoformat()
    if isinstance(value, Enum):
        return ["enum", type(value).__name__, canonical(value.value)]
    if isinstance(value, (tuple, list)):
        return [canonical(item) for item in value]
    if isinstance(value, dict):
        out = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise EngineError(
                    f"cache-key dicts need string keys, got {key!r}")
            out[key] = canonical(value[key])
        return out
    raise EngineError(
        f"cannot canonicalize {type(value).__name__!r} for a cache key")


def fingerprint(*parts: Any) -> str:
    """A stable SHA-256 hex digest of the given content parts."""
    payload = json.dumps([CACHE_FORMAT, canonical(list(parts))],
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _envelope(payload: bytes, digest: str) -> bytes:
    header = b"%s %d %s\n" % (ENVELOPE_MAGIC, ENVELOPE_VERSION,
                              digest.encode("ascii"))
    return header + payload


def encode_entry(value: Any) -> bytes:
    """Serialize ``value`` into the checksummed envelope format."""
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return _envelope(payload, hashlib.sha256(payload).hexdigest())


def decode_entry(data: bytes) -> Any:
    """Verify and unpickle one envelope.

    Raises:
        EngineError: for a missing/garbled header, a version mismatch
            or a checksum failure — callers quarantine and recompute.
    """
    newline = data.find(b"\n")
    if newline < 0 or not data.startswith(ENVELOPE_MAGIC + b" "):
        raise EngineError("cache entry has no envelope header")
    fields = data[:newline].split(b" ")
    if len(fields) != 3:
        raise EngineError("cache entry header is garbled")
    try:
        version = int(fields[1])
    except ValueError:
        raise EngineError("cache entry version is not a number") \
            from None
    if version != ENVELOPE_VERSION:
        raise EngineError(
            f"cache entry envelope version {version} != "
            f"{ENVELOPE_VERSION}")
    payload = data[newline + 1:]
    if hashlib.sha256(payload).hexdigest().encode("ascii") != fields[2]:
        raise EngineError("cache entry checksum mismatch "
                          "(truncated or corrupt)")
    try:
        return pickle.loads(payload)
    except Exception as exc:
        # Checksum passed but the pickle is foreign/unloadable (e.g. a
        # class renamed between versions) — still a quarantine case.
        raise EngineError(f"cache entry failed to unpickle: {exc}") \
            from exc


class ResultCache:
    """A directory-backed store of pickled stage results.

    Args:
        root: cache directory; created lazily on first write.
        quarantine_limit: cap on files kept in ``<root>/corrupt/``;
            oldest entries beyond it are pruned at quarantine time.
            ``None`` disables pruning.

    Attributes:
        quarantined: corrupt entries moved to ``<root>/corrupt/`` by
            this instance (each one was served as a miss).
        pruned: quarantine files removed by the cap, oldest first.
        write_failures: stores refused by the filesystem (ENOSPC,
            read-only cache) — the run continues memory-only.
    """

    def __init__(self, root: str | Path,
                 quarantine_limit: int | None = QUARANTINE_LIMIT):
        self.root = Path(root)
        self.quarantine_limit = quarantine_limit
        self.quarantined = 0
        self.pruned = 0
        self.write_failures = 0
        self._deny_writes = False

    def _path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.pkl"

    @property
    def corrupt_dir(self) -> Path:
        """Where quarantined entries end up."""
        return self.root / "corrupt"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside, best-effort."""
        try:
            self.corrupt_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.corrupt_dir / path.name)
        except OSError:
            try:  # can't move: at least get it out of the read path
                path.unlink(missing_ok=True)
            except OSError:
                return  # read-only filesystem: nothing else to do
        self.quarantined += 1
        if self.quarantine_limit is not None:
            self.pruned += prune_oldest(self.corrupt_dir,
                                        self.quarantine_limit)

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`MISS`.

        Unreadable or corrupt entries count as misses and are moved to
        the quarantine directory — the cache is an accelerator, never
        a correctness dependency, and never a crash.
        """
        path = self._path(key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return MISS
        except OSError:  # unreadable (permissions, I/O error)
            return MISS
        try:
            return decode_entry(data)
        except EngineError:
            self._quarantine(path)
            return MISS

    def deny_writes(self) -> None:
        """Fault hook: refuse all further stores, as a full disk would."""
        self._deny_writes = True

    @property
    def degraded_writes(self) -> bool:
        """True once any store has been refused (ENOSPC / read-only)."""
        return self.write_failures > 0

    def put(self, key: str, value: Any) -> str | None:
        """Store ``value`` under ``key``; best-effort, atomic.

        Returns:
            The SHA-256 digest of the stored payload (truthy) when the
            entry was written; ``None`` when the filesystem refused —
            read-only or full cache dirs degrade to pass-through and
            ``write_failures`` counts the refusals.
        """
        if self._deny_writes:
            self.write_failures += 1
            return None
        path = self._path(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            payload = pickle.dumps(value,
                                   protocol=pickle.HIGHEST_PROTOCOL)
            digest = hashlib.sha256(payload).hexdigest()
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(_envelope(payload, digest))
            os.replace(tmp, path)
            return digest
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            self.write_failures += 1
            return None

    def corrupt_entry(self, key: str) -> bool:
        """Scribble over ``key``'s stored entry (fault injection).

        Returns:
            True when an entry existed and was overwritten. Used by
            the :class:`~repro.engine.faults.FaultPlan` harness and
            the corruption tests; a subsequent :meth:`get` must treat
            the entry as a miss and quarantine it.
        """
        path = self._path(key)
        if not path.is_file():
            return False
        try:
            path.write_bytes(b"\x00injected cache corruption\x00")
            return True
        except OSError:
            return False

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        """Number of stored entries (walks the directory)."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        return sum(1 for _ in objects.glob("*/*.pkl"))
