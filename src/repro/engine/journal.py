"""Append-only per-run completion journals under ``<cache_dir>/journal/``.

Every plan execution with a cache dir writes a journal file
``journal/<run_id>.jsonl`` recording, as they complete, the chunks of
work that became durable: which stage, which item ids, which cache keys
and result digests. The journal is what makes a run *restartable*: after
a SIGKILL, crash or Ctrl-C, ``--resume RUN_ID`` loads the journaled
chunks, serves them from the result cache, and executes only the
remainder — byte-identical to an uninterrupted run, because cache keys
and stage versions are untouched by resumption.

Records and durability:

- Each line is ``j1 <checksum> <payload-json>`` where the checksum is a
  16-hex-char BLAKE2b of the payload bytes; a torn or corrupted line is
  detected, reported and skipped rather than trusted.
- Lines are appended with a single ``write`` on an ``O_APPEND``
  descriptor (see :func:`repro.engine.lock.append_line` for why that is
  atomic). The journal has exactly one writer — the run that owns it —
  so no lock is needed.
- ``begin`` and ``end`` records are fsynced; ``chunk`` records are not
  (they sit in the page cache, which survives process death — the
  kill-mid-run tests rely on exactly this), keeping journal overhead
  well under the ≤5% budget.
- A journal whose file cannot be written (ENOSPC, read-only cache)
  degrades to memory-only: counters keep working, the run completes,
  and the degradation is surfaced as a warning instead of an abort.

Record types::

    {"type": "begin", "run_id": ..., "started": ..., "source": ...,
     "config": {...}, "resumed_from": ...}
    {"type": "chunk", "stage": ..., "items": [[pid, key, digest], ...]}
    {"type": "end", "status": "complete" | "interrupted",
     "chunks": N, "items": M}

A run with no ``end`` record was killed or crashed (status ``aborted``);
both ``aborted`` and ``interrupted`` runs are listed as resumable.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from repro.engine.lock import append_line
from repro.errors import EngineError

#: Subdirectory of the cache dir holding per-run journals.
JOURNAL_DIR = "journal"

#: Journal line format marker (bump on incompatible change).
JOURNAL_FORMAT = "j1"

#: Cap on journal files kept per cache dir; oldest are pruned at begin.
JOURNAL_LIMIT = 64

_ID_BYTES = 6


def new_run_id() -> str:
    """Mint a journal run id: short, unique, filename- and flag-safe.

    Run ids are operational metadata — they never feed cache keys or
    study output, so randomness here cannot perturb reproducibility.
    """
    return "r" + os.urandom(_ID_BYTES).hex()


def journal_dir(cache_dir: Path | str) -> Path:
    return Path(cache_dir) / JOURNAL_DIR


def journal_path(cache_dir: Path | str, run_id: str) -> Path:
    return journal_dir(cache_dir) / f"{run_id}.jsonl"


def _checksum(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=8).hexdigest()


def _encode(record: dict) -> bytes:
    payload = json.dumps(record, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return b"%s %s %s\n" % (JOURNAL_FORMAT.encode("ascii"),
                            _checksum(payload).encode("ascii"), payload)


def _decode(line: bytes) -> dict | None:
    """Parse one journal line; ``None`` for torn/corrupt/foreign lines."""
    parts = line.rstrip(b"\n").split(b" ", 2)
    if len(parts) != 3 or parts[0] != JOURNAL_FORMAT.encode("ascii"):
        return None
    digest, payload = parts[1], parts[2]
    if _checksum(payload).encode("ascii") != digest:
        return None
    try:
        record = json.loads(payload)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


class RunJournal:
    """Writer for one run's journal. Single-writer, append-only."""

    def __init__(self, path: Path, run_id: str):
        self.path = path
        self.run_id = run_id
        self.chunks = 0
        self.items = 0
        self._memory_only = False
        self._closed = False

    @classmethod
    def begin(cls, cache_dir: Path | str, run_id: str,
              source: str | None = None, config: dict | None = None,
              resumed_from: str | None = None) -> "RunJournal":
        """Open a new journal and write its fsynced ``begin`` record.

        Never raises for filesystem trouble: an unwritable journal dir
        produces a memory-only journal (counters work, nothing persists)
        so degraded storage slows nothing down and aborts nothing.
        """
        journal = cls(journal_path(cache_dir, run_id), run_id)
        started = datetime.now(timezone.utc).isoformat(timespec="seconds")
        record = {"type": "begin", "run_id": run_id, "started": started,
                  "source": source, "config": config or {},
                  "resumed_from": resumed_from}
        try:
            directory = journal_dir(cache_dir)
            directory.mkdir(parents=True, exist_ok=True)
            from repro.engine.cache import prune_oldest
            prune_oldest(directory, JOURNAL_LIMIT)
            journal._append(record, fsync=True)
        except OSError:
            journal._memory_only = True
        return journal

    def _append(self, record: dict, fsync: bool = False) -> None:
        if self._memory_only or self._closed:
            return
        try:
            append_line(self.path, _encode(record), fsync=fsync)
        except OSError:
            self._memory_only = True

    def chunk(self, stage: str, entries: list[tuple]) -> None:
        """Record one completed chunk: ``entries`` = (pid, key, digest)."""
        if not entries:
            return
        self.chunks += 1
        self.items += len(entries)
        self._append({"type": "chunk", "stage": stage,
                      "items": [list(entry) for entry in entries]})

    def mark(self, status: str) -> None:
        """Write the fsynced ``end`` record and close the journal."""
        self._append({"type": "end", "status": status,
                      "chunks": self.chunks, "items": self.items},
                     fsync=True)
        self._closed = True

    def deny_writes(self) -> None:
        """Fault hook: simulate ENOSPC — all further appends stay in memory."""
        self._memory_only = True

    @property
    def memory_only(self) -> bool:
        return self._memory_only


@dataclass
class JournalInfo:
    """Parsed view of one journal file."""

    run_id: str
    path: Path
    started: str | None = None
    source: str | None = None
    config: dict = field(default_factory=dict)
    resumed_from: str | None = None
    status: str = "aborted"
    chunks: list[dict] = field(default_factory=list)
    items: int = 0
    torn: int = 0

    @property
    def resumable(self) -> bool:
        return self.status != "complete"


def read_journal(cache_dir: Path | str, run_id: str) -> JournalInfo:
    """Parse one run's journal; raises :class:`EngineError` if absent."""
    path = journal_path(cache_dir, run_id)
    try:
        raw = path.read_bytes()
    except OSError:
        raise EngineError(
            f"no journal for run {run_id!r} under {journal_dir(cache_dir)}"
            " — see `repro-schema resume` for resumable runs")
    info = JournalInfo(run_id=run_id, path=path)
    for line in raw.splitlines(keepends=True):
        record = _decode(line)
        if record is None:
            info.torn += 1
            continue
        kind = record.get("type")
        if kind == "begin":
            info.started = record.get("started")
            info.source = record.get("source")
            info.config = record.get("config") or {}
            info.resumed_from = record.get("resumed_from")
        elif kind == "chunk":
            info.chunks.append(record)
            info.items += len(record.get("items") or ())
        elif kind == "end":
            info.status = record.get("status") or "complete"
    return info


def list_journals(cache_dir: Path | str) -> list[JournalInfo]:
    """All journals under the cache dir, oldest first."""
    directory = journal_dir(cache_dir)
    try:
        paths = sorted(directory.glob("*.jsonl"),
                       key=lambda p: (p.stat().st_mtime, p.name))
    except OSError:
        return []
    return [read_journal(cache_dir, path.stem) for path in paths]


def resumable_runs(cache_dir: Path | str) -> list[JournalInfo]:
    """Journals of runs that never completed (interrupted or aborted)."""
    return [info for info in list_journals(cache_dir) if info.resumable]


class JournalReplay:
    """Replay bookkeeping for ``--resume``: which journaled work came back.

    The replay set holds the cache keys the interrupted run journaled.
    During the resumed run, :meth:`mark` is called whenever a journaled
    key is served from the result cache; :attr:`chunks_replayed` then
    counts prior chunks whose every key returned without recompute —
    the acceptance counter for "replayed from the journal".
    """

    def __init__(self, info: JournalInfo):
        self.run_id = info.run_id
        self.source = info.source
        self._chunks: list[frozenset[str]] = []
        keys: set[str] = set()
        for chunk in info.chunks:
            chunk_keys = frozenset(
                entry[1] for entry in chunk.get("items") or ()
                if len(entry) > 1 and entry[1])
            if chunk_keys:
                self._chunks.append(chunk_keys)
                keys.update(chunk_keys)
        self._keys = keys
        self._hit: set[str] = set()

    def contains(self, key: str) -> bool:
        return key in self._keys

    def mark(self, key: str) -> None:
        self._hit.add(key)

    @property
    def items_replayed(self) -> int:
        return len(self._hit)

    @property
    def chunks_replayed(self) -> int:
        return sum(1 for chunk in self._chunks if chunk <= self._hit)

    def verify_source(self, source: str | None) -> None:
        """Refuse to resume against a visibly different source."""
        if self.source and source and self.source != source:
            raise EngineError(
                f"cannot resume run {self.run_id}: it studied source "
                f"{self.source!r} but this invocation targets {source!r}")


def load_replay(cache_dir: Path | str, run_id: str) -> JournalReplay:
    """Load the replay set for ``--resume RUN_ID``."""
    return JournalReplay(read_journal(cache_dir, run_id))
