"""The paper's study expressed as a declarative stage DAG.

Two plans are built here:

* the **records plan** — one :class:`~repro.engine.stage.MapStage`
  turning each project (or external history) into a classified
  :class:`~repro.analysis.records.StudyRecord`: history → profile →
  labels → classification. Embarrassingly parallel and content-cached.
* the **analysis plan** — the corpus-level stages of the paper
  (Tables 1/2, §3.4, Fig. 2 correlations, the Fig. 5 tree, §5.2
  centroids, Fig. 6 coverage, Fig. 7 prediction, §6.1 activity, §6.3
  change mix, §3.4.1 normality, strict agreement) assembled into one
  :class:`~repro.study.pipeline.StudyResults` bundle.

All stage bodies are module-level functions so the process backend can
pickle them by reference.
"""

from __future__ import annotations

import copy
import dataclasses
import time
from typing import Any, Iterable, Sequence

from repro.analysis.activity_relation import compute_activity_relation
from repro.analysis.change_mix import compute_change_mix
from repro.analysis.coverage import agm_bucket, compute_coverage
from repro.analysis.normality import compute_normality
from repro.analysis.prediction import compute_prediction
from repro.analysis.records import StudyRecord, measures_of
from repro.analysis.stats_tables import (
    compute_section34_stats,
    compute_table1,
)
from repro.engine.cache import fingerprint
from repro.engine.config import StudyConfig
from repro.engine.executor import ExecutionReport, execute_plan
from repro.engine.faults import ProjectFailure
from repro.engine.stage import MapStage, Stage, StudyPlan
from repro.errors import AnalysisError
from repro.history.repository import SchemaHistory
from repro.labels.quantization import LabelScheme, label_profile
from repro.metrics.profile import ProjectProfile
from repro.mining.centroids import centroid_report
from repro.mining.correlation import spearman_matrix
from repro.mining.decision_tree import DecisionTree
from repro.patterns.classifier import (
    ClassificationResult,
    classify,
    classify_with_tolerance,
)
from repro.patterns.exceptions import exception_report
from repro.patterns.taxonomy import Pattern

#: Bump when the history → record computation changes observably; this
#: invalidates every cached StudyRecord (the cache key mixes it in).
#: "2": columnar ChangeBreakdown — cached record pickles changed shape.
RECORDS_STAGE_VERSION = "2"


# ----------------------------------------------------------------------
# per-project map stage


def corpus_record(project, scheme: LabelScheme) -> StudyRecord:
    """Measure, label and strictly check one generated project.

    The assigned pattern is the generator's ground truth — the synthetic
    counterpart of the paper's manual annotation; the exception flag is
    recomputed from the formal definitions.
    """
    profile = ProjectProfile.from_history(project.history,
                                          source=project.source)
    labeled = label_profile(profile, scheme)
    strict = classify(labeled)
    return StudyRecord(
        name=project.name,
        pattern=project.intended_pattern,
        labeled=labeled,
        is_exception=strict is not project.intended_pattern,
    )


def history_record(history: SchemaHistory,
                   scheme: LabelScheme) -> StudyRecord:
    """Measure, label and *blindly* classify one external history."""
    profile = ProjectProfile.from_history(history)
    labeled = label_profile(profile, scheme)
    result = classify_with_tolerance(labeled)
    return StudyRecord(
        name=history.project_name,
        pattern=result.pattern,
        labeled=labeled,
        is_exception=result.is_exception,
    )


def history_fingerprint_parts(history: SchemaHistory) -> list:
    """The content of a history that determines its measurements."""
    return [
        history.project_name,
        history.project_start,
        history.project_end,
        history.dialect.traits.name,
        history.incremental,
        [(c.timestamp, c.ddl_text) for c in history.commits],
    ]


def corpus_record_key(project, extras: tuple, version: str) -> str:
    """Content hash of one generated project's record computation."""
    (scheme,) = extras
    return fingerprint(
        "corpus-record", version, scheme.to_dict(),
        project.name, project.intended_pattern,
        project.is_exception, project.exception_kind,
        history_fingerprint_parts(project.history),
        tuple(project.source.monthly) if project.source else None,
    )


def history_record_key(history: SchemaHistory, extras: tuple,
                       version: str) -> str:
    """Content hash of one external history's record computation."""
    (scheme,) = extras
    return fingerprint("history-record", version, scheme.to_dict(),
                       history_fingerprint_parts(history))


def bare_history(history: SchemaHistory | None) -> SchemaHistory | None:
    """A shallow copy of ``history`` without its parsed-version cache."""
    if history is None or history._versions is None:
        return history
    bare = copy.copy(history)
    bare._versions = None
    return bare


def strip_project(project):
    """A copy of a generated project with a bare history (pre-pickle)."""
    bare = bare_history(project.history)
    if bare is project.history:
        return project
    return dataclasses.replace(project, history=bare)


def strip_record(record: StudyRecord) -> StudyRecord:
    """Shed the parsed-version cache before a record is pickled.

    The materialized :class:`SchemaVersion` list dominates a record's
    pickle size yet is a pure derivation of the commits; consumers
    rebuild it lazily. The original record is left untouched.
    """
    bare = bare_history(record.profile.history)
    if bare is record.profile.history:
        return record
    profile = dataclasses.replace(record.profile, history=bare)
    labeled = dataclasses.replace(record.labeled, profile=profile)
    return dataclasses.replace(record, labeled=labeled)


def source_record(handle, source, scheme: LabelScheme) -> StudyRecord:
    """Load one project from its source and turn it into a record.

    This is the worker side of the handle-based fan-out: the engine
    ships only ``(handle, source)`` — the source being a lightweight
    path-or-spec object — and the expensive materialization
    (generation, file parsing, git extraction) happens here, in
    whichever process runs the item. Dispatch follows ``source.mode``:
    ``"corpus"`` loads carry ground truth, ``"histories"`` loads are
    classified blindly.
    """
    loaded = source.load(handle.pid)
    if source.mode == "corpus":
        return corpus_record(loaded, scheme)
    return history_record(loaded, scheme)


def source_record_key(handle, extras: tuple, version: str) -> str:
    """Content hash of one handle's record computation.

    The handle's fingerprint stands in for the project content, so the
    key is computable without loading the project — the point of the
    lazy path: a warm cache never materializes anything.
    """
    (source, scheme) = extras
    return fingerprint("source-record", version, source.mode,
                       scheme.to_dict(), handle.pid, handle.fingerprint)


# ----------------------------------------------------------------------
# corpus-level analysis stages


def _stage_table1(records):
    return compute_table1(records)


def _stage_stats34(records):
    return compute_section34_stats(records)


def _stage_table2(records):
    # Table 2 needs (labeled, result)-style pairs; rebuild results from
    # the records' assignment.
    return exception_report(
        (r.labeled, ClassificationResult(pattern=r.pattern,
                                         is_exception=r.is_exception))
        for r in records)


def _stage_correlations(records):
    return spearman_matrix(measures_of(records))


def tree_sample(record: StudyRecord) -> dict[str, str]:
    """The four Fig.-5 features of one record."""
    labeled = record.labeled
    return {
        "birth_timing": labeled.birth_timing.value,
        "top_band_timing": labeled.top_band_timing.value,
        "interval_birth_to_top": labeled.interval_birth_to_top.value,
        "agm_bucket": agm_bucket(labeled.active_growth_months),
    }


def _stage_tree_features(records):
    samples = [tree_sample(r) for r in records]
    labels = [r.pattern.value for r in records]
    return samples, labels


def _stage_tree(features):
    samples, labels = features
    return DecisionTree(max_depth=4).fit(samples, labels)


def _stage_tree_misclassified(tree, features, records):
    samples, labels = features
    return tuple(records[i].name
                 for i in tree.training_errors(samples, labels))


def _stage_centroids(records):
    vector_groups: dict[str, list] = {}
    for record in records:
        if record.pattern is Pattern.UNCLASSIFIED:
            continue
        vector_groups.setdefault(record.pattern.value, []).append(
            record.profile.vector)
    return centroid_report(vector_groups)


def _stage_coverage(records):
    return compute_coverage(records)


def _stage_prediction(records):
    return compute_prediction(records)


def _stage_activity(records):
    return compute_activity_relation(records)


def _stage_change_mix(records):
    return compute_change_mix(records)


def _stage_normality(records):
    return compute_normality(records)


def _stage_strict_agreement(records):
    return sum(1 for r in records if classify(r.labeled) is r.pattern)


def _stage_results(records, table1, stats34, table2, correlations, tree,
                   tree_misclassified, centroids, coverage, prediction,
                   activity, change_mix, normality, strict_agreement):
    from repro.study.pipeline import StudyResults
    return StudyResults(
        records=tuple(records),
        table1=table1,
        stats34=stats34,
        table2=table2,
        correlations=correlations,
        tree=tree,
        tree_misclassified=tree_misclassified,
        centroids=centroids,
        coverage=coverage,
        prediction=prediction,
        activity=activity,
        change_mix=change_mix,
        normality=normality,
        strict_agreement=strict_agreement,
    )


def _analysis_stages() -> list[Stage]:
    """The corpus-level stages of :func:`run_study`, as a DAG."""
    on_records = [
        ("table1", _stage_table1),
        ("stats34", _stage_stats34),
        ("table2", _stage_table2),
        ("correlations", _stage_correlations),
        ("tree_features", _stage_tree_features),
        ("centroids", _stage_centroids),
        ("coverage", _stage_coverage),
        ("prediction", _stage_prediction),
        ("activity", _stage_activity),
        ("change_mix", _stage_change_mix),
        ("normality", _stage_normality),
        ("strict_agreement", _stage_strict_agreement),
    ]
    stages = [Stage(name=name, fn=fn, inputs=("records",))
              for name, fn in on_records]
    stages.append(Stage(name="tree", fn=_stage_tree,
                        inputs=("tree_features",)))
    stages.append(Stage(name="tree_misclassified",
                        fn=_stage_tree_misclassified,
                        inputs=("tree", "tree_features", "records")))
    stages.append(Stage(
        name="results", fn=_stage_results,
        inputs=("records", "table1", "stats34", "table2", "correlations",
                "tree", "tree_misclassified", "centroids", "coverage",
                "prediction", "activity", "change_mix", "normality",
                "strict_agreement")))
    return stages


# ----------------------------------------------------------------------
# plan builders


def records_map_stage(source: str = "corpus") -> MapStage:
    """The per-project map stage.

    Args:
        source: ``"corpus"`` for generated projects (ground-truth
            pattern), ``"histories"`` for external histories (blind,
            tolerant classification).
    """
    if source == "corpus":
        return MapStage(name="records", fn=corpus_record,
                        inputs=("projects", "scheme"),
                        version=RECORDS_STAGE_VERSION,
                        cache_key_fn=corpus_record_key,
                        transport_fn=strip_record,
                        item_transport_fn=strip_project)
    if source == "histories":
        return MapStage(name="records", fn=history_record,
                        inputs=("projects", "scheme"),
                        version=RECORDS_STAGE_VERSION,
                        cache_key_fn=history_record_key,
                        transport_fn=strip_record,
                        item_transport_fn=bare_history)
    raise AnalysisError(f"unknown records source {source!r}")


def build_records_plan(source: str = "corpus") -> StudyPlan:
    """A plan computing only the classified study records."""
    return StudyPlan([records_map_stage(source)])


def build_analysis_plan() -> StudyPlan:
    """The corpus-level analyses, given precomputed records."""
    return StudyPlan(_analysis_stages())


def build_study_plan(source: str = "corpus") -> StudyPlan:
    """The full study DAG: per-project map + every paper analysis."""
    return StudyPlan([records_map_stage(source), *_analysis_stages()])


def source_map_stage() -> MapStage:
    """The per-project map stage over source handles.

    Unlike :func:`records_map_stage`, the mapped items are
    :class:`~repro.sources.base.SourceHandle`\\ s — (pid, fingerprint)
    pairs a few dozen bytes each — and the source object travels to
    workers once as a broadcast extra. No ``item_transport_fn`` is
    needed: there is nothing to strip from a handle.
    """
    return MapStage(name="records", fn=source_record,
                    inputs=("handles", "source", "scheme"),
                    version=RECORDS_STAGE_VERSION,
                    cache_key_fn=source_record_key,
                    transport_fn=strip_record)


def build_source_records_plan() -> StudyPlan:
    """A plan computing only the records, from source handles."""
    return StudyPlan([source_map_stage()])


def build_source_study_plan() -> StudyPlan:
    """The full study DAG driven by source handles."""
    return StudyPlan([source_map_stage(), *_analysis_stages()])


# ----------------------------------------------------------------------
# high-level entry points


def compute_records(projects: Iterable[Any],
                    config: StudyConfig | None = None,
                    source: str = "corpus",
                    session=None
                    ) -> tuple[list[StudyRecord], ExecutionReport]:
    """Run the per-project map stage over ``projects``."""
    config = config or StudyConfig()
    results, report = execute_plan(
        build_records_plan(source),
        {"projects": list(projects), "scheme": config.scheme},
        config, session=session)
    return list(results["records"]), report


def run_analyses(records: Sequence[StudyRecord],
                 config: StudyConfig | None = None,
                 session=None):
    """Run every corpus-level analysis over classified records.

    Raises:
        AnalysisError: for an empty record list.
    """
    if not records:
        raise AnalysisError("cannot run the study on zero records")
    results, _ = execute_plan(build_analysis_plan(),
                              {"records": tuple(records)}, config,
                              session=session)
    return results["results"]


def execute_study(projects: Iterable[Any],
                  config: StudyConfig | None = None,
                  source: str = "corpus",
                  session=None):
    """Run the whole study DAG: map + analyses, one plan execution.

    Returns:
        ``(StudyResults, ExecutionReport)``.

    Raises:
        AnalysisError: for an empty project list.
    """
    projects = list(projects)
    if not projects:
        raise AnalysisError("cannot run the study on zero records")
    config = config or StudyConfig()
    results, report = execute_plan(
        build_study_plan(source),
        {"projects": projects, "scheme": config.scheme},
        config, session=session)
    return results["results"], report


# ----------------------------------------------------------------------
# source-driven entry points


def source_handles(source) -> list:
    """One :class:`SourceHandle` per project of ``source``.

    Listing and fingerprinting stay in the parent process (they are
    cheap by protocol contract); loading does not happen here.
    """
    handles, _ = safe_source_handles(source, None)
    return handles


def safe_source_handles(source, policy=None
                        ) -> tuple[list, "list[ProjectFailure]"]:
    """Handles plus the projects whose fingerprinting failed.

    Fingerprinting runs in the parent, before the map stage — a git
    invocation can fail right here. Under a capturing error policy the
    failing project is quarantined (after the policy's retry budget,
    for transient errors) instead of killing the listing; with no
    policy, or fail-fast, the exception propagates unchanged.
    """
    from repro.sources.base import SourceHandle
    handles: list = []
    failures: list[ProjectFailure] = []
    for pid in source.project_ids():
        attempt = 0
        while True:
            attempt += 1
            try:
                handles.append(SourceHandle(
                    pid=pid, fingerprint=source.fingerprint(pid)))
                break
            except Exception as exc:
                if policy is None or not policy.captures:
                    raise
                if attempt < policy.attempts_for(exc):
                    delay = policy.backoff_seconds(pid, attempt)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                failures.append(ProjectFailure.from_exception(
                    pid, "handles", exc, attempts=attempt))
                break
    return handles, failures


def _legacy_inputs(source) -> list:
    """Every project of a non-lightweight source, loaded eagerly."""
    return [source.load(pid) for pid in source.project_ids()]


def _handle_feed(source, config: StudyConfig, session):
    """The map-stage feed of a lightweight source.

    Returns ``(feed, stream)``: the feed is the lazily enumerated
    :class:`~repro.engine.stream.HandleStream` itself (the executor
    pulls it under its bounded window), or — under ``config.sample`` —
    the deterministic sampled handle list drawn from it. The stream
    is returned alongside because its quarantined fingerprint
    failures are only complete once the feed has been consumed.
    """
    from repro.engine.stream import HandleStream, sample_handles
    stream = HandleStream(source, config.error_policy, session)
    if config.sample is None:
        return stream, stream
    feed = sample_handles(stream, config.sample, config.seed,
                          config.stratified, source=source)
    return feed, stream


def compute_records_from_source(source,
                                config: StudyConfig | None = None,
                                session=None
                                ) -> tuple[list[StudyRecord],
                                           ExecutionReport]:
    """Run the per-project map stage over a history source.

    Lightweight sources fan out as a streamed handle feed (workers
    load; the parent never materializes the handle list unless
    sampling); others fall back to the item-based plan — same
    results, and the legacy cache keys keep working for callers that
    adapt in-memory objects.
    """
    config = config or StudyConfig()
    if not source.lightweight:
        return compute_records(_legacy_inputs(source), config,
                               source.mode, session=session)
    feed, stream = _handle_feed(source, config, session)
    results, report = execute_plan(
        build_source_records_plan(),
        {"handles": feed, "source": source,
         "scheme": config.scheme},
        config, session=session)
    report.failures[:0] = stream.failures
    return list(results["records"]), report


def execute_study_from_source(source,
                              config: StudyConfig | None = None,
                              session=None):
    """Run the whole study DAG over a history source.

    Returns:
        ``(StudyResults, ExecutionReport)``.

    Raises:
        AnalysisError: for a source with zero projects.
    """
    config = config or StudyConfig()
    if not source.lightweight:
        return execute_study(_legacy_inputs(source), config,
                             source.mode, session=session)
    from repro.sources.base import source_count
    if source_count(source) == 0:
        raise AnalysisError("cannot run the study on zero records")
    feed, stream = _handle_feed(source, config, session)
    results, report = execute_plan(
        build_source_study_plan(),
        {"handles": feed, "source": source, "scheme": config.scheme},
        config, session=session)
    report.failures[:0] = stream.failures
    return results["results"], report
