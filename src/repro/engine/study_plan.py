"""The paper's study expressed as a declarative stage DAG.

Two plans are built here:

* the **records plan** — one :class:`~repro.engine.stage.MapStage`
  turning each project (or external history) into a classified
  :class:`~repro.analysis.records.StudyRecord`: history → profile →
  labels → classification. Embarrassingly parallel and content-cached.
* the **analysis plan** — the corpus-level stages of the paper
  (Tables 1/2, §3.4, Fig. 2 correlations, the Fig. 5 tree, §5.2
  centroids, Fig. 6 coverage, Fig. 7 prediction, §6.1 activity, §6.3
  change mix, §3.4.1 normality, strict agreement) assembled into one
  :class:`~repro.study.pipeline.StudyResults` bundle.

The analyses run in two interchangeable backends. The default
**columnar** backend computes every stage as a fused kernel over the
:class:`~repro.analysis.table.RecordTable` — the flat column pack the
map stage assembles incrementally at harvest time — with Table 1, the
§3.4 statistics and strict agreement fused into one pass over the
label columns. The **per-record** backend (``columnar=False``) is the
original object-walking implementation, kept verbatim as the
differential oracle: both produce byte-identical
:class:`StudyResults`, and the golden/differential tests hold them to
it.

All stage bodies are module-level functions so the process backend can
pickle them by reference.
"""

from __future__ import annotations

import copy
import dataclasses
import statistics
import time
from typing import Any, Iterable, NamedTuple, Sequence

from repro.analysis.activity_relation import (
    ActivityRelationResult,
    ActivityRow,
    compute_activity_relation,
)
from repro.analysis.change_mix import (
    TABLE_GRANULE_INDEXES,
    ChangeMixResult,
    ChangeMixRow,
    compute_change_mix,
)
from repro.analysis.coverage import (
    CoverageResult,
    agm_bucket,
    compute_coverage,
)
from repro.analysis.normality import compute_normality, normality_of
from repro.analysis.prediction import (
    PredictionResult,
    birth_bucket,
    compute_prediction,
)
from repro.analysis.records import StudyRecord, measures_of
from repro.analysis.stats_tables import (
    TABLE1_ROWS,
    Section34Stats,
    Table1Result,
    compute_section34_stats,
    compute_table1,
)
from repro.analysis.table import (
    LABEL_INDEX,
    LABEL_VALUES,
    PATTERN_ORDER,
    PATTERN_VALUES,
    REAL_POSITION,
    UNCLASSIFIED_INDEX,
    RecordTable,
    pack_record,
)
from repro.diff.changes import KIND_ORDER, N_KINDS
from repro.engine.cache import fingerprint
from repro.engine.config import StudyConfig
from repro.engine.executor import ExecutionReport, execute_plan
from repro.engine.faults import ProjectFailure
from repro.engine.stage import MapStage, Stage, StudyPlan
from repro.errors import AnalysisError
from repro.history.repository import SchemaHistory
from repro.labels.classes import BirthVolumeClass
from repro.labels.quantization import LabelScheme, label_profile
from repro.metrics.profile import ProjectProfile
from repro.mining.centroids import centroid_report
from repro.mining.correlation import spearman_matrix, spearman_matrix_ranked
from repro.mining.decision_tree import DecisionTree
from repro.patterns.classifier import (
    ClassificationResult,
    classify,
    classify_with_tolerance,
)
from repro.patterns.exceptions import ExceptionReport, exception_report
from repro.patterns.taxonomy import Pattern, REAL_PATTERNS

#: Bump when the history → record computation changes observably; this
#: invalidates every cached StudyRecord (the cache key mixes it in).
#: "2": columnar ChangeBreakdown — cached record pickles changed shape.
RECORDS_STAGE_VERSION = "2"


# ----------------------------------------------------------------------
# per-project map stage


def corpus_record(project, scheme: LabelScheme) -> StudyRecord:
    """Measure, label and strictly check one generated project.

    The assigned pattern is the generator's ground truth — the synthetic
    counterpart of the paper's manual annotation; the exception flag is
    recomputed from the formal definitions.
    """
    profile = ProjectProfile.from_history(project.history,
                                          source=project.source)
    labeled = label_profile(profile, scheme)
    strict = classify(labeled)
    return StudyRecord(
        name=project.name,
        pattern=project.intended_pattern,
        labeled=labeled,
        is_exception=strict is not project.intended_pattern,
    )


def history_record(history: SchemaHistory,
                   scheme: LabelScheme) -> StudyRecord:
    """Measure, label and *blindly* classify one external history."""
    profile = ProjectProfile.from_history(history)
    labeled = label_profile(profile, scheme)
    result = classify_with_tolerance(labeled)
    return StudyRecord(
        name=history.project_name,
        pattern=result.pattern,
        labeled=labeled,
        is_exception=result.is_exception,
    )


def history_fingerprint_parts(history: SchemaHistory) -> list:
    """The content of a history that determines its measurements."""
    return [
        history.project_name,
        history.project_start,
        history.project_end,
        history.dialect.traits.name,
        history.incremental,
        [(c.timestamp, c.ddl_text) for c in history.commits],
    ]


def corpus_record_key(project, extras: tuple, version: str) -> str:
    """Content hash of one generated project's record computation."""
    (scheme,) = extras
    return fingerprint(
        "corpus-record", version, scheme.to_dict(),
        project.name, project.intended_pattern,
        project.is_exception, project.exception_kind,
        history_fingerprint_parts(project.history),
        tuple(project.source.monthly) if project.source else None,
    )


def history_record_key(history: SchemaHistory, extras: tuple,
                       version: str) -> str:
    """Content hash of one external history's record computation."""
    (scheme,) = extras
    return fingerprint("history-record", version, scheme.to_dict(),
                       history_fingerprint_parts(history))


def bare_history(history: SchemaHistory | None) -> SchemaHistory | None:
    """A shallow copy of ``history`` without its parsed-version cache."""
    if history is None or history._versions is None:
        return history
    bare = copy.copy(history)
    bare._versions = None
    return bare


def strip_project(project):
    """A copy of a generated project with a bare history (pre-pickle)."""
    bare = bare_history(project.history)
    if bare is project.history:
        return project
    return dataclasses.replace(project, history=bare)


def strip_record(record: StudyRecord) -> StudyRecord:
    """Shed the parsed-version cache before a record is pickled.

    The materialized :class:`SchemaVersion` list dominates a record's
    pickle size yet is a pure derivation of the commits; consumers
    rebuild it lazily. The original record is left untouched.
    """
    bare = bare_history(record.profile.history)
    if bare is record.profile.history:
        return record
    profile = dataclasses.replace(record.profile, history=bare)
    labeled = dataclasses.replace(record.labeled, profile=profile)
    return dataclasses.replace(record, labeled=labeled)


def source_record(handle, source, scheme: LabelScheme) -> StudyRecord:
    """Load one project from its source and turn it into a record.

    This is the worker side of the handle-based fan-out: the engine
    ships only ``(handle, source)`` — the source being a lightweight
    path-or-spec object — and the expensive materialization
    (generation, file parsing, git extraction) happens here, in
    whichever process runs the item. Dispatch follows ``source.mode``:
    ``"corpus"`` loads carry ground truth, ``"histories"`` loads are
    classified blindly.
    """
    loaded = source.load(handle.pid)
    if source.mode == "corpus":
        return corpus_record(loaded, scheme)
    return history_record(loaded, scheme)


def source_record_key(handle, extras: tuple, version: str) -> str:
    """Content hash of one handle's record computation.

    The handle's fingerprint stands in for the project content, so the
    key is computable without loading the project — the point of the
    lazy path: a warm cache never materializes anything. The delta
    plan's extra broadcast input (the checkpoint store) deliberately
    does not participate: checkpoints accelerate the compute, they
    never change its result, so delta and non-delta runs share cache
    entries.
    """
    source, scheme = extras[0], extras[1]
    return fingerprint("source-record", version, source.mode,
                       scheme.to_dict(), handle.pid, handle.fingerprint)


def source_record_delta(handle, source, scheme: LabelScheme,
                        store) -> StudyRecord:
    """Delta-aware :func:`source_record`: serve appends in O(K).

    With a checkpoint store, the project's version chain is compared
    against its last checkpoint: an unchanged-prefix chain routes the
    suffix through the delta kernel (parse only the K new versions,
    extend the checkpointed series and snapshot); anything else — no
    checkpoint, rewritten history, unusable state — computes in full
    exactly as :func:`source_record`, then writes a fresh checkpoint
    so the *next* growth is O(K). Results are byte-identical across
    every path; projects whose fingerprint did not move at all are
    result-cache hits and never reach this function.
    """
    from repro.engine import delta as delta_mod
    if store is None:
        return source_record(handle, source, scheme)
    if source.mode == "corpus":
        loaded = source.load(handle.pid)
        history = loaded.history
        chain = delta_mod.commit_chain(history.commits)
        served = delta_mod.serve_corpus_delta(store, handle.pid,
                                              loaded, chain, scheme)
        if served is not None:
            return served
        record = corpus_record(loaded, scheme)
        checkpoint = delta_mod.capture_checkpoint(
            handle.pid, "corpus", history, record, chain, scheme)
        if checkpoint is not None:
            store.save(checkpoint)
        return record
    chain = source.version_chain(handle.pid)
    served = delta_mod.serve_history_delta(store, handle.pid, source,
                                           chain, scheme)
    if served is not None:
        return served
    history = source.load(handle.pid)
    record = history_record(history, scheme)
    checkpoint = delta_mod.capture_checkpoint(
        handle.pid, "histories", history, record, chain, scheme)
    if checkpoint is not None:
        store.save(checkpoint)
    return record


# ----------------------------------------------------------------------
# corpus-level analysis stages — per-record backend (the differential
# oracles; the fused columnar kernels below must match them byte for
# byte)


def _stage_table1(records):
    return compute_table1(records)


def _stage_stats34(records):
    return compute_section34_stats(records)


def _stage_table2(records):
    # Table 2 needs (labeled, result)-style pairs; rebuild results from
    # the records' assignment.
    return exception_report(
        (r.labeled, ClassificationResult(pattern=r.pattern,
                                         is_exception=r.is_exception))
        for r in records)


def _stage_correlations(records):
    return spearman_matrix(measures_of(records))


def tree_sample(record: StudyRecord) -> dict[str, str]:
    """The four Fig.-5 features of one record."""
    labeled = record.labeled
    return {
        "birth_timing": labeled.birth_timing.value,
        "top_band_timing": labeled.top_band_timing.value,
        "interval_birth_to_top": labeled.interval_birth_to_top.value,
        "agm_bucket": agm_bucket(labeled.active_growth_months),
    }


def _stage_tree_features(records):
    samples = [tree_sample(r) for r in records]
    labels = [r.pattern.value for r in records]
    return samples, labels


def _stage_tree(features):
    samples, labels = features
    return DecisionTree(max_depth=4).fit(samples, labels)


def _stage_tree_misclassified(tree, features, records):
    samples, labels = features
    return tuple(records[i].name
                 for i in tree.training_errors(samples, labels))


def _stage_centroids(records):
    vector_groups: dict[str, list] = {}
    for record in records:
        if record.pattern is Pattern.UNCLASSIFIED:
            continue
        vector_groups.setdefault(record.pattern.value, []).append(
            record.profile.vector)
    return centroid_report(vector_groups)


def _stage_coverage(records):
    return compute_coverage(records)


def _stage_prediction(records):
    return compute_prediction(records)


def _stage_activity(records):
    return compute_activity_relation(records)


def _stage_change_mix(records):
    return compute_change_mix(records)


def _stage_normality(records):
    return compute_normality(records)


def _stage_strict_agreement(records):
    # Oracle form: re-classifies every record from scratch. The fused
    # kernel reads the carried is_exception flag instead (agreement and
    # the exception flag are complementary by construction).
    return sum(1 for r in records if classify(r.labeled) is r.pattern)


# ----------------------------------------------------------------------
# corpus-level analysis stages — fused columnar kernels over the
# RecordTable (the default backend)


#: Dense birth-volume label indexes the §3.4 kernel compares against.
_BV_HIGH = LABEL_INDEX[0][BirthVolumeClass.HIGH]
_BV_FULL = LABEL_INDEX[0][BirthVolumeClass.FULL]


def _stage_pack_table(records) -> RecordTable:
    """Pack precomputed records (analysis-only plans; the full study
    plans get the table from the map stage's harvest-time pack)."""
    return RecordTable.from_records(records)


class _CoreStats(NamedTuple):
    """The fused Table-1 + §3.4 + strict-agreement bundle."""

    table1: Table1Result
    stats34: Section34Stats
    strict_agreement: int


def _stage_core_stats(table: RecordTable) -> _CoreStats:
    """One pass over the label/measure columns for three stages.

    Table 1 tallies the seven dense label-index columns;
    the §3.4 statistics read the measure, landmark and label columns;
    strict agreement falls out of the is_exception column, because the
    record builders set the flag exactly when the strict classification
    disagrees with the assigned pattern — no re-classification pass.
    """
    total = len(table)
    if not total:
        raise AnalysisError("empty corpus")
    rows: dict[str, dict[str, int]] = {}
    for (key, _, _), values, column in zip(TABLE1_ROWS, LABEL_VALUES,
                                           table.labels):
        counts = [0] * len(values)
        for index in column:
            counts[index] += 1
        rows[key] = dict(zip(values, counts))
    birth_pct = table.measures[1]
    top_pct = table.measures[2]
    interval_pct = table.measures[3]
    agm = table.measures[5]
    birth_volume = table.labels[0]
    stats34 = Section34Stats(
        total=total,
        born_at_v0=sum(1 for m in table.birth_month if m == 0),
        born_first_10pct=sum(1 for v in birth_pct if v <= 0.10),
        born_first_25pct=sum(1 for v in birth_pct if v <= 0.25),
        top_attained_first_25pct=sum(1 for v in top_pct if v <= 0.25),
        high_activity_at_birth=sum(
            1 for i in birth_volume if i >= _BV_HIGH),
        full_activity_at_birth=sum(
            1 for i in birth_volume if i == _BV_FULL),
        vault_share=sum(table.has_vault) / total,
        zero_active_growth=sum(1 for v in agm if v == 0),
        at_most_one_active_growth=sum(1 for v in agm if v <= 1),
        interval_birth_top_under_10pct=sum(
            1 for v in interval_pct if v < 0.10),
        interval_birth_top_zero=sum(
            1 for m in table.interval_birth_to_top_months if m == 0),
    )
    agreement = total - sum(table.is_exception)
    return _CoreStats(table1=Table1Result(rows=rows, total=total),
                      stats34=stats34, strict_agreement=agreement)


def _stage_core_table1(core: _CoreStats) -> Table1Result:
    return core.table1


def _stage_core_stats34(core: _CoreStats) -> Section34Stats:
    return core.stats34


def _stage_core_agreement(core: _CoreStats) -> int:
    return core.strict_agreement


def _stage_table2_table(table: RecordTable) -> ExceptionReport:
    # Overlaps stay 0 by construction: the definitions are disjoint
    # (the oracle's count_strict_matches > 1 branch never fires).
    population = [0] * len(REAL_PATTERNS)
    exceptions = [0] * len(REAL_PATTERNS)
    unclassified = 0
    for pattern, is_exception in zip(table.pattern, table.is_exception):
        position = REAL_POSITION.get(pattern)
        if position is None:
            unclassified += 1
            continue
        population[position] += 1
        if is_exception:
            exceptions[position] += 1
    rows = tuple((pattern, population[k], exceptions[k], 0)
                 for k, pattern in enumerate(REAL_PATTERNS))
    return ExceptionReport(rows=rows, unclassified=unclassified)


def _stage_correlations_table(table: RecordTable):
    return spearman_matrix_ranked(table.measure_map())


def _stage_tree_features_table(table: RecordTable):
    birth_values = LABEL_VALUES[1]
    top_values = LABEL_VALUES[2]
    interval_values = LABEL_VALUES[3]
    samples = [
        {
            "birth_timing": birth_values[table.labels[1][i]],
            "top_band_timing": top_values[table.labels[2][i]],
            "interval_birth_to_top": interval_values[table.labels[3][i]],
            "agm_bucket": agm_bucket(table.active_growth_months[i]),
        }
        for i in range(len(table))
    ]
    labels = [PATTERN_VALUES[p] for p in table.pattern]
    return samples, labels


def _stage_tree_misclassified_table(tree, features, table: RecordTable):
    samples, labels = features
    return tuple(table.names[i]
                 for i in tree.training_errors(samples, labels))


def _stage_centroids_table(table: RecordTable):
    vector_groups: dict[str, list] = {}
    for index, pattern in enumerate(table.pattern):
        if pattern == UNCLASSIFIED_INDEX:
            continue
        vector_groups.setdefault(PATTERN_VALUES[pattern], []).append(
            table.vectors[index])
    return centroid_report(vector_groups)


def _stage_coverage_table(table: RecordTable) -> CoverageResult:
    if not len(table):
        raise AnalysisError("empty corpus")
    birth_values = LABEL_VALUES[1]
    top_values = LABEL_VALUES[2]
    interval_values = LABEL_VALUES[3]
    cells: dict[tuple, dict[Pattern, int]] = {}
    for i in range(len(table)):
        cell = (
            birth_values[table.labels[1][i]],
            top_values[table.labels[2][i]],
            interval_values[table.labels[3][i]],
            agm_bucket(table.active_growth_months[i]),
        )
        bucket = cells.setdefault(cell, {})
        pattern = PATTERN_ORDER[table.pattern[i]]
        bucket[pattern] = bucket.get(pattern, 0) + 1
    # 4 birth classes x 4 top classes x 5 interval classes x 3 AGM buckets.
    return CoverageResult(cells=cells, total_cells_possible=4 * 4 * 5 * 3)


def _stage_prediction_table(table: RecordTable) -> PredictionResult:
    if not len(table):
        raise AnalysisError("empty corpus")
    counts = [[0, 0, 0, 0] for _ in REAL_PATTERNS]
    bucket_totals = [0, 0, 0, 0]
    for pattern, month in zip(table.pattern, table.birth_month):
        bucket = birth_bucket(month)
        bucket_totals[bucket] += 1
        position = REAL_POSITION.get(pattern)
        if position is not None:
            counts[position][bucket] += 1
    return PredictionResult(
        counts={pattern: tuple(counts[k])
                for k, pattern in enumerate(REAL_PATTERNS)},
        bucket_totals=tuple(bucket_totals),
        total=len(table),
    )


def _pattern_members(table: RecordTable) -> list[list[int]]:
    """Record indexes per real pattern, in REAL_PATTERNS order."""
    members: list[list[int]] = [[] for _ in REAL_PATTERNS]
    for index, pattern in enumerate(table.pattern):
        position = REAL_POSITION.get(pattern)
        if position is not None:
            members[position].append(index)
    return members


def _stage_activity_table(table: RecordTable) -> ActivityRelationResult:
    if not len(table):
        raise AnalysisError("empty corpus")
    rows: list[ActivityRow] = []
    for position, indexes in enumerate(_pattern_members(table)):
        if not indexes:
            continue
        rows.append(ActivityRow(
            pattern=REAL_PATTERNS[position],
            count=len(indexes),
            median_post_birth=statistics.median(
                table.post_birth_activity[i] for i in indexes),
            median_total=statistics.median(
                table.total_activity[i] for i in indexes),
            median_expansion=statistics.median(
                table.expansion[i] for i in indexes),
            median_maintenance=statistics.median(
                table.maintenance[i] for i in indexes),
            median_pup=statistics.median(
                table.pup_months[i] for i in indexes),
            median_birth_size=statistics.median(
                table.schema_size_at_birth[i] for i in indexes),
        ))
    return ActivityRelationResult(rows=tuple(rows))


def _stage_change_mix_table(table: RecordTable) -> ChangeMixResult:
    if not len(table):
        raise AnalysisError("empty corpus")
    kind_counts = table.kind_counts
    rows: list[ChangeMixRow] = []
    grand_flat = [0] * N_KINDS
    grand_expansion = 0
    for position, indexes in enumerate(_pattern_members(table)):
        if not indexes:
            continue
        flat_totals = [0] * N_KINDS
        for i in indexes:
            offset = i * N_KINDS
            for k in range(N_KINDS):
                flat_totals[k] += kind_counts[offset + k]
            grand_expansion += table.expansion[i]
        for k in range(N_KINDS):
            grand_flat[k] += flat_totals[k]
        total_events = sum(flat_totals)
        table_events = sum(flat_totals[k] for k in TABLE_GRANULE_INDEXES)
        rows.append(ChangeMixRow(
            pattern=REAL_PATTERNS[position],
            count=len(indexes),
            kind_totals=dict(zip(KIND_ORDER, flat_totals)),
            median_expansion_fraction=statistics.median(
                table.expansion_fraction[i] for i in indexes),
            table_granule_fraction=(table_events / total_events
                                    if total_events else 0.0),
            monothematic_projects=sum(
                1 for i in indexes if table.post_birth_kinds[i] <= 1),
        ))
    grand_total = sum(grand_flat)
    grand_table = sum(grand_flat[k] for k in TABLE_GRANULE_INDEXES)
    return ChangeMixResult(
        rows=tuple(rows),
        overall_expansion_fraction=(grand_expansion / grand_total
                                    if grand_total else 0.0),
        overall_table_granule_fraction=(grand_table / grand_total
                                        if grand_total else 0.0),
    )


def _stage_normality_table(table: RecordTable):
    return normality_of(table.measure_map(), len(table))


def _stage_results(records, table1, stats34, table2, correlations, tree,
                   tree_misclassified, centroids, coverage, prediction,
                   activity, change_mix, normality, strict_agreement):
    from repro.study.pipeline import StudyResults
    return StudyResults(
        records=tuple(records),
        table1=table1,
        stats34=stats34,
        table2=table2,
        correlations=correlations,
        tree=tree,
        tree_misclassified=tree_misclassified,
        centroids=centroids,
        coverage=coverage,
        prediction=prediction,
        activity=activity,
        change_mix=change_mix,
        normality=normality,
        strict_agreement=strict_agreement,
    )


def _analysis_stages(columnar: bool = True) -> list[Stage]:
    """The corpus-level stages of :func:`run_study`, as a DAG.

    Args:
        columnar: with the default True, every analysis is a fused
            kernel over the ``table`` value (the map stage's packed
            secondary output, or an explicit packing stage in
            analysis-only plans); Table 1, §3.4 and strict agreement
            share one ``core_stats`` pass, split back into their
            historical stage names by three unpacking stages so
            reports and ``timing(...)`` lookups keep working. False
            selects the per-record oracle implementations.
    """
    if columnar:
        stages = [
            Stage(name="core_stats", fn=_stage_core_stats,
                  inputs=("table",)),
            Stage(name="table1", fn=_stage_core_table1,
                  inputs=("core_stats",)),
            Stage(name="stats34", fn=_stage_core_stats34,
                  inputs=("core_stats",)),
            Stage(name="strict_agreement", fn=_stage_core_agreement,
                  inputs=("core_stats",)),
            Stage(name="table2", fn=_stage_table2_table,
                  inputs=("table",)),
            Stage(name="correlations", fn=_stage_correlations_table,
                  inputs=("table",)),
            Stage(name="tree_features", fn=_stage_tree_features_table,
                  inputs=("table",)),
            Stage(name="centroids", fn=_stage_centroids_table,
                  inputs=("table",)),
            Stage(name="coverage", fn=_stage_coverage_table,
                  inputs=("table",)),
            Stage(name="prediction", fn=_stage_prediction_table,
                  inputs=("table",)),
            Stage(name="activity", fn=_stage_activity_table,
                  inputs=("table",)),
            Stage(name="change_mix", fn=_stage_change_mix_table,
                  inputs=("table",)),
            Stage(name="normality", fn=_stage_normality_table,
                  inputs=("table",)),
            Stage(name="tree", fn=_stage_tree,
                  inputs=("tree_features",)),
            Stage(name="tree_misclassified",
                  fn=_stage_tree_misclassified_table,
                  inputs=("tree", "tree_features", "table")),
        ]
    else:
        on_records = [
            ("table1", _stage_table1),
            ("stats34", _stage_stats34),
            ("table2", _stage_table2),
            ("correlations", _stage_correlations),
            ("tree_features", _stage_tree_features),
            ("centroids", _stage_centroids),
            ("coverage", _stage_coverage),
            ("prediction", _stage_prediction),
            ("activity", _stage_activity),
            ("change_mix", _stage_change_mix),
            ("normality", _stage_normality),
            ("strict_agreement", _stage_strict_agreement),
        ]
        stages = [Stage(name=name, fn=fn, inputs=("records",))
                  for name, fn in on_records]
        stages.append(Stage(name="tree", fn=_stage_tree,
                            inputs=("tree_features",)))
        stages.append(Stage(name="tree_misclassified",
                            fn=_stage_tree_misclassified,
                            inputs=("tree", "tree_features", "records")))
    stages.append(Stage(
        name="results", fn=_stage_results,
        inputs=("records", "table1", "stats34", "table2", "correlations",
                "tree", "tree_misclassified", "centroids", "coverage",
                "prediction", "activity", "change_mix", "normality",
                "strict_agreement")))
    return stages


# ----------------------------------------------------------------------
# plan builders


def records_map_stage(source: str = "corpus",
                      packed: bool = False) -> MapStage:
    """The per-project map stage.

    Args:
        source: ``"corpus"`` for generated projects (ground-truth
            pattern), ``"histories"`` for external histories (blind,
            tolerant classification).
        packed: also assemble the :class:`RecordTable` incrementally at
            harvest time and publish it as the secondary output
            ``table`` — the feed of the columnar analysis kernels.
            Records-only plans leave it off; caching is unaffected
            either way (packed rows never enter the result cache).
    """
    pack = dict(pack_fn=pack_record,
                pack_finish_fn=RecordTable.from_rows,
                pack_output="table") if packed else {}
    if source == "corpus":
        return MapStage(name="records", fn=corpus_record,
                        inputs=("projects", "scheme"),
                        version=RECORDS_STAGE_VERSION,
                        cache_key_fn=corpus_record_key,
                        transport_fn=strip_record,
                        item_transport_fn=strip_project, **pack)
    if source == "histories":
        return MapStage(name="records", fn=history_record,
                        inputs=("projects", "scheme"),
                        version=RECORDS_STAGE_VERSION,
                        cache_key_fn=history_record_key,
                        transport_fn=strip_record,
                        item_transport_fn=bare_history, **pack)
    raise AnalysisError(f"unknown records source {source!r}")


def build_records_plan(source: str = "corpus") -> StudyPlan:
    """A plan computing only the classified study records."""
    return StudyPlan([records_map_stage(source)])


def build_analysis_plan(columnar: bool = True) -> StudyPlan:
    """The corpus-level analyses, given precomputed records.

    The columnar backend packs the given records into a
    :class:`RecordTable` in one explicit stage, then runs the fused
    kernels; ``columnar=False`` runs the per-record oracles directly.
    """
    if columnar:
        return StudyPlan([
            Stage(name="table", fn=_stage_pack_table,
                  inputs=("records",)),
            *_analysis_stages(),
        ])
    return StudyPlan(_analysis_stages(columnar=False))


def build_study_plan(source: str = "corpus",
                     columnar: bool = True) -> StudyPlan:
    """The full study DAG: per-project map + every paper analysis.

    With the default columnar backend the map stage packs the table
    incrementally while it maps, so the analyses start from the flat
    columns without a second pass over the records.
    """
    return StudyPlan([records_map_stage(source, packed=columnar),
                      *_analysis_stages(columnar)])


def source_map_stage(packed: bool = False,
                     delta: bool = False) -> MapStage:
    """The per-project map stage over source handles.

    Unlike :func:`records_map_stage`, the mapped items are
    :class:`~repro.sources.base.SourceHandle`\\ s — (pid, fingerprint)
    pairs a few dozen bytes each — and the source object travels to
    workers once as a broadcast extra. No ``item_transport_fn`` is
    needed: there is nothing to strip from a handle. ``packed`` wires
    the harvest-time table pack exactly as in
    :func:`records_map_stage`. ``delta`` additionally broadcasts a
    checkpoint store (the ``delta_store`` initial input — a picklable
    path holder; workers read and write the checkpoint files
    themselves) and maps through :func:`source_record_delta`; version
    and cache keys are untouched, so delta and plain plans share the
    result cache.
    """
    pack = dict(pack_fn=pack_record,
                pack_finish_fn=RecordTable.from_rows,
                pack_output="table") if packed else {}
    if delta:
        return MapStage(name="records", fn=source_record_delta,
                        inputs=("handles", "source", "scheme",
                                "delta_store"),
                        version=RECORDS_STAGE_VERSION,
                        cache_key_fn=source_record_key,
                        transport_fn=strip_record, **pack)
    return MapStage(name="records", fn=source_record,
                    inputs=("handles", "source", "scheme"),
                    version=RECORDS_STAGE_VERSION,
                    cache_key_fn=source_record_key,
                    transport_fn=strip_record, **pack)


def build_source_records_plan(delta: bool = False) -> StudyPlan:
    """A plan computing only the records, from source handles."""
    return StudyPlan([source_map_stage(delta=delta)])


def build_source_study_plan(columnar: bool = True,
                            delta: bool = False) -> StudyPlan:
    """The full study DAG driven by source handles."""
    return StudyPlan([source_map_stage(packed=columnar, delta=delta),
                      *_analysis_stages(columnar)])


# ----------------------------------------------------------------------
# high-level entry points


def compute_records(projects: Iterable[Any],
                    config: StudyConfig | None = None,
                    source: str = "corpus",
                    session=None
                    ) -> tuple[list[StudyRecord], ExecutionReport]:
    """Run the per-project map stage over ``projects``."""
    config = config or StudyConfig()
    results, report = execute_plan(
        build_records_plan(source),
        {"projects": list(projects), "scheme": config.scheme},
        config, session=session)
    return list(results["records"]), report


def run_analyses(records: Sequence[StudyRecord],
                 config: StudyConfig | None = None,
                 session=None,
                 columnar: bool = True):
    """Run every corpus-level analysis over classified records.

    ``columnar=False`` selects the per-record oracle backend — same
    results, used by the differential tests and the scaling benchmark.

    Raises:
        AnalysisError: for an empty record list.
    """
    if not records:
        raise AnalysisError("cannot run the study on zero records")
    results, _ = execute_plan(build_analysis_plan(columnar),
                              {"records": tuple(records)}, config,
                              session=session)
    return results["results"]


def execute_study(projects: Iterable[Any],
                  config: StudyConfig | None = None,
                  source: str = "corpus",
                  session=None):
    """Run the whole study DAG: map + analyses, one plan execution.

    Returns:
        ``(StudyResults, ExecutionReport)``.

    Raises:
        AnalysisError: for an empty project list.
    """
    projects = list(projects)
    if not projects:
        raise AnalysisError("cannot run the study on zero records")
    config = config or StudyConfig()
    results, report = execute_plan(
        build_study_plan(source),
        {"projects": projects, "scheme": config.scheme},
        config, session=session)
    return results["results"], report


# ----------------------------------------------------------------------
# source-driven entry points


def source_handles(source) -> list:
    """One :class:`SourceHandle` per project of ``source``.

    Listing and fingerprinting stay in the parent process (they are
    cheap by protocol contract); loading does not happen here.
    """
    handles, _ = safe_source_handles(source, None)
    return handles


def safe_source_handles(source, policy=None
                        ) -> tuple[list, "list[ProjectFailure]"]:
    """Handles plus the projects whose fingerprinting failed.

    Fingerprinting runs in the parent, before the map stage — a git
    invocation can fail right here. Under a capturing error policy the
    failing project is quarantined (after the policy's retry budget,
    for transient errors) instead of killing the listing; with no
    policy, or fail-fast, the exception propagates unchanged.
    """
    from repro.sources.base import SourceHandle
    handles: list = []
    failures: list[ProjectFailure] = []
    for pid in source.project_ids():
        attempt = 0
        while True:
            attempt += 1
            try:
                handles.append(SourceHandle(
                    pid=pid, fingerprint=source.fingerprint(pid)))
                break
            except Exception as exc:
                if policy is None or not policy.captures:
                    raise
                if attempt < policy.attempts_for(exc):
                    delay = policy.backoff_seconds(pid, attempt)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                failures.append(ProjectFailure.from_exception(
                    pid, "handles", exc, attempts=attempt))
                break
    return handles, failures


def _legacy_inputs(source) -> list:
    """Every project of a non-lightweight source, loaded eagerly."""
    return [source.load(pid) for pid in source.project_ids()]


def _handle_feed(source, config: StudyConfig, session):
    """The map-stage feed of a lightweight source.

    Returns ``(feed, stream)``: the feed is the lazily enumerated
    :class:`~repro.engine.stream.HandleStream` itself (the executor
    pulls it under its bounded window), or — under ``config.sample`` —
    the deterministic sampled handle list drawn from it. The stream
    is returned alongside because its quarantined fingerprint
    failures are only complete once the feed has been consumed.
    """
    from repro.engine.stream import HandleStream, sample_handles
    stream = HandleStream(source, config.error_policy, session)
    if config.sample is None:
        return stream, stream
    feed = sample_handles(stream, config.sample, config.seed,
                          config.stratified, source=source)
    return feed, stream


def compute_records_from_source(source,
                                config: StudyConfig | None = None,
                                session=None
                                ) -> tuple[list[StudyRecord],
                                           ExecutionReport]:
    """Run the per-project map stage over a history source.

    Lightweight sources fan out as a streamed handle feed (workers
    load; the parent never materializes the handle list unless
    sampling); others fall back to the item-based plan — same
    results, and the legacy cache keys keep working for callers that
    adapt in-memory objects.
    """
    config = config or StudyConfig()
    if not source.lightweight:
        return compute_records(_legacy_inputs(source), config,
                               source.mode, session=session)
    from repro.engine.delta import delta_store_for
    store = delta_store_for(source, config)
    feed, stream = _handle_feed(source, config, session)
    results, report = execute_plan(
        build_source_records_plan(delta=store is not None),
        {"handles": feed, "source": source,
         "scheme": config.scheme, "delta_store": store},
        config, session=session)
    report.failures[:0] = stream.failures
    return list(results["records"]), report


def execute_study_from_source(source,
                              config: StudyConfig | None = None,
                              session=None):
    """Run the whole study DAG over a history source.

    Returns:
        ``(StudyResults, ExecutionReport)``.

    Raises:
        AnalysisError: for a source with zero projects.
    """
    config = config or StudyConfig()
    if not source.lightweight:
        return execute_study(_legacy_inputs(source), config,
                             source.mode, session=session)
    from repro.sources.base import source_count
    if source_count(source) == 0:
        raise AnalysisError("cannot run the study on zero records")
    from repro.engine.delta import delta_store_for
    store = delta_store_for(source, config)
    feed, stream = _handle_feed(source, config, session)
    results, report = execute_plan(
        build_source_study_plan(delta=store is not None),
        {"handles": feed, "source": source, "scheme": config.scheme,
         "delta_store": store},
        config, session=session)
    report.failures[:0] = stream.failures
    return results["results"], report
