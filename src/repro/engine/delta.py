"""Append-only delta re-study: per-project checkpoints + suffix kernel.

When a source's history grows from N to N+K versions, re-deriving the
project's study record from scratch costs O(N) parses even though the
first N versions are bit-identical to the last run. This module makes
that re-derivation O(K), with byte-identical output, by persisting one
**study checkpoint** per project in the cache directory:

* the project's *version-hash chain* at the time the record was
  computed — the proof object: a new chain that has the old one as a
  proper prefix means "history appended, nothing rewritten";
* the frozen version-N tail state of the incremental parse — the final
  segment-hash tuple, the final :class:`~repro.schema.schema.Schema`
  snapshot and its reusable ``Table`` pool — exactly what
  :meth:`SchemaHistory._materialize_memoized` carries from commit to
  commit, so the suffix kernel resumes mid-stream;
* the accumulated :class:`~repro.history.heartbeat.ActivitySeries`
  flat month×kind rows (``None`` for untouched months — provably
  equivalent to the all-zero row, since every schema change carries at
  least one kind), plus the project window and birth month;
* the project's :class:`~repro.analysis.table.PackedRecord` row and
  the label-scheme fingerprint it was labeled under.

The **suffix recompute kernel** (:func:`extend_checkpoint`) mirrors the
memoized materialization loop statement for statement — whole-version
hash shortcut, statement memo, ``snapshot_reusing`` table reuse,
classic ``parse_script`` fallback — then extends the month counts
in place exactly as :func:`~repro.history.kernel.accumulate_month_counts`
would have, and rebuilds landmarks/totals/vector from the extended
series. Any guard failure (rewritten chain, changed project window,
out-of-order suffix timestamps, dialect change, migration-style
history) falls back to a full recompute; falling back is always
correct, the checkpoint is only ever an accelerator.

Checkpoints are written on *every* computed record when a delta store
is active — cold studies included — so the very first ``refresh`` after
an append already runs the suffix path. Files live under
``<cache_dir>/delta/``, wrapped in the result cache's checksummed
envelope and written atomically; a corrupt or alien file reads as "no
checkpoint".

Process-wide counters (:func:`delta_counters`) mirror the statement
memo's: projects served by the append path, projects whose checkpoint
had to be discarded (rewritten), versions reused from checkpoints and
versions parsed by the suffix kernel. The executor ships them home
from worker processes alongside the parse/kernel/pack counters.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, replace
from datetime import datetime
from pathlib import Path
from typing import Any, Sequence

from repro.analysis.records import StudyRecord
from repro.analysis.table import pack_record
from repro.diff.engine import diff_schemas
from repro.diff.stats import EMPTY_BREAKDOWN, ChangeBreakdown
from repro.engine.cache import decode_entry, encode_entry, fingerprint
from repro.errors import EngineError
from repro.history.heartbeat import ActivitySeries
from repro.history.repository import (
    SchemaHistory,
    incremental_parse_default,
    month_index,
)
from repro.labels.quantization import LabelScheme, label_profile
from repro.metrics.activity import compute_activity_totals
from repro.metrics.landmarks import compute_landmarks
from repro.metrics.profile import ProjectProfile
from repro.metrics.timeseries import DEFAULT_POINTS, heartbeat_vector
from repro.patterns.classifier import classify, classify_with_tolerance
from repro.schema.builder import SchemaBuilder
from repro.sqlddl.memo import StatementMemo
from repro.sqlddl.parser import parse_script
from repro.sqlddl.splitter import split_statements

#: Checkpoint format version; bump when the pickle layout changes so
#: stale checkpoints read as missing instead of exploding.
DELTA_FORMAT_VERSION = 1

#: Subdirectory of the cache dir that holds the checkpoint files.
DELTA_SUBDIR = "delta"


# ----------------------------------------------------------------------
# process-wide delta counters (mirrors repro.sqlddl.memo)

_APPENDED = 0
_REWRITTEN = 0
_REUSED = 0
_PARSED = 0


def delta_counters() -> tuple[int, int, int, int]:
    """``(projects_appended, projects_rewritten, versions_reused,
    versions_parsed)`` since the last reset.

    Worker processes tick their own copies; the executor ships the
    per-item deltas back to the parent alongside the parse-memo and
    kernel counters, so :class:`~repro.engine.executor.StageTiming`
    totals are correct for serial and parallel runs alike.
    """
    return (_APPENDED, _REWRITTEN, _REUSED, _PARSED)


def reset_delta_counters() -> None:
    """Zero the delta counters (benchmarks, tests)."""
    global _APPENDED, _REWRITTEN, _REUSED, _PARSED
    _APPENDED = _REWRITTEN = _REUSED = _PARSED = 0


def _note_served(reused: int, parsed: int) -> None:
    global _APPENDED, _REUSED, _PARSED
    if parsed:
        _APPENDED += 1
    _REUSED += reused
    _PARSED += parsed


def _note_rewritten() -> None:
    global _REWRITTEN
    _REWRITTEN += 1


# ----------------------------------------------------------------------
# version chains


def commit_chain(commits: Sequence) -> tuple[str, ...]:
    """One content hash per commit: the generic version-hash chain.

    Sources that store whole payloads cheaply (corpus directories)
    derive their chain from the commits themselves; git uses commit
    shas instead (computable without reading any blob). Either way the
    chain only has to be *stable* and *prefix-preserving under
    append* — checkpoints never compare chains across sources.
    """
    return tuple(fingerprint("delta-commit", c.timestamp, c.ddl_text)
                 for c in commits)


def scheme_key(scheme: LabelScheme) -> str:
    """Fingerprint of the label scheme a checkpointed row was built
    under (rows are only reusable under the same boundaries)."""
    return fingerprint("delta-scheme", scheme.to_dict())


def _is_prefix(old: tuple, new: tuple) -> bool:
    return len(old) <= len(new) and tuple(new[:len(old)]) == tuple(old)


# ----------------------------------------------------------------------
# the checkpoint and its store


@dataclass(frozen=True)
class StudyCheckpoint:
    """Everything needed to extend one project's study by a suffix.

    Attributes:
        format: :data:`DELTA_FORMAT_VERSION` at write time.
        pid: the source-side project id.
        mode: ``"corpus"`` or ``"histories"`` (the record flavor).
        name: the project/history name the record carries.
        chain: the version-hash chain of the processed history.
        dialect: SQL dialect name the versions were parsed under.
        project_start / project_end: the processed project window.
        last_commit_ts: timestamp of the last processed commit — the
            append boundary (suffix commits must not sort before it).
        birth_month: month index of the first commit (unchanged by
            appends; the landmark computation's anchor).
        monthly: the accumulated per-month activity counts.
        rows: per-month flat kind-count rows; ``None`` for untouched
            months (equivalent to the all-zero row).
        prev_hashes: segment-hash tuple of the final version (arms the
            whole-version shortcut for the first suffix commit).
        schema: the final version's schema snapshot (diff baseline).
        pool: the final version's reusable ``Table`` pool (``None``
            after a classic-fallback final commit).
        row: the project's packed columnar row.
        scheme_key: fingerprint of the scheme ``row`` was labeled under.
    """

    format: int
    pid: str
    mode: str
    name: str
    chain: tuple
    dialect: str
    project_start: datetime
    project_end: datetime
    last_commit_ts: datetime
    birth_month: int
    monthly: tuple
    rows: tuple
    prev_hashes: tuple | None
    schema: Any
    pool: dict | None
    row: Any
    scheme_key: str


class DeltaStore:
    """Per-project study checkpoints under ``<cache_dir>/delta/``.

    The store is a broadcast extra of the records map stage: it holds
    only its root path, so it pickles to workers in a few bytes, and
    each worker reads/writes checkpoint files directly (one project is
    mapped at most once per run, so writers never race). Reads treat
    anything unreadable — missing file, torn write, foreign format —
    as "no checkpoint"; writes are atomic tmp+rename and best-effort,
    mirroring :class:`~repro.engine.cache.ResultCache`.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def path_for(self, pid: str, mode: str) -> Path:
        digest = hashlib.sha256(
            f"{mode}\x1f{pid}".encode("utf-8")).hexdigest()
        return self.root / digest[:2] / f"{digest}.ckpt"

    def load(self, pid: str, mode: str) -> StudyCheckpoint | None:
        """The project's checkpoint, or ``None`` (absent/corrupt)."""
        path = self.path_for(pid, mode)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            value = decode_entry(data)
        except EngineError:
            return None
        if not isinstance(value, StudyCheckpoint) \
                or value.format != DELTA_FORMAT_VERSION \
                or value.pid != pid or value.mode != mode:
            return None
        return value

    def save(self, checkpoint: StudyCheckpoint) -> bool:
        """Persist ``checkpoint`` atomically (best-effort)."""
        path = self.path_for(checkpoint.pid, checkpoint.mode)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(encode_entry(checkpoint))
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeltaStore({str(self.root)!r})"


def delta_store_for(source: Any, config: Any) -> DeltaStore | None:
    """The delta store a run over ``source`` should use, or ``None``.

    Checkpoints are maintained whenever (a) the config asks for delta
    maintenance (the default), (b) a cache directory exists to hold
    them, (c) the source speaks the version-chain protocol, and (d)
    incremental statement parsing is globally enabled (the suffix
    kernel rides the memo; ``--no-incremental`` A/B runs stay classic
    end to end).
    """
    if config is None or config.cache_dir is None:
        return None
    if not getattr(config, "delta", True):
        return None
    if getattr(source, "version_chain", None) is None:
        return None
    if not incremental_parse_default():
        return None
    return DeltaStore(Path(config.cache_dir) / DELTA_SUBDIR)


# ----------------------------------------------------------------------
# checkpoint capture (after a full compute)


def capture_checkpoint(pid: str, mode: str, history: SchemaHistory,
                       record: StudyRecord, chain: tuple,
                       scheme: LabelScheme) -> StudyCheckpoint | None:
    """A checkpoint of a freshly, fully computed record.

    Returns ``None`` when the history did not materialize through the
    memoized path (migration-style ``incremental`` histories, classic
    full parses) — there is no tail state to resume from, and the next
    run simply recomputes in full.
    """
    if history.incremental:
        return None
    state = getattr(history, "_delta_state", None)
    versions = history._versions
    if state is None or not versions:
        return None
    series = record.labeled.profile.heartbeat
    if series.breakdowns is None:
        return None
    prev_hashes, pool = state
    rows = tuple(tuple(b.flat) if any(b.flat) else None
                 for b in series.breakdowns)
    return StudyCheckpoint(
        format=DELTA_FORMAT_VERSION,
        pid=pid,
        mode=mode,
        name=history.project_name,
        chain=tuple(chain),
        dialect=history.dialect.traits.name,
        project_start=history.project_start,
        project_end=history.project_end,
        last_commit_ts=history.commits[-1].timestamp,
        birth_month=history.commit_month(history.commits[0]),
        monthly=tuple(series.monthly),
        rows=rows,
        prev_hashes=prev_hashes,
        schema=versions[-1].schema,
        pool=pool,
        row=pack_record(record, count=False),
        scheme_key=scheme_key(scheme),
    )


# ----------------------------------------------------------------------
# the suffix recompute kernel


class _Unusable(Exception):
    """Internal: this checkpoint cannot serve this history. Fall back."""


def _check_usable(cp: StudyCheckpoint, chain: tuple, dialect_name: str,
                  project_start: datetime,
                  project_end: datetime) -> None:
    if cp.dialect != dialect_name:
        raise _Unusable("dialect changed")
    if not _is_prefix(cp.chain, tuple(chain)):
        raise _Unusable("old chain is not a prefix of the new one")
    if cp.project_start != project_start:
        raise _Unusable("project_start moved (month indexing changed)")
    if project_end < cp.project_end:
        raise _Unusable("project window shrank")


def extend_checkpoint(cp: StudyCheckpoint, suffix: Sequence,
                      project_end: datetime, dialect
                      ) -> tuple[ActivitySeries, StudyCheckpoint]:
    """Run the suffix kernel: ``K`` new commits onto a checkpoint.

    Mirrors :meth:`SchemaHistory._materialize_memoized` exactly —
    whole-version shortcut, statement memo, ``snapshot_reusing`` table
    reuse and the classic ``parse_script`` fallback — but starts from
    the checkpointed version-N tail state instead of an empty one, and
    folds each suffix diff's kind counts into the checkpointed month
    rows precisely as ``accumulate_month_counts`` would have.

    Args:
        cp: the usable checkpoint (caller verified the prefix proof).
        suffix: the new commits, timestamp-sorted; may be empty (a
            window extension or metadata-only change).
        project_end: the grown history's project end (never earlier
            than the checkpoint's).
        dialect: the parse dialect (object, not name).

    Returns:
        ``(series, new_checkpoint)`` — the extended activity series
        and the checkpoint advanced to the new tail (its ``chain`` is
        still the *old* one; the caller replaces it with the new
        chain, which it alone knows in full).

    Raises:
        _Unusable: when a suffix commit sorts before the checkpoint's
            append boundary (a rewrite in disguise) or the window math
            stops adding up; callers fall back to a full recompute.
    """
    monthly = list(cp.monthly)
    rows: list = [list(r) if r is not None else None for r in cp.rows]
    new_pup = month_index(cp.project_start, project_end) + 1
    if new_pup < len(monthly):
        raise _Unusable("grown history spans fewer months")
    monthly.extend([0] * (new_pup - len(monthly)))
    rows.extend([None] * (new_pup - len(rows)))

    memo = StatementMemo(dialect)
    prev_hashes = cp.prev_hashes
    prev_pool = cp.pool
    prev_schema = cp.schema
    last_ts = cp.last_commit_ts
    for commit in suffix:
        if commit.timestamp < last_ts:
            raise _Unusable("suffix commit predates the append boundary")
        last_ts = commit.timestamp
        segments = split_statements(commit.ddl_text, dialect)
        hashes = tuple(s.content_hash for s in segments)
        if hashes == prev_hashes:
            # Whole-version shortcut: same segment bytes, same schema,
            # empty diff — exactly what the full path elides.
            continue
        parsed = [memo.parse(segment) for segment in segments]
        if any(entry.fallback for entry in parsed):
            script = parse_script(commit.ddl_text, dialect)
            builder = SchemaBuilder(strict=False)
            builder.apply_script(script)
            schema = builder.snapshot()
            pool = None
        else:
            builder = SchemaBuilder(strict=False)
            for segment, entry in zip(segments, parsed):
                if entry.statement is not None:
                    builder.apply(entry.statement,
                                  token=segment.content_hash)
            schema, pool = builder.snapshot_reusing(prev_pool)
        diff = diff_schemas(prev_schema, schema)
        if diff.changes:
            month = month_index(cp.project_start, commit.timestamp)
            flat = diff.kind_counts_flat()
            monthly[month] += sum(flat)
            if rows[month] is None:
                rows[month] = list(flat)
            else:
                row = rows[month]
                for slot, count in enumerate(flat):
                    row[slot] += count
        prev_hashes = hashes
        prev_pool = pool
        prev_schema = schema

    series = ActivitySeries(
        monthly=tuple(monthly),
        breakdowns=tuple(
            EMPTY_BREAKDOWN if row is None
            else ChangeBreakdown(flat=tuple(row))
            for row in rows))
    advanced = replace(
        cp,
        project_end=project_end,
        last_commit_ts=last_ts,
        monthly=tuple(series.monthly),
        rows=tuple(tuple(row) if row is not None else None
                   for row in rows),
        prev_hashes=prev_hashes,
        schema=prev_schema,
        pool=prev_pool,
    )
    return series, advanced


def _profile_from_series(name: str, series: ActivitySeries,
                         birth_month: int,
                         source: ActivitySeries | None,
                         history: SchemaHistory | None) -> ProjectProfile:
    """Rebuild the profile exactly as ``ProjectProfile.from_history``
    does, from an already-extended series."""
    landmarks = compute_landmarks(series, birth_month=birth_month)
    totals = compute_activity_totals(series, landmarks.birth_month)
    return ProjectProfile(
        name=name,
        landmarks=landmarks,
        totals=totals,
        vector=heartbeat_vector(series, DEFAULT_POINTS),
        heartbeat=series,
        source=source,
        history=history,
    )


# ----------------------------------------------------------------------
# serving records from checkpoints (worker side)


def serve_corpus_delta(store: DeltaStore, pid: str, project,
                       chain: tuple, scheme: LabelScheme
                       ) -> StudyRecord | None:
    """A corpus-mode record off the checkpointed prefix, or ``None``.

    The project is already loaded (corpus-directory payloads are one
    cheap JSON read; the cost this path avoids is *parsing* the DDL of
    the prefix versions). ``None`` means "no usable checkpoint — do
    the full compute"; a rewritten/unusable checkpoint also ticks the
    ``rewritten`` counter.
    """
    cp = store.load(pid, "corpus")
    if cp is None:
        return None
    history = project.history
    try:
        _check_usable(cp, chain, history.dialect.traits.name,
                      history.project_start, history.project_end)
        suffix = history.commits[len(cp.chain):]
        series, advanced = extend_checkpoint(
            cp, suffix, history.project_end, history.dialect)
    except _Unusable:
        _note_rewritten()
        return None
    profile = _profile_from_series(history.project_name, series,
                                   cp.birth_month, project.source,
                                   history)
    labeled = label_profile(profile, scheme)
    strict = classify(labeled)
    record = StudyRecord(
        name=project.name,
        pattern=project.intended_pattern,
        labeled=labeled,
        is_exception=strict is not project.intended_pattern,
    )
    _note_served(reused=len(cp.chain), parsed=len(suffix))
    store.save(replace(advanced, chain=tuple(chain),
                       name=history.project_name,
                       row=pack_record(record, count=False),
                       scheme_key=scheme_key(scheme)))
    return record


def serve_history_delta(store: DeltaStore, pid: str, source,
                        chain: tuple, scheme: LabelScheme
                        ) -> StudyRecord | None:
    """A histories-mode record off the checkpointed prefix, or ``None``.

    Unlike the corpus path, old payloads are never read: the chain
    (git shas) proves the prefix, and only the suffix commits are
    fetched via the source's ``load_delta``. The rebuilt record
    carries ``history=None`` — the optional table-level extension
    skips such records; every study analysis reads only the profile.
    """
    load_delta = getattr(source, "load_delta", None)
    cp = store.load(pid, "histories")
    if cp is None or load_delta is None:
        return None
    dialect = source.dialect
    try:
        if cp.dialect != dialect.traits.name:
            raise _Unusable("dialect changed")
        if not _is_prefix(cp.chain, tuple(chain)):
            raise _Unusable("old chain is not a prefix of the new one")
        suffix = sorted(load_delta(pid, len(cp.chain)),
                        key=lambda commit: commit.timestamp)
        project_end = cp.project_end
        if suffix:
            if suffix[0].timestamp < cp.last_commit_ts:
                raise _Unusable(
                    "suffix commit predates the append boundary")
            project_end = max(project_end, suffix[-1].timestamp)
        series, advanced = extend_checkpoint(cp, suffix, project_end,
                                             dialect)
    except _Unusable:
        _note_rewritten()
        return None
    profile = _profile_from_series(cp.name, series, cp.birth_month,
                                   None, None)
    labeled = label_profile(profile, scheme)
    result = classify_with_tolerance(labeled)
    record = StudyRecord(
        name=cp.name,
        pattern=result.pattern,
        labeled=labeled,
        is_exception=result.is_exception,
    )
    _note_served(reused=len(cp.chain), parsed=len(suffix))
    store.save(replace(advanced, chain=tuple(chain),
                       row=pack_record(record, count=False),
                       scheme_key=scheme_key(scheme)))
    return record
