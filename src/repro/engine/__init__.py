"""repro.engine — staged execution of the study pipeline.

The engine expresses the study as a declarative DAG of named stages
(:class:`Stage` / :class:`MapStage` in a :class:`StudyPlan`), executes
it serially or with a process pool (:func:`execute_plan`), memoizes the
per-project map in a content-addressed :class:`ResultCache`, and
reports per-stage timings (:class:`ExecutionReport`). A single
:class:`StudyConfig` (seed, scheme, jobs, cache dir, progress hook) is
threaded through the corpus generator, the study pipeline, the CLI and
the benchmarks. Long-lived runtime state — the persistent worker pool,
hot-layer caches, the source-handle registry and the run ledger —
lives in an :class:`EngineSession`; every entry point takes an
optional ``session=`` and opens a throwaway one otherwise.

Typical use::

    from repro.corpus.generator import generate_corpus
    from repro.engine import EngineSession, StudyConfig, execute_study

    config = StudyConfig(jobs=4, cache_dir="~/.cache/repro")
    corpus = generate_corpus(config=config)
    with EngineSession(config) as session:
        results, report = execute_study(corpus.projects, config,
                                        session=session)
        # ... re-run later: warm pool + hot cache, pure hit latency
    print(report.format_table())
"""

from repro.engine.cache import MISS, ResultCache, canonical, fingerprint
from repro.engine.config import ProgressHook, StudyConfig
from repro.engine.delta import (
    DeltaStore,
    StudyCheckpoint,
    delta_counters,
    delta_store_for,
    reset_delta_counters,
)
from repro.engine.executor import (
    ExecutionReport,
    StageTiming,
    execute_plan,
    run_stage,
)
from repro.engine.faults import (
    ErrorPolicy,
    FaultPlan,
    FaultSpec,
    ProjectFailure,
    policy_from_name,
)
from repro.engine.interrupt import InterruptGuard, interrupt_guard
from repro.engine.journal import (
    JournalInfo,
    JournalReplay,
    RunJournal,
    list_journals,
    load_replay,
    read_journal,
    resumable_runs,
)
from repro.engine.lock import CacheLock, append_line
from repro.engine.session import (
    EngineSession,
    HotResultCache,
    RunRecord,
    read_ledger,
    read_ledger_report,
    source_session_key,
)
from repro.engine.stage import (
    MapStage,
    PlanSchedule,
    Stage,
    StageEvent,
    StudyPlan,
)
from repro.engine.stream import (
    HandleStream,
    sample_handles,
)
from repro.engine.study_plan import (
    RECORDS_STAGE_VERSION,
    bare_history,
    build_analysis_plan,
    build_records_plan,
    build_source_records_plan,
    build_source_study_plan,
    build_study_plan,
    compute_records,
    compute_records_from_source,
    corpus_record,
    corpus_record_key,
    execute_study,
    execute_study_from_source,
    history_record,
    history_record_key,
    run_analyses,
    safe_source_handles,
    source_handles,
    source_record,
    source_record_delta,
    source_record_key,
    strip_project,
    strip_record,
)

__all__ = [
    "MISS",
    "CacheLock",
    "DeltaStore",
    "EngineSession",
    "ErrorPolicy",
    "ExecutionReport",
    "HotResultCache",
    "InterruptGuard",
    "JournalInfo",
    "JournalReplay",
    "RunJournal",
    "RunRecord",
    "FaultPlan",
    "FaultSpec",
    "HandleStream",
    "MapStage",
    "PlanSchedule",
    "ProjectFailure",
    "ProgressHook",
    "RECORDS_STAGE_VERSION",
    "ResultCache",
    "Stage",
    "StageEvent",
    "StageTiming",
    "StudyCheckpoint",
    "StudyConfig",
    "StudyPlan",
    "append_line",
    "bare_history",
    "build_analysis_plan",
    "build_records_plan",
    "build_source_records_plan",
    "build_source_study_plan",
    "build_study_plan",
    "canonical",
    "compute_records",
    "compute_records_from_source",
    "corpus_record",
    "corpus_record_key",
    "delta_counters",
    "delta_store_for",
    "execute_plan",
    "execute_study",
    "execute_study_from_source",
    "fingerprint",
    "history_record",
    "history_record_key",
    "interrupt_guard",
    "list_journals",
    "load_replay",
    "policy_from_name",
    "read_journal",
    "read_ledger",
    "read_ledger_report",
    "reset_delta_counters",
    "resumable_runs",
    "run_analyses",
    "run_stage",
    "sample_handles",
    "source_session_key",
    "safe_source_handles",
    "source_handles",
    "source_record",
    "source_record_delta",
    "source_record_key",
    "strip_project",
    "strip_record",
]
