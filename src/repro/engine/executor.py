"""Plan execution: serial and process-parallel backends, timing report.

:func:`execute_plan` walks a :class:`~repro.engine.stage.StudyPlan` in
topological order. Ordinary stages run in-process; :class:`MapStage`
input may be any iterable — including a lazily enumerated
:class:`~repro.engine.stream.HandleStream` — consumed one item at a
time: each item is served from the content-addressed cache when
possible, and misses are either computed serially or accumulated into
pickled chunks fanned out over a ``ProcessPoolExecutor``
(``config.jobs``) under a bounded in-flight window (~2×jobs chunks
outstanding; a full window stops the input iterator), so parent-side
memory stays flat at any corpus size. Per-stage wall-clock timings and
cache statistics are collected into an :class:`ExecutionReport` and
streamed to the config's progress hook.

Map stages are fault-tolerant: every item runs under the config's
:class:`~repro.engine.faults.ErrorPolicy` (fail fast / skip / retry
with backoff), each in-flight chunk is bounded by
``config.stage_timeout``, and a dead worker pool (``BrokenProcessPool``)
triggers serial re-execution of the unfinished chunks instead of
killing the run — the run is then marked *degraded*. Quarantined
projects surface as :class:`~repro.engine.faults.ProjectFailure`
records on the report; downstream stages see only the survivors,
exactly as the paper computes over the 151 survivors of its 195 mined
histories.

Execution state (pool, cache, ledger) is owned by an
:class:`~repro.engine.session.EngineSession`: pass one to
:func:`execute_plan` to keep the pool and the cache's hot layer warm
across runs; omit it and a throwaway session is opened and closed
around the call, reproducing the historical one-shot behavior exactly.
"""

from __future__ import annotations

import math
import os
import time
from collections import deque
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from datetime import datetime, timezone
from functools import partial
from typing import Any, Callable, Mapping

from repro.engine.cache import MISS, fingerprint
from repro.engine.config import StudyConfig
from repro.engine.faults import (
    KILL_EXIT_STATUS,
    ErrorPolicy,
    FaultPlan,
    ProjectFailure,
    item_id,
)
from repro.engine.interrupt import InterruptGuard, interrupt_guard
from repro.engine.journal import JournalReplay, RunJournal, load_replay, \
    new_run_id
from repro.engine.session import (
    EngineSession,
    HotResultCache,
    RunRecord,
    source_session_key,
)
from repro.analysis.table import pack_counters
from repro.engine.delta import delta_counters
from repro.engine.stage import MapStage, Stage, StageEvent, StudyPlan
from repro.errors import EngineError, RunInterrupted
from repro.history.kernel import kernel_counters
from repro.sqlddl.memo import parse_counters

#: Slots of the combined per-item counter vector shipped home from
#: workers: statement memo (2), heartbeat kernel (2), pack (1), delta
#: layer (4: projects appended / rewritten, versions reused / parsed).
N_COUNTER_SLOTS = 9


@dataclass(frozen=True)
class StageTiming:
    """Wall-clock and cache accounting for one executed stage.

    Attributes:
        stage: stage name.
        seconds: wall-clock duration of the stage.
        items: mapped item count (map stages; None otherwise).
        cache_hits: items served from the result cache.
        cache_misses: items computed this run.
        parse_hits: statement-memo hits during the stage (statements the
            incremental parse path reused instead of re-parsing; summed
            over worker processes).
        parse_misses: statement-memo misses (statements actually parsed).
        kernel_series: activity-series prefix tables built during the
            stage (heartbeat kernel; summed over worker processes).
        kernel_reuse: prefix-table lookups served from the per-series
            memo instead of recomputing the cumulative arrays.
        failures: items quarantined under a skip/retry error policy.
        retries: extra attempts spent on transient per-item failures.
        chunk_size: items per pickled work chunk the executor chose
            (0 for serial execution and non-map stages).
        pack_rows: columnar table rows packed during the stage (summed
            over worker processes and the parent).
        pack_merges: partial packs merged FIFO as worker chunks came
            home (0 for serial and non-packing stages).
        delta_appended: projects served by the append-only delta path
            (checkpoint extended by a suffix instead of recomputed).
        delta_rewritten: projects whose checkpoint had to be discarded
            (history rewritten or otherwise unusable; full recompute).
        delta_reused: checkpointed versions reused without re-parsing.
        delta_parsed: suffix versions the delta kernel parsed.
    """

    stage: str
    seconds: float
    items: int | None = None
    cache_hits: int = 0
    cache_misses: int = 0
    parse_hits: int = 0
    parse_misses: int = 0
    kernel_series: int = 0
    kernel_reuse: int = 0
    failures: int = 0
    retries: int = 0
    chunk_size: int = 0
    pack_rows: int = 0
    pack_merges: int = 0
    delta_appended: int = 0
    delta_rewritten: int = 0
    delta_reused: int = 0
    delta_parsed: int = 0


@dataclass
class ExecutionReport:
    """Per-stage timings and fault accounting of one plan execution.

    Attributes:
        timings: one :class:`StageTiming` per executed stage.
        failures: every project quarantined during the run, in stage
            then item order (empty under the default fail-fast policy,
            which raises instead).
        degraded: True when the process pool died or timed out and the
            run fell back to serial re-execution for part of the work.
        quarantined: corrupt cache entries detected, moved aside and
            recomputed during the run (cache self-healing).
        hot_hits: result-cache probes served by the session's in-memory
            hot layer this run (0 without a cache).
        hot_misses: probes that fell through to disk (or missed).
        evictions: hot-layer LRU evictions during the run.
        run_uid: journal id of this execution (``""`` without a cache
            dir — no journal is kept then).
        resumed_from: journal id the run resumed, or ``None``.
        journal_chunks: chunks journaled as durable during the run.
        journal_replayed: prior-run chunks served entirely from the
            cache on a resume (the "no recompute" acceptance counter).
        journal_replayed_items: individual journaled items so served.
        write_failures: cache stores the filesystem refused (ENOSPC /
            read-only) — the run continued memory-only.
        journal_degraded: the journal itself could not be written and
            fell back to memory-only.
        pruned: quarantine entries removed by the cap during the run.
    """

    timings: list[StageTiming] = field(default_factory=list)
    failures: list[ProjectFailure] = field(default_factory=list)
    degraded: bool = False
    quarantined: int = 0
    hot_hits: int = 0
    hot_misses: int = 0
    evictions: int = 0
    run_uid: str = ""
    resumed_from: str | None = None
    journal_chunks: int = 0
    journal_replayed: int = 0
    journal_replayed_items: int = 0
    write_failures: int = 0
    journal_degraded: bool = False
    pruned: int = 0

    @property
    def total_seconds(self) -> float:
        """Wall-clock total over all stages."""
        return sum(t.seconds for t in self.timings)

    @property
    def cache_hits(self) -> int:
        """Items served from the result cache, over all map stages."""
        return sum(t.cache_hits for t in self.timings)

    @property
    def cache_misses(self) -> int:
        """Items computed this run, over all map stages."""
        return sum(t.cache_misses for t in self.timings)

    @property
    def parse_hits(self) -> int:
        """Statement-memo hits over all stages (incremental parsing)."""
        return sum(t.parse_hits for t in self.timings)

    @property
    def parse_misses(self) -> int:
        """Statement-memo misses (statements parsed) over all stages."""
        return sum(t.parse_misses for t in self.timings)

    @property
    def kernel_series(self) -> int:
        """Heartbeat-kernel prefix tables built, over all stages."""
        return sum(t.kernel_series for t in self.timings)

    @property
    def kernel_reuse(self) -> int:
        """Heartbeat-kernel memo-served lookups, over all stages."""
        return sum(t.kernel_reuse for t in self.timings)

    @property
    def retries(self) -> int:
        """Extra per-item attempts spent, over all stages."""
        return sum(t.retries for t in self.timings)

    @property
    def pack_rows(self) -> int:
        """Columnar table rows packed, over all stages."""
        return sum(t.pack_rows for t in self.timings)

    @property
    def pack_merges(self) -> int:
        """Partial packs merged at harvest time, over all stages."""
        return sum(t.pack_merges for t in self.timings)

    @property
    def delta_appended(self) -> int:
        """Projects served by the append-only delta path."""
        return sum(t.delta_appended for t in self.timings)

    @property
    def delta_rewritten(self) -> int:
        """Projects whose study checkpoint was rejected (rewritten)."""
        return sum(t.delta_rewritten for t in self.timings)

    @property
    def delta_reused(self) -> int:
        """Checkpointed versions reused without re-parsing."""
        return sum(t.delta_reused for t in self.timings)

    @property
    def delta_parsed(self) -> int:
        """Suffix versions parsed by the delta kernel."""
        return sum(t.delta_parsed for t in self.timings)

    def format_delta_summary(self) -> str:
        """One line of delta accounting for a refresh run.

        ``unchanged`` counts the map items the result cache served —
        projects whose fingerprint (and therefore content) did not
        move since the last run and that no code path re-examined.
        """
        return (f"delta: {self.cache_hits} unchanged / "
                f"{self.delta_appended} appended / "
                f"{self.delta_rewritten} rewritten; "
                f"versions: {self.delta_reused} reused / "
                f"{self.delta_parsed} parsed")

    def timing(self, stage: str) -> StageTiming:
        """The timing entry of one stage.

        Raises:
            EngineError: when the stage did not execute.
        """
        for entry in self.timings:
            if entry.stage == stage:
                return entry
        raise EngineError(f"no timing recorded for stage {stage!r}")

    def format_table(self) -> str:
        """The timings as an aligned text table."""
        from repro.viz.tables import format_table

        def hit_miss(hits: int, misses: int) -> str:
            if hits or misses:
                return f"{hits} hit / {misses} miss"
            return "-"

        def built_reuse(series: int, reuse: int) -> str:
            if series or reuse:
                return f"{series} built / {reuse} reuse"
            return "-"

        def fault_cell(failures: int, retries: int) -> str:
            if failures or retries:
                return f"{failures} fail / {retries} retry"
            return "-"

        def pack_cell(packed: int, merges: int) -> str:
            if packed or merges:
                return f"{packed} row / {merges} merge"
            return "-"

        def delta_cell(appended: int, rewritten: int, reused: int,
                       parsed: int) -> str:
            if appended or rewritten or reused or parsed:
                return (f"{appended} app / {rewritten} rew / "
                        f"{reused} reuse / {parsed} parse")
            return "-"

        total_cache = hit_miss(self.cache_hits, self.cache_misses)
        if self.hot_hits or self.hot_misses or self.evictions:
            total_cache += (f" [hot {self.hot_hits}/{self.hot_misses}"
                            f", evict {self.evictions}]")
        rows = []
        for entry in self.timings:
            rows.append([
                entry.stage,
                f"{entry.seconds * 1000:.1f} ms",
                "-" if entry.items is None else entry.items,
                entry.chunk_size or "-",
                hit_miss(entry.cache_hits, entry.cache_misses),
                hit_miss(entry.parse_hits, entry.parse_misses),
                built_reuse(entry.kernel_series, entry.kernel_reuse),
                pack_cell(entry.pack_rows, entry.pack_merges),
                delta_cell(entry.delta_appended, entry.delta_rewritten,
                           entry.delta_reused, entry.delta_parsed),
                fault_cell(entry.failures, entry.retries),
            ])
        rows.append(["TOTAL", f"{self.total_seconds * 1000:.1f} ms",
                     "-", "-",
                     total_cache,
                     hit_miss(self.parse_hits, self.parse_misses),
                     built_reuse(self.kernel_series, self.kernel_reuse),
                     pack_cell(self.pack_rows, self.pack_merges),
                     delta_cell(self.delta_appended, self.delta_rewritten,
                                self.delta_reused, self.delta_parsed),
                     fault_cell(len(self.failures), self.retries)])
        title = "Execution report"
        if self.degraded:
            title += " (degraded: pool lost, partial serial fallback)"
        return format_table(
            ["stage", "time", "items", "chunk", "cache", "parse memo",
             "heartbeat kernel", "pack", "delta", "faults"], rows,
            title=title)


def _invoke_map(fn: Callable, transport: Callable | None,
                pack: Callable | None,
                extras: tuple, stage_name: str, policy: ErrorPolicy,
                faults: FaultPlan | None, attempt_base: int, item: Any
                ) -> tuple[Any, tuple[int, ...], int, Any]:
    """Apply a map stage to one item (module-level: must pickle).

    Runs the item under the error policy: a capturing policy (skip /
    retry) turns exceptions into :class:`ProjectFailure` payloads —
    retrying transient source errors with backoff first — while the
    fail-fast policy lets them propagate exactly as before the fault
    layer existed. ``attempt_base`` offsets the attempt number the
    fault plan sees, so a pool-crash serial re-run counts as a later
    attempt and injected one-shot faults do not re-fire.

    With a ``pack`` function the surviving result is also flattened
    into its columnar row right here — in the worker, overlapping the
    map itself — so the parent only merges finished rows.

    Returns the (transported) result or failure record, the
    statement-memo / heartbeat-kernel / pack / delta-layer counter
    deltas the call produced (so worker processes can ship their
    counters back to the parent), the number of retries spent, and the
    packed row (``None`` for failures or non-packing stages).
    """
    before = (parse_counters() + kernel_counters() + pack_counters()
              + delta_counters())
    retries = 0
    attempt = 0
    while True:
        attempt += 1
        try:
            if faults is not None:
                faults.check(item_id(item), stage_name,
                             attempt_base + attempt)
            payload = fn(item, *extras)
            if transport is not None:
                payload = transport(payload)
            break
        except Exception as exc:
            if not policy.captures:
                raise
            if attempt < policy.attempts_for(exc):
                retries += 1
                delay = policy.backoff_seconds(item_id(item), attempt)
                if delay > 0:
                    time.sleep(delay)
                continue
            payload = ProjectFailure.from_exception(
                item_id(item), stage_name, exc, attempts=attempt)
            break
    row = None
    if pack is not None and not isinstance(payload, ProjectFailure):
        row = pack(payload)
    after = (parse_counters() + kernel_counters() + pack_counters()
             + delta_counters())
    return (payload,
            tuple(after[slot] - before[slot]
                  for slot in range(N_COUNTER_SLOTS)),
            retries, row)


def _invoke_chunk(invoke: Callable, items: list) -> list:
    """Run one pickled chunk of map items in a worker process."""
    return [invoke(item) for item in items]


#: Chunks allowed in flight per worker — the backpressure bound. The
#: parent holds at most ``WINDOW_PER_JOB * jobs + 1`` chunks of items
#: at any moment, however large the source is.
WINDOW_PER_JOB = 2


def _auto_chunk(total: int | None, jobs: int) -> int:
    """Items per pickled chunk.

    With a known item total: ~4 chunks per worker, so pickling
    overhead amortizes while the pool stays load-balanced. For
    unsized streams: a fixed jobs-scaled size — the bounded window
    keeps every worker fed regardless.
    """
    if total is None:
        return max(1, jobs * 4)
    return max(1, math.ceil(total / (jobs * 4)))


def _count_hint(items: Any) -> int | None:
    """A cheap item total for chunk sizing, or ``None`` (unsized)."""
    try:
        return len(items)
    except TypeError:
        pass
    count = getattr(items, "count", None)
    if callable(count):
        try:
            return count()
        except Exception:
            return None
    return None


@dataclass
class _MapOutcome:
    """Everything one map-stage execution produced."""

    values: list
    count: int
    hits: int
    misses: int
    worker_delta: tuple[int, ...]
    failures: list[ProjectFailure]
    retries: int
    degraded: bool
    chunk_size: int = 0
    pack: Any = None
    pack_merges: int = 0


def _run_map_stage(stage: MapStage, items: Any, extras: tuple,
                   config: StudyConfig,
                   cache: HotResultCache | None,
                   session: EngineSession,
                   journal: RunJournal | None = None,
                   replay: JournalReplay | None = None,
                   guard: InterruptGuard | None = None) -> _MapOutcome:
    """Execute one map stage under the config's error policy.

    ``items`` is any iterable — a list or a lazily enumerated
    :class:`~repro.engine.stream.HandleStream` — consumed exactly
    once, one item at a time: each item is probed against the cache
    and, on a miss, accumulated into the current work chunk. At most
    ``WINDOW_PER_JOB * jobs`` chunks are in flight at once; when the
    window is full the input iterator is simply not advanced until
    the oldest chunk is harvested, so peak parent-side memory is
    bounded by the window whatever the corpus size (results of
    course still accumulate — they are the stage's output).

    ``values`` holds only the surviving results, in item order —
    quarantined items are dropped so downstream stages compute over
    the survivors. ``worker_delta`` sums the statement-memo,
    heartbeat-kernel and pack counters that ticked in worker
    processes (invisible to this process's own counters).

    A packing stage additionally flattens each surviving result into
    a columnar row — in the worker for computed items, at probe time
    for cache hits — and the partial packs come home with their
    chunks, merged FIFO as harvested; ``pack_finish_fn`` assembles
    the final table once, so the pack overlaps the map instead of
    costing a second pass over materialized records.

    The worker pool comes from (and stays with) ``session``, spawned
    lazily on the first submitted chunk — a fully warm run never
    touches it. It is only discarded — never shut down inline — when
    it breaks or a timed-out chunk forces an abandon, so healthy
    pools survive the stage and serve the next one warm. Fault
    semantics are unchanged from the eager executor: a capturing
    policy quarantines a timed-out chunk and keeps harvesting, a
    ``BrokenProcessPool`` harvests finished chunks and re-runs all
    unfinished work serially at the next attempt number, and the
    fail-fast policy propagates.

    Durability: every harvested chunk of *computed* work is appended
    to ``journal`` (cache hits are already durable and never
    journaled), and ``replay`` marks journaled keys the cache served
    back on a ``--resume`` run. ``guard`` is the graceful-shutdown
    flag: it is checked before each new item is dispatched, so an
    interrupt stops new work, drains the chunks that already finished
    (caching + journaling their results) and cancels the rest before
    :class:`~repro.errors.RunInterrupted` propagates.
    """
    policy = config.error_policy
    faults = config.faults
    probe_cache = cache is not None and stage.cache_key_fn is not None
    results: dict[int, Any] = {}
    keys: dict[int, str] = {}
    rows: dict[int, Any] = {}
    digests: dict[int, str | None] = {}
    jkeys: dict[int, str | None] = {}
    failures: list[ProjectFailure] = []
    retries = 0
    degraded = False
    worker_deltas = [0] * N_COUNTER_SLOTS
    total = 0
    hits = 0
    merges = 0

    def parent_fault(item: Any) -> None:
        """Fire run-level injected faults at this item's dispatch."""
        kind = faults.parent_kind(item_id(item), stage.name)
        if kind is None:
            return
        if kind == "kill":
            # A deterministic in-process `kill -9`: no drain, no
            # journal end record, no ledger row — exactly what the
            # resume path must recover from.
            os._exit(KILL_EXIT_STATUS)
        elif kind == "interrupt" and guard is not None:
            guard.trigger(f"injected interrupt at {item_id(item)}")
        elif kind == "enospc":
            if cache is not None:
                cache.deny_writes()
            if journal is not None:
                journal.deny_writes()

    def probe(index: int, item: Any) -> bool:
        """Serve ``item`` from cache; True when it still needs work."""
        nonlocal hits
        if faults is not None:
            parent_fault(item)
        if not probe_cache:
            return True
        key = stage.cache_key_fn(item, extras, stage.version)
        if faults is not None and faults.wants_cache_corruption(
                item_id(item), stage.name):
            cache.corrupt_entry(key)
        value = cache.get(key)
        if value is MISS:
            keys[index] = key
            return True
        results[index] = value
        if stage.pack_fn is not None:
            # Cache hits never reach a worker: pack them here so the
            # table covers hot, cold and mixed runs alike.
            rows[index] = stage.pack_fn(value)
        hits += 1
        if replay is not None and replay.contains(key):
            replay.mark(key)
        return False

    def absorb(index: int, outcome: tuple, count_delta: bool,
               transported: bool) -> None:
        nonlocal retries
        payload, delta, item_retries, row = outcome
        retries += item_retries
        if count_delta:
            for slot in range(N_COUNTER_SLOTS):
                worker_deltas[slot] += delta[slot]
        results[index] = payload
        if row is not None:
            rows[index] = row
        if isinstance(payload, ProjectFailure):
            failures.append(payload)
        else:
            key = keys.pop(index, None)
            if key is not None:
                stripped = payload
                if stage.transport_fn is not None and not transported:
                    # Serial path: results stay untransported; shed
                    # the derived caches only for the on-disk copy.
                    stripped = stage.transport_fn(payload)
                jkeys[index] = key
                digests[index] = cache.put(key, stripped)

    def journal_chunk(positions: list[int], outbound: list) -> None:
        """Journal one harvested chunk's computed survivors."""
        if journal is None:
            return
        entries = []
        for index, item in zip(positions, outbound):
            if isinstance(results.get(index), ProjectFailure):
                continue
            entries.append((item_id(item), jkeys.get(index),
                            digests.get(index)))
        journal.chunk(stage.name, entries)

    chosen_chunk = 0
    if config.jobs > 1:
        chunk = config.chunk_size or stage.chunk_size \
            or _auto_chunk(_count_hint(items), config.jobs)
        chosen_chunk = chunk
        window = WINDOW_PER_JOB * config.jobs
        worker = partial(_invoke_map, stage.fn, stage.transport_fn,
                         stage.pack_fn, extras, stage.name, policy,
                         faults, 0)
        pool = None
        inflight: deque[tuple[list[int], list, Any]] = deque()
        backlog: list[tuple[int, Any]] = []
        buffer: list[tuple[int, Any]] = []
        broken = False
        abandoned = False
        harvested = False

        def submit_buffer() -> None:
            """Ship the accumulated chunk, or backlog it (dead pool)."""
            nonlocal pool, broken, degraded
            if not buffer:
                return
            positions = [index for index, _ in buffer]
            outbound = [item for _, item in buffer]
            buffer.clear()
            if broken or abandoned:
                backlog.extend(zip(positions, outbound))
                return
            try:
                if pool is None:
                    pool = session.pool(config.jobs)
                future = pool.submit(_invoke_chunk, worker, outbound)
            except BrokenProcessPool:
                # A reused pool can die while idle between stages;
                # backlog this chunk, then triage what was in flight.
                broken = True
                degraded = True
                backlog.extend(zip(positions, outbound))
                while inflight:
                    harvest_oldest()
                return
            inflight.append((positions, outbound, future))

        def harvest_oldest() -> None:
            """Absorb the oldest in-flight chunk (FIFO, as submitted)."""
            nonlocal broken, abandoned, degraded, merges
            positions, outbound, future = inflight.popleft()
            if broken:
                # The pool is dead; harvest chunks that finished
                # before the crash, re-run the rest serially.
                if future.done() and not future.cancelled() \
                        and future.exception() is None:
                    for index, triple in zip(positions,
                                             future.result()):
                        absorb(index, triple, True, True)
                    if stage.pack_fn is not None:
                        merges += 1
                    journal_chunk(positions, outbound)
                else:
                    backlog.extend(zip(positions, outbound))
                return
            try:
                triples = future.result(timeout=config.stage_timeout)
            except FuturesTimeout:
                degraded = True
                abandoned = True
                if not policy.captures:
                    raise EngineError(
                        f"stage {stage.name!r}: a work chunk of "
                        f"{len(positions)} items did not finish "
                        f"within {config.stage_timeout}s") from None
                for index, item in zip(positions, outbound):
                    failure = ProjectFailure(
                        project=item_id(item),
                        stage=stage.name,
                        error_type="TimeoutError",
                        message=f"work chunk exceeded the "
                                f"{config.stage_timeout}s "
                                f"stage timeout")
                    results[index] = failure
                    failures.append(failure)
                return
            except BrokenProcessPool:
                broken = True
                degraded = True
                backlog.extend(zip(positions, outbound))
                return
            for index, triple in zip(positions, triples):
                absorb(index, triple, True, True)
            if stage.pack_fn is not None:
                # One partial pack merged FIFO into the growing table.
                merges += 1
            journal_chunk(positions, outbound)

        try:
            for item in items:
                if guard is not None:
                    guard.check()
                index = total
                total += 1
                if not probe(index, item):
                    continue
                if stage.item_transport_fn is not None:
                    item = stage.item_transport_fn(item)
                buffer.append((index, item))
                if len(buffer) >= chunk:
                    submit_buffer()
                    # Backpressure: a full window stops the iterator
                    # until the oldest chunk comes home.
                    while len(inflight) >= window:
                        harvest_oldest()
            if guard is not None:
                guard.check()
            submit_buffer()
            while inflight:
                harvest_oldest()
            harvested = True
        except RunInterrupted:
            # Graceful shutdown: stop dispatching, drain the chunks
            # that already finished — their results are real work, so
            # cache and journal them — and cancel everything else.
            while inflight:
                positions, outbound, future = inflight.popleft()
                if future.done() and not future.cancelled() \
                        and future.exception() is None:
                    for index, triple in zip(positions,
                                             future.result()):
                        absorb(index, triple, True, True)
                    if stage.pack_fn is not None:
                        merges += 1
                    journal_chunk(positions, outbound)
                else:
                    future.cancel()
            raise
        finally:
            if broken or abandoned:
                # Dead or stuck pools cannot be reused: discard so
                # the session respawns a fresh one on next use. A
                # timed-out chunk's worker cannot be interrupted —
                # abandon it rather than blocking on it.
                session.discard_pool(wait=False)
            elif not harvested:
                # A propagating exception (fail-fast item error):
                # the pool itself is healthy — cancel what has not
                # started and keep it for the next run.
                for _, _, future in inflight:
                    future.cancel()
        if backlog:
            # Pool-crash / abandon recovery: finish in-process, one
            # attempt later than the pool pass so one-shot injected
            # crashes do not re-fire.
            recover = partial(_invoke_map, stage.fn,
                              stage.transport_fn, stage.pack_fn,
                              extras, stage.name, policy, faults, 1)
            for index, item in backlog:
                if guard is not None:
                    guard.check()
                absorb(index, recover(item), False, True)
            if stage.pack_fn is not None:
                merges += 1
            journal_chunk([index for index, _ in backlog],
                          [item for _, item in backlog])
    else:
        invoke = partial(_invoke_map, stage.fn, None, stage.pack_fn,
                         extras, stage.name, policy, faults, 0)
        for item in items:
            if guard is not None:
                guard.check()
            index = total
            total += 1
            if probe(index, item):
                absorb(index, invoke(item), False, False)
                # Serial chunks are single items: each computed item
                # becomes durable (and resumable) as soon as it lands.
                journal_chunk([index], [item])

    if failures and len(failures) == total:
        summary = "; ".join(f.summary() for f in failures[:3])
        raise EngineError(
            f"stage {stage.name!r}: all {total} items failed "
            f"({summary}{', ...' if len(failures) > 3 else ''})")
    values = [results[index] for index in range(total)
              if not isinstance(results[index], ProjectFailure)]
    pack = None
    if stage.pack_finish_fn is not None:
        # Survivors only, item order — rows parallel `values` exactly.
        pack = stage.pack_finish_fn(
            [rows[index] for index in sorted(rows)])
    return _MapOutcome(values=values, count=total, hits=hits,
                       misses=total - hits,
                       worker_delta=tuple(worker_deltas),
                       failures=failures, retries=retries,
                       degraded=degraded, chunk_size=chosen_chunk,
                       pack=pack, pack_merges=merges)


def _early_fingerprint(inputs: Mapping[str, Any]) -> str | None:
    """The studied source's identity *before* any work has run.

    The journal's ``begin`` record needs a source identity up front,
    but :func:`_source_fingerprint`'s stream-digest fallback is only
    valid after the handles are consumed. The cheap session key covers
    every source-driven plan; identity-less inputs journal ``None``
    and skip the resume source check.
    """
    source = inputs.get("source")
    if source is not None:
        return source_session_key(source)
    return None


def _source_fingerprint(inputs: Mapping[str, Any]) -> str:
    """A stable content identity of what a plan execution studied.

    Prefers the source's own session key, then the handle fingerprints,
    then the mapped item ids — each a cheap, already-available proxy
    for the studied content.
    """
    source = inputs.get("source")
    if source is not None:
        key = source_session_key(source)
        if key is not None:
            return key
    handles = inputs.get("handles")
    if handles is not None:
        # A consumed HandleStream cannot be re-iterated; its running
        # digest over every (pid, fingerprint) pair stands in.
        stream_digest = getattr(handles, "stream_digest", None)
        if stream_digest is not None:
            return stream_digest()
        if handles:
            return fingerprint("run-handles",
                               [(h.pid, h.fingerprint)
                                for h in handles])
    for name in ("projects", "records"):
        items = inputs.get(name)
        if items:
            return fingerprint(f"run-{name}",
                               [item_id(item) for item in items])
    return fingerprint("run-inputs", sorted(inputs))


def _result_digest(results: Mapping[str, Any]) -> str:
    """A stable digest of a run's study records (ledger lineage).

    Two executions over the same data and code digest identically —
    the ledger-level form of the golden-equivalence guarantee. Plans
    without a ``records`` stage digest their stage names.
    """
    records = results.get("records")
    if records:
        return fingerprint("run-records", [
            (item_id(record),
             getattr(getattr(record, "pattern", None), "value", None),
             getattr(record, "is_exception", None))
            for record in records])
    return fingerprint("run-stages", sorted(results))


def _config_summary(config: StudyConfig) -> dict:
    """The config fields worth keeping in a ledger entry."""
    return {
        "seed": config.seed,
        "jobs": config.jobs,
        "source": config.source,
        "cache_dir": str(config.cache_dir)
        if config.cache_dir is not None else None,
        "chunk_size": config.chunk_size,
        "sample": config.sample,
        "stratified": config.stratified,
        "on_error": config.error_policy.mode,
        "stage_timeout": config.stage_timeout,
        "delta": config.delta,
        "resume_from": config.resume_from,
    }


def execute_plan(plan: StudyPlan, inputs: Mapping[str, Any],
                 config: StudyConfig | None = None,
                 session: EngineSession | None = None
                 ) -> tuple[dict[str, Any], ExecutionReport]:
    """Execute every stage of ``plan`` and return all stage results.

    Args:
        plan: the stage DAG.
        inputs: initial values available to stages (by name).
        config: execution configuration; defaults to serial/no-cache.
        session: the engine session owning pool, warm cache and run
            ledger. ``None`` opens a throwaway session around this one
            call — identical to the historical per-call behavior.

    Returns:
        ``(results, report)`` — results maps every input and stage name
        to its value; the report carries per-stage timings, quarantined
        :class:`ProjectFailure` records and the degraded-run flag.

    Raises:
        EngineError: for invalid plans (unknown inputs, cycles), or —
            under the fail-fast policy — whatever a stage raised.
        RunInterrupted: the run was stopped by SIGINT/SIGTERM (or an
            injected ``interrupt`` fault) — completed chunks were
            drained, journal and ledger were flushed, and the ledger
            row is marked ``interrupted`` before this propagates.
    """
    config = config or StudyConfig()
    if session is None:
        with EngineSession(config) as owned:
            return execute_plan(plan, inputs, config, session=owned)
    cache = session.cache_for(config.cache_dir)
    # Session state persists across runs; ledger numbers are deltas.
    quarantined_before = cache.quarantined if cache is not None else 0
    hot_before = cache.hot_hits if cache is not None else 0
    hot_misses_before = cache.hot_misses if cache is not None else 0
    evictions_before = cache.evictions if cache is not None else 0
    write_failures_before = \
        cache.write_failures if cache is not None else 0
    pruned_before = cache.pruned if cache is not None else 0
    spawns_before = session.pool_spawns
    started_at = datetime.now(timezone.utc)
    run_started = time.perf_counter()
    results: dict[str, Any] = dict(inputs)
    report = ExecutionReport()
    # Stages are pulled from the DAG's live ready-set: a stage runs as
    # soon as every value it consumes — stage results and secondary
    # pack outputs alike — has been published into ``results``, so a
    # shared value like the record table is produced once and handed
    # to each ready consumer by reference.
    schedule = plan.schedule(tuple(inputs))

    def ready_stages():
        while not schedule.done:
            yield from schedule.take_ready()

    # Durability: runs with a cache dir journal every completed chunk
    # (so a killed run resumes instead of recomputing) and resumes
    # load the interrupted run's journal as a replay set. The run id
    # is operational metadata only — it never feeds cache keys or
    # study output, so randomness here cannot perturb reproducibility.
    run_uid = new_run_id()
    journal: RunJournal | None = None
    replay: JournalReplay | None = None
    if config.cache_dir is not None:
        source_key = _early_fingerprint(inputs)
        if config.resume_from:
            replay = load_replay(config.cache_dir, config.resume_from)
            replay.verify_source(source_key)
        journal = RunJournal.begin(
            config.cache_dir, run_uid, source=source_key,
            config=_config_summary(config),
            resumed_from=config.resume_from)
    interrupted = False
    with interrupt_guard(run_uid if journal is not None
                         else None) as guard:
        try:
            for stage in ready_stages():
                guard.check()
                config.emit(StageEvent(stage=stage.name, phase="start"))
                started = time.perf_counter()
                local_before = (parse_counters() + kernel_counters()
                                + pack_counters() + delta_counters())
                hits = misses = stage_failures = stage_retries = 0
                worker_delta = (0,) * N_COUNTER_SLOTS
                items: int | None = None
                chunk_size = 0
                pack_merges = 0
                if isinstance(stage, MapStage):
                    # The first input may be a lazily enumerated
                    # stream — it is handed to the map stage as-is and
                    # consumed exactly once, never materialized here.
                    feed = results[stage.inputs[0]]
                    extras = tuple(results[name]
                                   for name in stage.inputs[1:])
                    outcome = _run_map_stage(stage, feed, extras,
                                             config, cache, session,
                                             journal=journal,
                                             replay=replay,
                                             guard=guard)
                    value = outcome.values
                    hits, misses = outcome.hits, outcome.misses
                    worker_delta = outcome.worker_delta
                    stage_failures = len(outcome.failures)
                    stage_retries = outcome.retries
                    report.failures.extend(outcome.failures)
                    report.degraded = report.degraded \
                        or outcome.degraded
                    items = outcome.count
                    chunk_size = outcome.chunk_size
                    pack_merges = outcome.pack_merges
                    if stage.pack_output is not None:
                        results[stage.pack_output] = outcome.pack
                else:
                    value = stage.fn(*(results[name]
                                       for name in stage.inputs))
                elapsed = time.perf_counter() - started
                local_after = (parse_counters() + kernel_counters()
                               + pack_counters() + delta_counters())
                # Counter activity of this stage: in-process delta
                # (serial maps, ordinary stages) plus whatever the
                # workers shipped back.
                parse_hits, parse_misses, kernel_series, kernel_reuse, \
                    pack_rows, delta_appended, delta_rewritten, \
                    delta_reused, delta_parsed = (
                        local_after[slot] - local_before[slot]
                        + worker_delta[slot]
                        for slot in range(N_COUNTER_SLOTS))
                results[stage.name] = value
                schedule.complete(stage.name)
                report.timings.append(StageTiming(
                    stage=stage.name, seconds=elapsed, items=items,
                    cache_hits=hits, cache_misses=misses,
                    parse_hits=parse_hits, parse_misses=parse_misses,
                    kernel_series=kernel_series,
                    kernel_reuse=kernel_reuse,
                    failures=stage_failures, retries=stage_retries,
                    chunk_size=chunk_size, pack_rows=pack_rows,
                    pack_merges=pack_merges,
                    delta_appended=delta_appended,
                    delta_rewritten=delta_rewritten,
                    delta_reused=delta_reused,
                    delta_parsed=delta_parsed))
                config.emit(StageEvent(
                    stage=stage.name, phase="finish", seconds=elapsed,
                    items=items or 0, cache_hits=hits,
                    cache_misses=misses,
                    parse_hits=parse_hits, parse_misses=parse_misses,
                    kernel_series=kernel_series,
                    kernel_reuse=kernel_reuse,
                    failures=stage_failures, retries=stage_retries,
                    chunk_size=chunk_size, pack_rows=pack_rows,
                    pack_merges=pack_merges,
                    delta_appended=delta_appended,
                    delta_rewritten=delta_rewritten,
                    delta_reused=delta_reused,
                    delta_parsed=delta_parsed))
        except RunInterrupted:
            interrupted = True
    if cache is not None:
        report.quarantined = cache.quarantined - quarantined_before
        report.hot_hits = cache.hot_hits - hot_before
        report.hot_misses = cache.hot_misses - hot_misses_before
        report.evictions = cache.evictions - evictions_before
        report.write_failures = \
            cache.write_failures - write_failures_before
        report.pruned = cache.pruned - pruned_before
    report.run_uid = run_uid if journal is not None else ""
    report.resumed_from = config.resume_from
    if replay is not None:
        report.journal_replayed = replay.chunks_replayed
        report.journal_replayed_items = replay.items_replayed
    if journal is not None:
        report.journal_chunks = journal.chunks
        report.journal_degraded = journal.memory_only
        # Flush the run's fate before the ledger row: a crash between
        # the two leaves the journal resumable, never the other way.
        journal.mark("interrupted" if interrupted else "complete")
    session.record_run(RunRecord(
        run_id=session.next_run_id(),
        started=started_at.isoformat(),
        seconds=time.perf_counter() - run_started,
        source_fingerprint=_source_fingerprint(inputs),
        config=_config_summary(config),
        stages=tuple(_timing_dict(t) for t in report.timings),
        items=sum(t.items or 0 for t in report.timings),
        cache_hits=report.cache_hits,
        cache_misses=report.cache_misses,
        hot_hits=report.hot_hits,
        hot_misses=report.hot_misses,
        evictions=report.evictions,
        parse_hits=report.parse_hits,
        parse_misses=report.parse_misses,
        kernel_series=report.kernel_series,
        kernel_reuse=report.kernel_reuse,
        failures=tuple(f.summary() for f in report.failures),
        degraded=report.degraded,
        quarantined=report.quarantined,
        retries=report.retries,
        pack_rows=report.pack_rows,
        delta_appended=report.delta_appended,
        delta_rewritten=report.delta_rewritten,
        delta_reused=report.delta_reused,
        delta_parsed=report.delta_parsed,
        pool_spawns=session.pool_spawns - spawns_before,
        result_digest=_result_digest(results),
        run_uid=report.run_uid,
        interrupted=interrupted,
        resumed_from=config.resume_from,
        journal_chunks=report.journal_chunks,
        journal_replayed=report.journal_replayed,
        write_failures=report.write_failures,
        pruned=report.pruned,
    ), config.cache_dir)
    if interrupted:
        raise RunInterrupted(report.run_uid or None)
    return results, report


def _timing_dict(timing: StageTiming) -> dict:
    """One :class:`StageTiming` as a compact ledger dict."""
    entry: dict[str, Any] = {
        "stage": timing.stage,
        "ms": round(timing.seconds * 1000, 3),
    }
    if timing.items is not None:
        entry["items"] = timing.items
        entry["cache_hits"] = timing.cache_hits
        entry["cache_misses"] = timing.cache_misses
    for name in ("parse_hits", "parse_misses", "kernel_series",
                 "kernel_reuse", "failures", "retries", "chunk_size",
                 "pack_rows", "pack_merges", "delta_appended",
                 "delta_rewritten", "delta_reused", "delta_parsed"):
        value = getattr(timing, name)
        if value:
            entry[name] = value
    return entry


def run_stage(stage: Stage, *args: Any) -> Any:
    """Run one stage standalone (convenience for tests and notebooks)."""
    return stage.fn(*args)
