"""Plan execution: serial and process-parallel backends, timing report.

:func:`execute_plan` walks a :class:`~repro.engine.stage.StudyPlan` in
topological order. Ordinary stages run in-process; :class:`MapStage`
items are first served from the content-addressed cache, and the
remainder is computed either serially or fanned out over a
``ProcessPoolExecutor`` (``config.jobs``) in pickled chunks sized to
amortize serialization overhead. Per-stage wall-clock timings and
cache statistics are collected into an :class:`ExecutionReport` and
streamed to the config's progress hook.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Mapping

from repro.engine.cache import MISS, ResultCache
from repro.engine.config import StudyConfig
from repro.engine.stage import MapStage, Stage, StageEvent, StudyPlan
from repro.errors import EngineError
from repro.history.kernel import kernel_counters
from repro.sqlddl.memo import parse_counters


@dataclass(frozen=True)
class StageTiming:
    """Wall-clock and cache accounting for one executed stage.

    Attributes:
        stage: stage name.
        seconds: wall-clock duration of the stage.
        items: mapped item count (map stages; None otherwise).
        cache_hits: items served from the result cache.
        cache_misses: items computed this run.
        parse_hits: statement-memo hits during the stage (statements the
            incremental parse path reused instead of re-parsing; summed
            over worker processes).
        parse_misses: statement-memo misses (statements actually parsed).
        kernel_series: activity-series prefix tables built during the
            stage (heartbeat kernel; summed over worker processes).
        kernel_reuse: prefix-table lookups served from the per-series
            memo instead of recomputing the cumulative arrays.
    """

    stage: str
    seconds: float
    items: int | None = None
    cache_hits: int = 0
    cache_misses: int = 0
    parse_hits: int = 0
    parse_misses: int = 0
    kernel_series: int = 0
    kernel_reuse: int = 0


@dataclass
class ExecutionReport:
    """Per-stage timings of one plan execution."""

    timings: list[StageTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Wall-clock total over all stages."""
        return sum(t.seconds for t in self.timings)

    @property
    def cache_hits(self) -> int:
        """Items served from the result cache, over all map stages."""
        return sum(t.cache_hits for t in self.timings)

    @property
    def cache_misses(self) -> int:
        """Items computed this run, over all map stages."""
        return sum(t.cache_misses for t in self.timings)

    @property
    def parse_hits(self) -> int:
        """Statement-memo hits over all stages (incremental parsing)."""
        return sum(t.parse_hits for t in self.timings)

    @property
    def parse_misses(self) -> int:
        """Statement-memo misses (statements parsed) over all stages."""
        return sum(t.parse_misses for t in self.timings)

    @property
    def kernel_series(self) -> int:
        """Heartbeat-kernel prefix tables built, over all stages."""
        return sum(t.kernel_series for t in self.timings)

    @property
    def kernel_reuse(self) -> int:
        """Heartbeat-kernel memo-served lookups, over all stages."""
        return sum(t.kernel_reuse for t in self.timings)

    def timing(self, stage: str) -> StageTiming:
        """The timing entry of one stage.

        Raises:
            EngineError: when the stage did not execute.
        """
        for entry in self.timings:
            if entry.stage == stage:
                return entry
        raise EngineError(f"no timing recorded for stage {stage!r}")

    def format_table(self) -> str:
        """The timings as an aligned text table."""
        from repro.viz.tables import format_table

        def hit_miss(hits: int, misses: int) -> str:
            if hits or misses:
                return f"{hits} hit / {misses} miss"
            return "-"

        def built_reuse(series: int, reuse: int) -> str:
            if series or reuse:
                return f"{series} built / {reuse} reuse"
            return "-"

        rows = []
        for entry in self.timings:
            rows.append([
                entry.stage,
                f"{entry.seconds * 1000:.1f} ms",
                "-" if entry.items is None else entry.items,
                hit_miss(entry.cache_hits, entry.cache_misses),
                hit_miss(entry.parse_hits, entry.parse_misses),
                built_reuse(entry.kernel_series, entry.kernel_reuse),
            ])
        rows.append(["TOTAL", f"{self.total_seconds * 1000:.1f} ms", "-",
                     hit_miss(self.cache_hits, self.cache_misses),
                     hit_miss(self.parse_hits, self.parse_misses),
                     built_reuse(self.kernel_series, self.kernel_reuse)])
        return format_table(
            ["stage", "time", "items", "cache", "parse memo",
             "heartbeat kernel"], rows,
            title="Execution report")


def _invoke_map(fn: Callable, transport: Callable | None,
                extras: tuple, item: Any
                ) -> tuple[Any, tuple[int, int, int, int]]:
    """Apply a map stage to one item (module-level: must pickle).

    Returns the (transported) result plus the statement-memo and
    heartbeat-kernel deltas the call produced, so worker processes can
    ship their counters back to the parent alongside the payload.
    """
    before_hits, before_misses = parse_counters()
    before_series, before_reuse = kernel_counters()
    result = fn(item, *extras)
    if transport is not None:
        result = transport(result)
    after_hits, after_misses = parse_counters()
    after_series, after_reuse = kernel_counters()
    return result, (after_hits - before_hits, after_misses - before_misses,
                    after_series - before_series, after_reuse - before_reuse)


def _auto_chunk(pending: int, jobs: int) -> int:
    """Items per pickled chunk: ~4 chunks per worker, at least 1."""
    return max(1, math.ceil(pending / (jobs * 4)))


def _run_map_stage(stage: MapStage, items: list, extras: tuple,
                   config: StudyConfig,
                   cache: ResultCache | None
                   ) -> tuple[list, int, int, tuple[int, int, int, int]]:
    """Execute one map stage.

    Returns ``(results, hits, misses, worker_delta)``; the last element
    sums the statement-memo (hits, misses) and heartbeat-kernel
    (series, reuse) counters that ticked in worker processes —
    invisible to this process's own counters.
    """
    results: list[Any] = [None] * len(items)
    pending = list(range(len(items)))
    keys: dict[int, str] = {}
    if cache is not None and stage.cache_key_fn is not None:
        pending = []
        for index, item in enumerate(items):
            key = stage.cache_key_fn(item, extras, stage.version)
            keys[index] = key
            value = cache.get(key)
            if value is MISS:
                pending.append(index)
            else:
                results[index] = value
    hits = len(items) - len(pending)

    worker_deltas = [0, 0, 0, 0]
    if pending:
        if config.jobs > 1 and len(pending) > 1:
            worker = partial(_invoke_map, stage.fn, stage.transport_fn,
                             extras)
            chunk = config.chunk_size \
                or _auto_chunk(len(pending), config.jobs)
            outbound = [items[i] for i in pending]
            if stage.item_transport_fn is not None:
                outbound = [stage.item_transport_fn(item)
                            for item in outbound]
            with ProcessPoolExecutor(max_workers=config.jobs) as pool:
                computed = list(pool.map(worker, outbound,
                                         chunksize=chunk))
            for index, (value, delta) in zip(pending, computed):
                results[index] = value
                for slot in range(4):
                    worker_deltas[slot] += delta[slot]
                if cache is not None and index in keys:
                    cache.put(keys[index], value)
        else:
            for index in pending:
                value = stage.fn(items[index], *extras)
                results[index] = value
                if cache is not None and index in keys:
                    stripped = value if stage.transport_fn is None \
                        else stage.transport_fn(value)
                    cache.put(keys[index], stripped)
    return results, hits, len(pending), tuple(worker_deltas)


def execute_plan(plan: StudyPlan, inputs: Mapping[str, Any],
                 config: StudyConfig | None = None
                 ) -> tuple[dict[str, Any], ExecutionReport]:
    """Execute every stage of ``plan`` and return all stage results.

    Args:
        plan: the stage DAG.
        inputs: initial values available to stages (by name).
        config: execution configuration; defaults to serial/no-cache.

    Returns:
        ``(results, report)`` — results maps every input and stage name
        to its value; the report carries per-stage timings.

    Raises:
        EngineError: for invalid plans (unknown inputs, cycles).
    """
    config = config or StudyConfig()
    cache = ResultCache(config.cache_dir) \
        if config.cache_dir is not None else None
    results: dict[str, Any] = dict(inputs)
    report = ExecutionReport()
    for stage in plan.execution_order(tuple(inputs)):
        config.emit(StageEvent(stage=stage.name, phase="start"))
        started = time.perf_counter()
        local_before = parse_counters() + kernel_counters()
        hits = misses = 0
        worker_delta = (0, 0, 0, 0)
        items: int | None = None
        if isinstance(stage, MapStage):
            source = list(results[stage.inputs[0]])
            extras = tuple(results[name] for name in stage.inputs[1:])
            value, hits, misses, worker_delta = _run_map_stage(
                stage, source, extras, config, cache)
            items = len(source)
        else:
            value = stage.fn(*(results[name] for name in stage.inputs))
        elapsed = time.perf_counter() - started
        local_after = parse_counters() + kernel_counters()
        # Counter activity of this stage: in-process delta (serial maps,
        # ordinary stages) plus whatever the workers shipped back.
        parse_hits, parse_misses, kernel_series, kernel_reuse = (
            local_after[slot] - local_before[slot] + worker_delta[slot]
            for slot in range(4))
        results[stage.name] = value
        report.timings.append(StageTiming(
            stage=stage.name, seconds=elapsed, items=items,
            cache_hits=hits, cache_misses=misses,
            parse_hits=parse_hits, parse_misses=parse_misses,
            kernel_series=kernel_series, kernel_reuse=kernel_reuse))
        config.emit(StageEvent(
            stage=stage.name, phase="finish", seconds=elapsed,
            items=items or 0, cache_hits=hits, cache_misses=misses,
            parse_hits=parse_hits, parse_misses=parse_misses,
            kernel_series=kernel_series, kernel_reuse=kernel_reuse))
    return results, report


def run_stage(stage: Stage, *args: Any) -> Any:
    """Run one stage standalone (convenience for tests and notebooks)."""
    return stage.fn(*args)
