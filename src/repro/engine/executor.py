"""Plan execution: serial and process-parallel backends, timing report.

:func:`execute_plan` walks a :class:`~repro.engine.stage.StudyPlan` in
topological order. Ordinary stages run in-process; :class:`MapStage`
items are first served from the content-addressed cache, and the
remainder is computed either serially or fanned out over a
``ProcessPoolExecutor`` (``config.jobs``) in pickled chunks sized to
amortize serialization overhead. Per-stage wall-clock timings and
cache statistics are collected into an :class:`ExecutionReport` and
streamed to the config's progress hook.

Map stages are fault-tolerant: every item runs under the config's
:class:`~repro.engine.faults.ErrorPolicy` (fail fast / skip / retry
with backoff), each in-flight chunk is bounded by
``config.stage_timeout``, and a dead worker pool (``BrokenProcessPool``)
triggers serial re-execution of the unfinished chunks instead of
killing the run — the run is then marked *degraded*. Quarantined
projects surface as :class:`~repro.engine.faults.ProjectFailure`
records on the report; downstream stages see only the survivors,
exactly as the paper computes over the 151 survivors of its 195 mined
histories.

Execution state (pool, cache, ledger) is owned by an
:class:`~repro.engine.session.EngineSession`: pass one to
:func:`execute_plan` to keep the pool and the cache's hot layer warm
across runs; omit it and a throwaway session is opened and closed
around the call, reproducing the historical one-shot behavior exactly.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from datetime import datetime, timezone
from functools import partial
from typing import Any, Callable, Mapping

from repro.engine.cache import MISS, fingerprint
from repro.engine.config import StudyConfig
from repro.engine.faults import (
    ErrorPolicy,
    FaultPlan,
    ProjectFailure,
    item_id,
)
from repro.engine.session import (
    EngineSession,
    HotResultCache,
    RunRecord,
    source_session_key,
)
from repro.engine.stage import MapStage, Stage, StageEvent, StudyPlan
from repro.errors import EngineError
from repro.history.kernel import kernel_counters
from repro.sqlddl.memo import parse_counters


@dataclass(frozen=True)
class StageTiming:
    """Wall-clock and cache accounting for one executed stage.

    Attributes:
        stage: stage name.
        seconds: wall-clock duration of the stage.
        items: mapped item count (map stages; None otherwise).
        cache_hits: items served from the result cache.
        cache_misses: items computed this run.
        parse_hits: statement-memo hits during the stage (statements the
            incremental parse path reused instead of re-parsing; summed
            over worker processes).
        parse_misses: statement-memo misses (statements actually parsed).
        kernel_series: activity-series prefix tables built during the
            stage (heartbeat kernel; summed over worker processes).
        kernel_reuse: prefix-table lookups served from the per-series
            memo instead of recomputing the cumulative arrays.
        failures: items quarantined under a skip/retry error policy.
        retries: extra attempts spent on transient per-item failures.
    """

    stage: str
    seconds: float
    items: int | None = None
    cache_hits: int = 0
    cache_misses: int = 0
    parse_hits: int = 0
    parse_misses: int = 0
    kernel_series: int = 0
    kernel_reuse: int = 0
    failures: int = 0
    retries: int = 0


@dataclass
class ExecutionReport:
    """Per-stage timings and fault accounting of one plan execution.

    Attributes:
        timings: one :class:`StageTiming` per executed stage.
        failures: every project quarantined during the run, in stage
            then item order (empty under the default fail-fast policy,
            which raises instead).
        degraded: True when the process pool died or timed out and the
            run fell back to serial re-execution for part of the work.
        quarantined: corrupt cache entries detected, moved aside and
            recomputed during the run (cache self-healing).
    """

    timings: list[StageTiming] = field(default_factory=list)
    failures: list[ProjectFailure] = field(default_factory=list)
    degraded: bool = False
    quarantined: int = 0

    @property
    def total_seconds(self) -> float:
        """Wall-clock total over all stages."""
        return sum(t.seconds for t in self.timings)

    @property
    def cache_hits(self) -> int:
        """Items served from the result cache, over all map stages."""
        return sum(t.cache_hits for t in self.timings)

    @property
    def cache_misses(self) -> int:
        """Items computed this run, over all map stages."""
        return sum(t.cache_misses for t in self.timings)

    @property
    def parse_hits(self) -> int:
        """Statement-memo hits over all stages (incremental parsing)."""
        return sum(t.parse_hits for t in self.timings)

    @property
    def parse_misses(self) -> int:
        """Statement-memo misses (statements parsed) over all stages."""
        return sum(t.parse_misses for t in self.timings)

    @property
    def kernel_series(self) -> int:
        """Heartbeat-kernel prefix tables built, over all stages."""
        return sum(t.kernel_series for t in self.timings)

    @property
    def kernel_reuse(self) -> int:
        """Heartbeat-kernel memo-served lookups, over all stages."""
        return sum(t.kernel_reuse for t in self.timings)

    @property
    def retries(self) -> int:
        """Extra per-item attempts spent, over all stages."""
        return sum(t.retries for t in self.timings)

    def timing(self, stage: str) -> StageTiming:
        """The timing entry of one stage.

        Raises:
            EngineError: when the stage did not execute.
        """
        for entry in self.timings:
            if entry.stage == stage:
                return entry
        raise EngineError(f"no timing recorded for stage {stage!r}")

    def format_table(self) -> str:
        """The timings as an aligned text table."""
        from repro.viz.tables import format_table

        def hit_miss(hits: int, misses: int) -> str:
            if hits or misses:
                return f"{hits} hit / {misses} miss"
            return "-"

        def built_reuse(series: int, reuse: int) -> str:
            if series or reuse:
                return f"{series} built / {reuse} reuse"
            return "-"

        def fault_cell(failures: int, retries: int) -> str:
            if failures or retries:
                return f"{failures} fail / {retries} retry"
            return "-"

        rows = []
        for entry in self.timings:
            rows.append([
                entry.stage,
                f"{entry.seconds * 1000:.1f} ms",
                "-" if entry.items is None else entry.items,
                hit_miss(entry.cache_hits, entry.cache_misses),
                hit_miss(entry.parse_hits, entry.parse_misses),
                built_reuse(entry.kernel_series, entry.kernel_reuse),
                fault_cell(entry.failures, entry.retries),
            ])
        rows.append(["TOTAL", f"{self.total_seconds * 1000:.1f} ms", "-",
                     hit_miss(self.cache_hits, self.cache_misses),
                     hit_miss(self.parse_hits, self.parse_misses),
                     built_reuse(self.kernel_series, self.kernel_reuse),
                     fault_cell(len(self.failures), self.retries)])
        title = "Execution report"
        if self.degraded:
            title += " (degraded: pool lost, partial serial fallback)"
        return format_table(
            ["stage", "time", "items", "cache", "parse memo",
             "heartbeat kernel", "faults"], rows,
            title=title)


def _invoke_map(fn: Callable, transport: Callable | None,
                extras: tuple, stage_name: str, policy: ErrorPolicy,
                faults: FaultPlan | None, attempt_base: int, item: Any
                ) -> tuple[Any, tuple[int, int, int, int], int]:
    """Apply a map stage to one item (module-level: must pickle).

    Runs the item under the error policy: a capturing policy (skip /
    retry) turns exceptions into :class:`ProjectFailure` payloads —
    retrying transient source errors with backoff first — while the
    fail-fast policy lets them propagate exactly as before the fault
    layer existed. ``attempt_base`` offsets the attempt number the
    fault plan sees, so a pool-crash serial re-run counts as a later
    attempt and injected one-shot faults do not re-fire.

    Returns the (transported) result or failure record, the
    statement-memo and heartbeat-kernel deltas the call produced (so
    worker processes can ship their counters back to the parent), and
    the number of retries spent.
    """
    before_hits, before_misses = parse_counters()
    before_series, before_reuse = kernel_counters()
    retries = 0
    attempt = 0
    while True:
        attempt += 1
        try:
            if faults is not None:
                faults.check(item_id(item), stage_name,
                             attempt_base + attempt)
            payload = fn(item, *extras)
            if transport is not None:
                payload = transport(payload)
            break
        except Exception as exc:
            if not policy.captures:
                raise
            if attempt < policy.attempts_for(exc):
                retries += 1
                delay = policy.backoff_seconds(item_id(item), attempt)
                if delay > 0:
                    time.sleep(delay)
                continue
            payload = ProjectFailure.from_exception(
                item_id(item), stage_name, exc, attempts=attempt)
            break
    after_hits, after_misses = parse_counters()
    after_series, after_reuse = kernel_counters()
    return (payload,
            (after_hits - before_hits, after_misses - before_misses,
             after_series - before_series, after_reuse - before_reuse),
            retries)


def _invoke_chunk(invoke: Callable, items: list) -> list:
    """Run one pickled chunk of map items in a worker process."""
    return [invoke(item) for item in items]


def _auto_chunk(pending: int, jobs: int) -> int:
    """Items per pickled chunk: ~4 chunks per worker, at least 1."""
    return max(1, math.ceil(pending / (jobs * 4)))


@dataclass
class _MapOutcome:
    """Everything one map-stage execution produced."""

    values: list
    hits: int
    misses: int
    worker_delta: tuple[int, int, int, int]
    failures: list[ProjectFailure]
    retries: int
    degraded: bool


def _run_map_stage(stage: MapStage, items: list, extras: tuple,
                   config: StudyConfig,
                   cache: HotResultCache | None,
                   session: EngineSession) -> _MapOutcome:
    """Execute one map stage under the config's error policy.

    ``values`` holds only the surviving results, in item order —
    quarantined items are dropped so downstream stages compute over
    the survivors. ``worker_delta`` sums the statement-memo and
    heartbeat-kernel counters that ticked in worker processes
    (invisible to this process's own counters).

    The worker pool comes from (and stays with) ``session``; it is
    only discarded — never shut down inline — when it breaks or a
    timed-out chunk forces an abandon, so healthy pools survive the
    stage and serve the next one warm.
    """
    policy = config.error_policy
    faults = config.faults
    results: list[Any] = [None] * len(items)
    pending = list(range(len(items)))
    keys: dict[int, str] = {}
    if cache is not None and stage.cache_key_fn is not None:
        pending = []
        for index, item in enumerate(items):
            key = stage.cache_key_fn(item, extras, stage.version)
            keys[index] = key
            if faults is not None and faults.wants_cache_corruption(
                    item_id(item), stage.name):
                cache.corrupt_entry(key)
            value = cache.get(key)
            if value is MISS:
                pending.append(index)
            else:
                results[index] = value
    hits = len(items) - len(pending)

    failures: list[ProjectFailure] = []
    retries = 0
    degraded = False
    worker_deltas = [0, 0, 0, 0]

    def absorb(index: int, triple: tuple, count_delta: bool,
               transported: bool) -> None:
        nonlocal retries
        payload, delta, item_retries = triple
        retries += item_retries
        if count_delta:
            for slot in range(4):
                worker_deltas[slot] += delta[slot]
        results[index] = payload
        if isinstance(payload, ProjectFailure):
            failures.append(payload)
        elif cache is not None and index in keys:
            stripped = payload
            if stage.transport_fn is not None and not transported:
                # Serial path: results stay untransported; shed the
                # derived caches only for the on-disk copy.
                stripped = stage.transport_fn(payload)
            cache.put(keys[index], stripped)

    if pending:
        if config.jobs > 1 and len(pending) > 1:
            worker = partial(_invoke_map, stage.fn, stage.transport_fn,
                             extras, stage.name, policy, faults, 0)
            chunk = config.chunk_size \
                or _auto_chunk(len(pending), config.jobs)
            outbound = [items[i] for i in pending]
            if stage.item_transport_fn is not None:
                outbound = [stage.item_transport_fn(item)
                            for item in outbound]
            chunks = [list(range(start, min(start + chunk,
                                            len(pending))))
                      for start in range(0, len(pending), chunk)]
            unfinished: list[int] = []
            abandoned = False
            broken = False
            harvested = False
            futures: list = []
            pool = session.pool(config.jobs)
            try:
                try:
                    futures = [
                        pool.submit(_invoke_chunk, worker,
                                    [outbound[pos] for pos in positions])
                        for positions in chunks
                    ]
                except BrokenProcessPool:
                    # A reused pool can die while idle between stages;
                    # treat everything as unfinished (serial fallback).
                    broken = True
                    degraded = True
                    unfinished.extend(
                        pos for positions in chunks[len(futures):]
                        for pos in positions)
                for positions, future in zip(chunks, futures):
                    if broken:
                        # The pool is dead; harvest chunks that
                        # finished before the crash, re-run the rest.
                        if future.done() and not future.cancelled() \
                                and future.exception() is None:
                            for pos, triple in zip(positions,
                                                   future.result()):
                                absorb(pending[pos], triple, True, True)
                        else:
                            unfinished.extend(positions)
                        continue
                    try:
                        triples = future.result(
                            timeout=config.stage_timeout)
                    except FuturesTimeout:
                        degraded = True
                        if not policy.captures:
                            abandoned = True
                            raise EngineError(
                                f"stage {stage.name!r}: a work chunk "
                                f"of {len(positions)} items did not "
                                f"finish within "
                                f"{config.stage_timeout}s") from None
                        abandoned = True
                        for pos in positions:
                            failure = ProjectFailure(
                                project=item_id(outbound[pos]),
                                stage=stage.name,
                                error_type="TimeoutError",
                                message=f"work chunk exceeded the "
                                        f"{config.stage_timeout}s "
                                        f"stage timeout")
                            results[pending[pos]] = failure
                            failures.append(failure)
                        continue
                    except BrokenProcessPool:
                        broken = True
                        degraded = True
                        unfinished.extend(positions)
                        continue
                    for pos, triple in zip(positions, triples):
                        absorb(pending[pos], triple, True, True)
                harvested = True
            finally:
                if broken or abandoned:
                    # Dead or stuck pools cannot be reused: discard so
                    # the session respawns a fresh one on next use. A
                    # timed-out chunk's worker cannot be interrupted —
                    # abandon it rather than blocking on it.
                    session.discard_pool(wait=False)
                elif not harvested:
                    # A propagating exception (fail-fast item error):
                    # the pool itself is healthy — cancel what has not
                    # started and keep it for the next run.
                    for future in futures:
                        future.cancel()
            if unfinished:
                # Pool-crash recovery: finish in-process, one attempt
                # later than the pool pass so one-shot injected
                # crashes do not re-fire.
                recover = partial(_invoke_map, stage.fn,
                                  stage.transport_fn, extras,
                                  stage.name, policy, faults, 1)
                for pos in unfinished:
                    absorb(pending[pos], recover(outbound[pos]),
                           False, True)
        else:
            invoke = partial(_invoke_map, stage.fn, None, extras,
                             stage.name, policy, faults, 0)
            for index in pending:
                absorb(index, invoke(items[index]), False, False)

    if failures and len(failures) == len(items):
        summary = "; ".join(f.summary() for f in failures[:3])
        raise EngineError(
            f"stage {stage.name!r}: all {len(items)} items failed "
            f"({summary}{', ...' if len(failures) > 3 else ''})")
    values = [value for value in results
              if not isinstance(value, ProjectFailure)]
    return _MapOutcome(values=values, hits=hits, misses=len(pending),
                       worker_delta=tuple(worker_deltas),
                       failures=failures, retries=retries,
                       degraded=degraded)


def _source_fingerprint(inputs: Mapping[str, Any]) -> str:
    """A stable content identity of what a plan execution studied.

    Prefers the source's own session key, then the handle fingerprints,
    then the mapped item ids — each a cheap, already-available proxy
    for the studied content.
    """
    source = inputs.get("source")
    if source is not None:
        key = source_session_key(source)
        if key is not None:
            return key
    handles = inputs.get("handles")
    if handles:
        return fingerprint("run-handles",
                           [(h.pid, h.fingerprint) for h in handles])
    for name in ("projects", "records"):
        items = inputs.get(name)
        if items:
            return fingerprint(f"run-{name}",
                               [item_id(item) for item in items])
    return fingerprint("run-inputs", sorted(inputs))


def _result_digest(results: Mapping[str, Any]) -> str:
    """A stable digest of a run's study records (ledger lineage).

    Two executions over the same data and code digest identically —
    the ledger-level form of the golden-equivalence guarantee. Plans
    without a ``records`` stage digest their stage names.
    """
    records = results.get("records")
    if records:
        return fingerprint("run-records", [
            (item_id(record),
             getattr(getattr(record, "pattern", None), "value", None),
             getattr(record, "is_exception", None))
            for record in records])
    return fingerprint("run-stages", sorted(results))


def _config_summary(config: StudyConfig) -> dict:
    """The config fields worth keeping in a ledger entry."""
    return {
        "seed": config.seed,
        "jobs": config.jobs,
        "source": config.source,
        "cache_dir": str(config.cache_dir)
        if config.cache_dir is not None else None,
        "chunk_size": config.chunk_size,
        "on_error": config.error_policy.mode,
        "stage_timeout": config.stage_timeout,
    }


def execute_plan(plan: StudyPlan, inputs: Mapping[str, Any],
                 config: StudyConfig | None = None,
                 session: EngineSession | None = None
                 ) -> tuple[dict[str, Any], ExecutionReport]:
    """Execute every stage of ``plan`` and return all stage results.

    Args:
        plan: the stage DAG.
        inputs: initial values available to stages (by name).
        config: execution configuration; defaults to serial/no-cache.
        session: the engine session owning pool, warm cache and run
            ledger. ``None`` opens a throwaway session around this one
            call — identical to the historical per-call behavior.

    Returns:
        ``(results, report)`` — results maps every input and stage name
        to its value; the report carries per-stage timings, quarantined
        :class:`ProjectFailure` records and the degraded-run flag.

    Raises:
        EngineError: for invalid plans (unknown inputs, cycles), or —
            under the fail-fast policy — whatever a stage raised.
    """
    config = config or StudyConfig()
    if session is None:
        with EngineSession(config) as owned:
            return execute_plan(plan, inputs, config, session=owned)
    cache = session.cache_for(config.cache_dir)
    # Session state persists across runs; ledger numbers are deltas.
    quarantined_before = cache.quarantined if cache is not None else 0
    hot_before = cache.hot_hits if cache is not None else 0
    spawns_before = session.pool_spawns
    started_at = datetime.now(timezone.utc)
    run_started = time.perf_counter()
    results: dict[str, Any] = dict(inputs)
    report = ExecutionReport()
    for stage in plan.execution_order(tuple(inputs)):
        config.emit(StageEvent(stage=stage.name, phase="start"))
        started = time.perf_counter()
        local_before = parse_counters() + kernel_counters()
        hits = misses = stage_failures = stage_retries = 0
        worker_delta = (0, 0, 0, 0)
        items: int | None = None
        if isinstance(stage, MapStage):
            source = list(results[stage.inputs[0]])
            extras = tuple(results[name] for name in stage.inputs[1:])
            outcome = _run_map_stage(stage, source, extras, config,
                                     cache, session)
            value = outcome.values
            hits, misses = outcome.hits, outcome.misses
            worker_delta = outcome.worker_delta
            stage_failures = len(outcome.failures)
            stage_retries = outcome.retries
            report.failures.extend(outcome.failures)
            report.degraded = report.degraded or outcome.degraded
            items = len(source)
        else:
            value = stage.fn(*(results[name] for name in stage.inputs))
        elapsed = time.perf_counter() - started
        local_after = parse_counters() + kernel_counters()
        # Counter activity of this stage: in-process delta (serial maps,
        # ordinary stages) plus whatever the workers shipped back.
        parse_hits, parse_misses, kernel_series, kernel_reuse = (
            local_after[slot] - local_before[slot] + worker_delta[slot]
            for slot in range(4))
        results[stage.name] = value
        report.timings.append(StageTiming(
            stage=stage.name, seconds=elapsed, items=items,
            cache_hits=hits, cache_misses=misses,
            parse_hits=parse_hits, parse_misses=parse_misses,
            kernel_series=kernel_series, kernel_reuse=kernel_reuse,
            failures=stage_failures, retries=stage_retries))
        config.emit(StageEvent(
            stage=stage.name, phase="finish", seconds=elapsed,
            items=items or 0, cache_hits=hits, cache_misses=misses,
            parse_hits=parse_hits, parse_misses=parse_misses,
            kernel_series=kernel_series, kernel_reuse=kernel_reuse,
            failures=stage_failures, retries=stage_retries))
    if cache is not None:
        report.quarantined = cache.quarantined - quarantined_before
    session.record_run(RunRecord(
        run_id=session.next_run_id(),
        started=started_at.isoformat(),
        seconds=time.perf_counter() - run_started,
        source_fingerprint=_source_fingerprint(inputs),
        config=_config_summary(config),
        stages=tuple(_timing_dict(t) for t in report.timings),
        items=sum(t.items or 0 for t in report.timings),
        cache_hits=report.cache_hits,
        cache_misses=report.cache_misses,
        hot_hits=(cache.hot_hits - hot_before)
        if cache is not None else 0,
        parse_hits=report.parse_hits,
        parse_misses=report.parse_misses,
        kernel_series=report.kernel_series,
        kernel_reuse=report.kernel_reuse,
        failures=tuple(f.summary() for f in report.failures),
        degraded=report.degraded,
        quarantined=report.quarantined,
        retries=report.retries,
        pool_spawns=session.pool_spawns - spawns_before,
        result_digest=_result_digest(results),
    ), config.cache_dir)
    return results, report


def _timing_dict(timing: StageTiming) -> dict:
    """One :class:`StageTiming` as a compact ledger dict."""
    entry: dict[str, Any] = {
        "stage": timing.stage,
        "ms": round(timing.seconds * 1000, 3),
    }
    if timing.items is not None:
        entry["items"] = timing.items
        entry["cache_hits"] = timing.cache_hits
        entry["cache_misses"] = timing.cache_misses
    for name in ("parse_hits", "parse_misses", "kernel_series",
                 "kernel_reuse", "failures", "retries"):
        value = getattr(timing, name)
        if value:
            entry[name] = value
    return entry


def run_stage(stage: Stage, *args: Any) -> Any:
    """Run one stage standalone (convenience for tests and notebooks)."""
    return stage.fn(*args)
