"""Graceful SIGINT/SIGTERM handling for plan executions.

The executor installs an :class:`InterruptGuard` around the stage loop.
The first signal only sets a flag; the executor notices it at the next
safe point (between items, between harvests), stops dispatching new
work, drains chunks that already finished — caching and journaling their
results — cancels the rest, flushes the journal and ledger, and raises
:class:`~repro.errors.RunInterrupted`. A second signal while that drain
is in progress raises :class:`KeyboardInterrupt` immediately: the first
Ctrl-C is polite, the second one means *now*.

Handlers are only installed in the main thread (Python forbids them
elsewhere); worker threads running plans still get a guard object that
fault injection (``interrupt@pid``) can trigger deterministically.
Previous handlers are restored on exit, so nesting and test runners are
unaffected.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Iterator

from repro.errors import RunInterrupted

_GUARD_SIGNALS = (signal.SIGINT, signal.SIGTERM)


class InterruptGuard:
    """Cooperative interrupt flag checked at the executor's safe points."""

    def __init__(self, run_id: str | None = None):
        self.run_id = run_id
        self.reason: str | None = None
        self._requested = False

    @property
    def requested(self) -> bool:
        return self._requested

    def trigger(self, reason: str = "signal") -> None:
        """Request a graceful stop (signal handler or fault injection)."""
        if not self._requested:
            self.reason = reason
            self._requested = True

    def check(self) -> None:
        """Raise :class:`RunInterrupted` if a stop has been requested."""
        if self._requested:
            raise RunInterrupted(self.run_id)

    def _handle(self, signum: int, frame: object) -> None:
        if self._requested:
            # Second signal: the user wants out immediately.
            raise KeyboardInterrupt
        try:
            name = signal.Signals(signum).name
        except ValueError:  # pragma: no cover
            name = f"signal {signum}"
        self.trigger(name)


@contextmanager
def interrupt_guard(run_id: str | None = None) -> Iterator[InterruptGuard]:
    """Yield a guard, with SIGINT/SIGTERM routed to it when possible."""
    guard = InterruptGuard(run_id)
    installed: list[tuple[signal.Signals, object]] = []
    if threading.current_thread() is threading.main_thread():
        for sig in _GUARD_SIGNALS:
            try:
                previous = signal.signal(sig, guard._handle)
            except (ValueError, OSError):  # pragma: no cover
                continue
            installed.append((sig, previous))
    try:
        yield guard
    finally:
        for sig, previous in installed:
            signal.signal(sig, previous)
