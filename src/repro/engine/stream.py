"""Lazily enumerated handle streams and deterministic sampling.

A :class:`HandleStream` is the engine-side face of a lightweight
source's project enumeration: single-use, pulled one handle at a time
by the executor's bounded in-flight window, never a materialized list.
It folds in everything the old eager path did on the side —

* **failure capture** — under a skip/retry error policy, a project
  whose fingerprinting raises is quarantined as a
  :class:`~repro.engine.faults.ProjectFailure` (after the retry
  budget, for transient errors) instead of killing the enumeration;
* **session registry** — with an :class:`~.session.EngineSession`, a
  previously enumerated source identity replays without touching the
  source, sharded corpora memoize per shard (an unchanged shard
  replays even when a sibling shard changed), and a clean, bounded
  enumeration registers itself for the next run;
* **run lineage** — a running digest over every ``(pid, fingerprint)``
  pair stands in for the handle list in the run ledger, since a
  consumed stream cannot be re-iterated.

:func:`sample_handles` implements the ``--sample N`` /
``--stratified`` study modes: it is the one place a handle list is
deliberately materialized (handles are a few dozen bytes; the sample
is interactive-scale by definition), and both modes are deterministic
in the config seed and corpus order.
"""

from __future__ import annotations

import hashlib
import random
import time
from typing import Any, Iterator

from repro.engine.faults import ProjectFailure
from repro.errors import EngineError
from repro.sources.base import (
    SourceHandle,
    iter_source_handles,
    source_count,
    source_stratum,
)

#: Streams longer than this are not whole-source memoized in a session
#: registry — replay would trade the bounded-memory guarantee for a
#: warm-enumeration win that sharded corpora already get per shard.
REGISTRY_HANDLE_LIMIT = 65536


class HandleStream:
    """A single-use, lazily enumerated stream of source handles.

    Args:
        source: a lightweight :class:`~repro.sources.base.HistorySource`.
        policy: the run's error policy; a capturing one quarantines
            per-project fingerprint failures into :attr:`failures`,
            ``None`` or fail-fast lets them propagate.
        session: optional engine session whose handle registry the
            stream consults (replay) and feeds (registration).

    Attributes:
        source: the wrapped source.
        failures: fingerprint-stage quarantines, in enumeration order;
            complete only once the stream is consumed.
        seen: handles yielded so far.
    """

    def __init__(self, source: Any, policy: Any = None,
                 session: Any = None):
        self.source = source
        self.policy = policy
        self.session = session
        self.failures: list[ProjectFailure] = []
        self.seen = 0
        self._digest = hashlib.sha256()
        self._consumed = False

    def count(self) -> int:
        """The source's project total (cheap by protocol contract)."""
        return source_count(self.source)

    def stream_digest(self) -> str:
        """Digest of every handle yielded so far (ledger lineage)."""
        return f"stream:{self._digest.hexdigest()}"

    def _note(self, handle: SourceHandle) -> SourceHandle:
        self._digest.update(handle.pid.encode("utf-8"))
        self._digest.update(b"\x1f")
        self._digest.update(handle.fingerprint.encode("utf-8"))
        self._digest.update(b"\n")
        self.seen += 1
        return handle

    def __iter__(self) -> Iterator[SourceHandle]:
        if self._consumed:
            raise EngineError(
                "a handle stream is single-use and was already "
                "consumed; build a new one per run")
        self._consumed = True
        return self._generate()

    def _generate(self) -> Iterator[SourceHandle]:
        session = self.session
        key = None
        if session is not None:
            from repro.engine.session import source_session_key
            key = source_session_key(self.source)
            replay = session.replay_handles(key)
            if replay is not None:
                handles, failures = replay
                self.failures.extend(failures)
                for handle in handles:
                    yield self._note(handle)
                return
        shard_iter = getattr(self.source, "iter_handle_shards", None)
        if session is not None and shard_iter is not None:
            yield from self._generate_sharded(session, key, shard_iter)
            return
        collected: list[SourceHandle] | None = \
            [] if session is not None and key is not None else None
        for handle in self._iter_capturing():
            if collected is not None:
                collected.append(handle)
                if len(collected) > REGISTRY_HANDLE_LIMIT:
                    collected = None
            yield self._note(handle)
        if collected is not None and not self.failures:
            session.remember_handles(key, collected, [])

    def _generate_sharded(self, session: Any, key: str | None,
                          shard_iter: Any) -> Iterator[SourceHandle]:
        """Enumerate shard by shard, memoizing each shard's handles.

        Shard keys fold in the shard's content hash, so re-exporting
        one shard of a corpus invalidates exactly that shard's replay
        while its unchanged siblings still skip enumeration.
        """
        collected: list[SourceHandle] | None = \
            [] if key is not None else None
        for shard_key, handles in shard_iter():
            cached = session.replay_shard(shard_key)
            if cached is None:
                cached = list(handles)
                session.remember_shard(shard_key, cached)
            if collected is not None:
                collected.extend(cached)
                if len(collected) > REGISTRY_HANDLE_LIMIT:
                    collected = None
            for handle in cached:
                yield self._note(handle)
        if collected is not None and not self.failures:
            session.remember_handles(key, collected, [])

    def _iter_capturing(self) -> Iterator[SourceHandle]:
        policy = self.policy
        if policy is None or not policy.captures:
            yield from iter_source_handles(self.source)
            return
        # A generator cannot resume past an exception, so the
        # capturing path bridges via project_ids() and retries each
        # fingerprint itself — the streaming twin of
        # :func:`~repro.engine.study_plan.safe_source_handles`.
        for pid in self.source.project_ids():
            attempt = 0
            while True:
                attempt += 1
                try:
                    handle = SourceHandle(
                        pid=pid,
                        fingerprint=self.source.fingerprint(pid))
                except Exception as exc:
                    if attempt < policy.attempts_for(exc):
                        delay = policy.backoff_seconds(pid, attempt)
                        if delay > 0:
                            time.sleep(delay)
                        continue
                    self.failures.append(ProjectFailure.from_exception(
                        pid, "handles", exc, attempts=attempt))
                    break
                yield handle
                break


def sample_handles(handles: Any, sample: int, seed: int,
                   stratified: bool = False,
                   source: Any = None) -> list[SourceHandle]:
    """A deterministic ``sample``-sized subset of a handle stream.

    Always returns handles in their original corpus order, so a
    sampled study is exactly the study of a smaller corpus with the
    same ordering guarantees (and byte-identical given the same seed).

    Args:
        handles: any iterable of handles (a :class:`HandleStream` is
            consumed here — sampling is the one path that materializes
            the handle list, never the projects).
        sample: how many to keep; at or above the stream size this is
            the identity.
        seed: drives the plain random draw (ignored when stratified —
            round-robin is deterministic on its own).
        stratified: draw round-robin across strata (the source's
            pattern groups) instead of uniformly, so small samples
            still span every pattern.
        source: consulted for per-project strata via
            :func:`~repro.sources.base.source_stratum`.
    """
    indexed = list(enumerate(handles))
    if sample >= len(indexed):
        return [handle for _, handle in indexed]
    if stratified:
        groups: dict[str, list[tuple[int, SourceHandle]]] = {}
        for index, handle in indexed:
            stratum = source_stratum(source, handle.pid) \
                if source is not None else handle.pid
            groups.setdefault(stratum, []).append((index, handle))
        picked: list[tuple[int, SourceHandle]] = []
        queues = list(groups.values())
        while queues and len(picked) < sample:
            for queue in list(queues):
                if len(picked) >= sample:
                    break
                picked.append(queue.pop(0))
                if not queue:
                    queues.remove(queue)
        picked.sort()
        return [handle for _, handle in picked]
    rng = random.Random(seed)
    keep = sorted(rng.sample(range(len(indexed)), sample))
    return [indexed[position][1] for position in keep]
