"""Engine sessions: the warm, reusable study runtime.

Every pre-session execution path was one-shot: ``execute_plan`` built a
fresh :class:`~repro.engine.cache.ResultCache` per call and the map
stage spawned (and tore down) a fresh ``ProcessPoolExecutor`` per
stage, so even a fully cached "warm" run paid pool-spawn and disk-read
costs every time. An :class:`EngineSession` owns that state for as
long as the caller wants to keep it — the resident-runtime shape the
query service and watch mode sit on:

* a **persistent worker pool** — lazily spawned on first parallel map,
  reused across stages and across study runs, transparently respawned
  after a ``BrokenProcessPool`` and discarded (never reused) after a
  stage-timeout abandon;
* **warm caches** — each ``cache_dir`` opens once per session as a
  :class:`HotResultCache`: the on-disk content-addressed store fronted
  by a bounded in-memory LRU of *deserialized* values, so repeat hits
  skip the disk read, the envelope checksum and the unpickle entirely;
* a **source-handle registry** — a lightweight source's project ids
  and fingerprints are enumerated once per session (git walks, corpus
  manifests) and reused on re-study, keyed by the source's content
  identity;
* a **run ledger** — ``session.runs`` records every plan execution
  (source fingerprint, config, stage timings, cache hit rates,
  parse-memo/kernel counters, failures, result digest) and appends the
  same record as JSONL to ``<cache_dir>/ledger.jsonl``, giving
  operated deployments their "what ran, on what data, how fast, what
  broke" story.

Lifecycle is context-manager or explicit :meth:`EngineSession.close`;
a module-level ``atexit`` guard shuts down any pool a crashed or
interrupted process left behind, so CLI runs never leak workers.
Sessions assume their sources are stable for their lifetime — the
watch-mode work will add invalidation.
"""

from __future__ import annotations

import atexit
import json
import warnings
import weakref
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.engine.cache import MISS, ResultCache, fingerprint
from repro.engine.config import StudyConfig
from repro.engine.faults import mark_pool_worker
from repro.engine.lock import CacheLock, append_line
from repro.errors import EngineError

#: Default bound of a session cache's in-memory hot layer (entries).
DEFAULT_HOT_ENTRIES = 4096

#: File name of the persisted run ledger inside a cache directory.
LEDGER_NAME = "ledger.jsonl"


def source_session_key(source: Any) -> str | None:
    """The session-registry key of a history source, or ``None``.

    Sources that can describe their content identity cheaply (an
    ``identity()`` method returning canonicalizable parts — seed and
    population for synthetic corpora, manifest digest for corpus
    directories, HEAD sha for git checkouts) are keyed by its
    fingerprint; anything else (in-memory adapters) returns ``None``
    and is never registry-cached.
    """
    identity = getattr(source, "identity", None)
    if identity is None:
        return None
    return fingerprint("session-source", type(source).__name__,
                       identity())


class HotResultCache:
    """A :class:`ResultCache` fronted by an in-memory LRU hot layer.

    The disk store stays the source of truth (shared, content
    addressed, self-healing); the hot layer is a bounded
    ``OrderedDict`` of already-deserialized values so a warm hit costs
    one dict lookup instead of a file read + checksum + unpickle.
    Everything the executor calls on a plain :class:`ResultCache`
    works here unchanged.

    Args:
        root: cache directory (as for :class:`ResultCache`).
        hot_entries: LRU bound; 0 disables the hot layer entirely.

    Attributes:
        disk: the underlying on-disk cache.
        hot_hits: gets served straight from memory.
        hot_misses: gets that had to consult the disk store.
        evictions: entries dropped by the LRU bound.
    """

    def __init__(self, root: str | Path,
                 hot_entries: int = DEFAULT_HOT_ENTRIES):
        self.disk = ResultCache(root)
        self.hot_entries = hot_entries
        self._hot: OrderedDict[str, Any] = OrderedDict()
        self.hot_hits = 0
        self.hot_misses = 0
        self.evictions = 0

    @property
    def root(self) -> Path:
        """The disk store's directory."""
        return self.disk.root

    @property
    def quarantined(self) -> int:
        """Corrupt disk entries quarantined (delegated)."""
        return self.disk.quarantined

    @property
    def pruned(self) -> int:
        """Quarantine entries removed by the cap (delegated)."""
        return self.disk.pruned

    @property
    def write_failures(self) -> int:
        """Disk stores the filesystem refused (delegated)."""
        return self.disk.write_failures

    @property
    def degraded_writes(self) -> bool:
        """True once the disk layer started refusing stores."""
        return self.disk.degraded_writes

    def deny_writes(self) -> None:
        """Fault hook: the disk layer refuses all further stores.

        The hot layer keeps remembering, so an ENOSPC run completes
        memory-only with identical output.
        """
        self.disk.deny_writes()

    def _remember(self, key: str, value: Any) -> None:
        if self.hot_entries <= 0:
            return
        self._hot[key] = value
        self._hot.move_to_end(key)
        while len(self._hot) > self.hot_entries:
            self._hot.popitem(last=False)
            self.evictions += 1

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`~.cache.MISS`.

        Hot-layer hits return the same deserialized object the last
        consumer saw — derived lazy state (re-materialized parse
        caches) rides along, which only makes warm runs warmer.
        """
        if key in self._hot:
            self._hot.move_to_end(key)
            self.hot_hits += 1
            return self._hot[key]
        self.hot_misses += 1
        value = self.disk.get(key)
        if value is not MISS:
            self._remember(key, value)
        return value

    def put(self, key: str, value: Any) -> str | None:
        """Store ``value`` in both layers (disk write is best-effort).

        Returns the disk payload digest, or ``None`` when the disk
        refused — the hot copy still serves this session.
        """
        self._remember(key, value)
        return self.disk.put(key, value)

    def corrupt_entry(self, key: str) -> bool:
        """Scribble the disk entry AND evict the hot copy.

        Fault injection must observe real corruption semantics — a hot
        copy serving the old value would mask the injected fault.
        """
        self._hot.pop(key, None)
        return self.disk.corrupt_entry(key)

    def forget_hot(self) -> None:
        """Drop the whole hot layer (tests; memory pressure)."""
        self._hot.clear()

    def __contains__(self, key: str) -> bool:
        return key in self._hot or key in self.disk

    def __len__(self) -> int:
        return len(self.disk)


@dataclass(frozen=True)
class RunRecord:
    """One ledger entry: everything one plan execution was and did.

    Attributes:
        run_id: 1-based position in this session's ledger.
        started: UTC ISO-8601 timestamp the execution began.
        seconds: wall-clock duration of the whole execution.
        source_fingerprint: content identity of what was studied (the
            source's session key, or a digest of the handles/items).
        config: the run's execution parameters (jobs, seed, source
            spec, cache dir, error policy, ...).
        stages: per-stage timing/cache/fault numbers, one dict per
            executed stage.
        items: mapped items over all map stages.
        cache_hits / cache_misses: result-cache totals of the run.
        hot_hits: cache hits served from the session's in-memory hot
            layer (a subset of ``cache_hits``).
        hot_misses: cache probes that fell through to the disk store.
        evictions: hot-layer LRU evictions during the run.
        delta_appended / delta_rewritten: projects served by the
            append-only delta path / recomputed after their checkpoint
            was rejected (rewritten history).
        delta_reused / delta_parsed: checkpointed versions reused vs
            suffix versions parsed by the delta kernel.
        parse_hits / parse_misses: statement-memo totals.
        kernel_series / kernel_reuse: heartbeat-kernel totals.
        failures: quarantined-project summaries, in failure order.
        degraded: the run lost its pool or timed out a chunk.
        quarantined: corrupt cache entries healed during the run.
        retries: extra per-item attempts spent.
        pack_rows: columnar table rows packed during the run.
        pool_spawns: worker pools spawned *during this run* (0 on a
            fully warm run — the headline service-shape number).
        result_digest: stable digest of the run's study records, for
            byte-identical-across-runs assertions and lineage.
        run_uid: the run's journal id (``""`` when no cache dir, hence
            no journal); ``--resume`` takes this id.
        interrupted: the run was stopped by SIGINT/SIGTERM after a
            graceful drain (its journal lists what completed).
        resumed_from: journal id of the interrupted/killed run this one
            resumed, or ``None`` for a fresh run.
        journal_chunks: chunks this run journaled as durable.
        journal_replayed: prior-run journaled chunks served entirely
            from the result cache during a ``--resume`` run.
        write_failures: cache/journal stores the filesystem refused
            (ENOSPC / read-only degradation).
        pruned: quarantine entries removed by the cap during the run.
    """

    run_id: int
    started: str
    seconds: float
    source_fingerprint: str
    config: dict
    stages: tuple[dict, ...]
    items: int
    cache_hits: int
    cache_misses: int
    hot_hits: int
    parse_hits: int
    parse_misses: int
    kernel_series: int
    kernel_reuse: int
    failures: tuple[str, ...]
    degraded: bool
    quarantined: int
    retries: int
    pool_spawns: int
    result_digest: str
    pack_rows: int = 0
    hot_misses: int = 0
    evictions: int = 0
    delta_appended: int = 0
    delta_rewritten: int = 0
    delta_reused: int = 0
    delta_parsed: int = 0
    run_uid: str = ""
    interrupted: bool = False
    resumed_from: str | None = None
    journal_chunks: int = 0
    journal_replayed: int = 0
    write_failures: int = 0
    pruned: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of mapped items served from the result cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def to_dict(self) -> dict:
        """The record as one JSON-serializable dict (ledger line)."""
        return {
            "run_id": self.run_id,
            "started": self.started,
            "seconds": round(self.seconds, 6),
            "source_fingerprint": self.source_fingerprint,
            "config": self.config,
            "stages": list(self.stages),
            "items": self.items,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "hot_hits": self.hot_hits,
            "hot_misses": self.hot_misses,
            "evictions": self.evictions,
            "delta_appended": self.delta_appended,
            "delta_rewritten": self.delta_rewritten,
            "delta_reused": self.delta_reused,
            "delta_parsed": self.delta_parsed,
            "parse_hits": self.parse_hits,
            "parse_misses": self.parse_misses,
            "kernel_series": self.kernel_series,
            "kernel_reuse": self.kernel_reuse,
            "failures": list(self.failures),
            "degraded": self.degraded,
            "quarantined": self.quarantined,
            "retries": self.retries,
            "pack_rows": self.pack_rows,
            "pool_spawns": self.pool_spawns,
            "result_digest": self.result_digest,
            "run_uid": self.run_uid,
            "interrupted": self.interrupted,
            "resumed_from": self.resumed_from,
            "journal_chunks": self.journal_chunks,
            "journal_replayed": self.journal_replayed,
            "write_failures": self.write_failures,
            "pruned": self.pruned,
        }


#: Sessions whose pools the atexit guard still has to reap.
_live_sessions: "weakref.WeakSet[EngineSession]" = weakref.WeakSet()


@atexit.register
def _reap_live_sessions() -> None:
    """Interpreter-exit guard: no session may leak worker processes.

    Interrupted CLI runs (SIGINT between stages, sys.exit from argparse)
    never call :meth:`EngineSession.close`; this sweeps whatever is
    left, without blocking exit on in-flight work.
    """
    for session in list(_live_sessions):
        session._shutdown_pool(wait=False, cancel=True)


class EngineSession:
    """The long-lived runtime state shared across study executions.

    Args:
        config: default execution configuration for runs driven through
            this session's convenience entry points; individual
            ``execute_plan`` calls may still pass their own config.
        hot_entries: LRU bound of each cache's in-memory hot layer.

    Attributes:
        runs: the in-memory run ledger, oldest first.
        pool_spawns: worker pools spawned over the session's lifetime
            (a warm re-run must not increase it).
    """

    def __init__(self, config: StudyConfig | None = None, *,
                 hot_entries: int = DEFAULT_HOT_ENTRIES):
        self.config = config or StudyConfig()
        self.hot_entries = hot_entries
        self.runs: list[RunRecord] = []
        self.pool_spawns = 0
        self._pool: ProcessPoolExecutor | None = None
        self._pool_jobs = 0
        self._caches: dict[Path, HotResultCache] = {}
        self._handles: dict[str, tuple[list, list]] = {}
        self._shard_handles: dict[str, list] = {}
        self._closed = False
        _live_sessions.add(self)

    # -- lifecycle -----------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; a closed session stays closed."""
        return self._closed

    def close(self) -> None:
        """Release the pool and registries; the ledger stays readable.

        Idempotent. All pool shutdown — normal, respawn, abandon,
        atexit — funnels through one codepath, so there is exactly one
        place worker processes can be left behind: nowhere.
        """
        if self._closed:
            return
        self._closed = True
        self._shutdown_pool(wait=True, cancel=True)
        self._caches.clear()
        self._handles.clear()
        self._shard_handles.clear()
        _live_sessions.discard(self)

    def __enter__(self) -> "EngineSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- worker pool ---------------------------------------------------

    def pool(self, jobs: int) -> ProcessPoolExecutor:
        """The session's worker pool, (re)spawned on demand.

        The pool persists across stages and runs; asking for a
        different worker count retires the old pool first. Spawns are
        counted in :attr:`pool_spawns`.

        Raises:
            EngineError: on a closed session.
        """
        if self._closed:
            raise EngineError("cannot use a closed engine session")
        if self._pool is not None and self._pool_jobs != jobs:
            self._shutdown_pool(wait=True)
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=jobs, initializer=mark_pool_worker)
            self._pool_jobs = jobs
            self.pool_spawns += 1
        return self._pool

    def discard_pool(self, wait: bool = False) -> None:
        """Drop the current pool so the next use respawns a fresh one.

        The executor calls this after ``BrokenProcessPool`` (dead
        workers) and after a stage-timeout abandon (a stuck worker
        cannot be interrupted, only orphaned) — either way the pool is
        unusable and reuse would wedge the session.
        """
        self._shutdown_pool(wait=wait, cancel=True)

    def _shutdown_pool(self, wait: bool, cancel: bool = False) -> None:
        pool, self._pool = self._pool, None
        self._pool_jobs = 0
        if pool is None:
            return
        try:
            pool.shutdown(wait=wait, cancel_futures=cancel)
        except Exception:  # a broken pool may refuse: already dead
            pass

    # -- warm caches ---------------------------------------------------

    def cache_for(self, cache_dir: str | Path | None
                  ) -> HotResultCache | None:
        """The session's warm cache over ``cache_dir`` (one per dir).

        Raises:
            EngineError: on a closed session.
        """
        if cache_dir is None:
            return None
        if self._closed:
            raise EngineError("cannot use a closed engine session")
        root = Path(cache_dir)
        key = root.expanduser().resolve()
        cache = self._caches.get(key)
        if cache is None:
            cache = HotResultCache(root, hot_entries=self.hot_entries)
            self._caches[key] = cache
        return cache

    @property
    def hot_hits(self) -> int:
        """Hot-layer hits over every cache this session opened."""
        return sum(c.hot_hits for c in self._caches.values())

    # -- source registry -----------------------------------------------

    def handles_for(self, source: Any, policy: Any = None
                    ) -> tuple[list, list]:
        """Handles (and fingerprint failures) of ``source``, memoized.

        Enumeration and fingerprinting — git walks, manifest reads,
        corpus planning — happen once per session per source identity;
        re-studies reuse the handle list. Sources without an identity
        (in-memory adapters) and enumerations that produced failures
        are never memoized, so retries stay live.
        """
        key = source_session_key(source)
        if key is not None and key in self._handles:
            handles, failures = self._handles[key]
            return list(handles), list(failures)
        from repro.engine.study_plan import safe_source_handles
        handles, failures = safe_source_handles(source, policy)
        if key is not None and not failures:
            self._handles[key] = (list(handles), list(failures))
        return handles, failures

    def replay_handles(self, key: str | None
                       ) -> tuple[list, list] | None:
        """A previous enumeration of source identity ``key``, if any.

        Streaming counterpart of :meth:`handles_for`: the
        :class:`~repro.engine.stream.HandleStream` replays this list
        instead of re-walking the source. ``None`` (unknown identity,
        or an identity-less source) means enumerate live.
        """
        if key is None:
            return None
        memo = self._handles.get(key)
        if memo is None:
            return None
        handles, failures = memo
        return list(handles), list(failures)

    def remember_handles(self, key: str | None, handles: list,
                         failures: list) -> None:
        """Register a clean, fully consumed enumeration for replay."""
        if key is not None and not failures:
            self._handles[key] = (list(handles), list(failures))

    def replay_shard(self, shard_key: str) -> list | None:
        """The memoized handles of one corpus shard, or ``None``.

        Shard keys fold in the shard's content hash (see
        :meth:`~repro.sources.corpusdir.CorpusDirSource.iter_handle_shards`),
        so replay is exactly as valid as the bytes are unchanged.
        """
        handles = self._shard_handles.get(shard_key)
        return list(handles) if handles is not None else None

    def remember_shard(self, shard_key: str, handles: list) -> None:
        """Memoize one shard's enumerated handles for this session."""
        self._shard_handles[shard_key] = list(handles)

    # -- incremental re-study ------------------------------------------

    def refresh(self, source: Any, config: StudyConfig | None = None):
        """Re-derive the full study of ``source``, incrementally.

        The delta-aware counterpart of
        :func:`~repro.study.pipeline.run_full_study_from_source` bound
        to this session: unchanged projects are served by the result
        cache, append-only growth runs through the O(K) suffix kernel
        against the checkpoints in the config's cache dir, and
        rewritten histories fall back to a full recompute — output is
        byte-identical to a cold study of the grown source either way.
        The returned report's ``format_delta_summary()`` says which
        path served how much.

        Returns:
            ``(StudyResults, ExecutionReport)``.
        """
        from repro.engine.study_plan import execute_study_from_source
        return execute_study_from_source(source, config or self.config,
                                         session=self)

    # -- run ledger ----------------------------------------------------

    def record_run(self, record: RunRecord,
                   cache_dir: str | Path | None = None) -> None:
        """Append ``record`` to the ledger (and its JSONL, if durable).

        The JSONL file lives at ``<cache_dir>/ledger.jsonl`` and is
        append-only across sessions and processes. The append is one
        locked, fsynced ``write`` of the whole line (see
        :mod:`repro.engine.lock`): concurrent sessions sharing a cache
        dir serialize through the lock, concurrent readers never see a
        torn record, and a power cut cannot lose an acknowledged run.
        Still best-effort — the ledger is an ops aid, never a crash.
        """
        self.runs.append(record)
        if cache_dir is None:
            return
        root = Path(cache_dir)
        line = (json.dumps(record.to_dict(), sort_keys=True)
                + "\n").encode("utf-8")
        try:
            root.mkdir(parents=True, exist_ok=True)
            with CacheLock(root):
                append_line(root / LEDGER_NAME, line, fsync=True)
        except (OSError, EngineError):
            pass

    def next_run_id(self) -> int:
        """The id the next recorded run will get (1-based)."""
        return len(self.runs) + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (f"EngineSession({state}, runs={len(self.runs)}, "
                f"pool_spawns={self.pool_spawns})")


def read_ledger_report(cache_dir: str | Path
                       ) -> tuple[list[dict], list[int]]:
    """Ledger records plus the 1-based line numbers of torn lines.

    A torn line — a partial record left by a crashed or pre-lock
    writer — is skipped but *reported*, never silently absorbed: the
    caller can surface it once instead of the ledger under-counting
    forever. Valid records after a torn line are still returned (the
    file stays append-only; one bad line does not poison the tail).
    """
    path = Path(cache_dir) / LEDGER_NAME
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return [], []
    records: list[dict] = []
    torn: list[int] = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            torn.append(number)
    return records, torn


def read_ledger(cache_dir: str | Path) -> list[dict]:
    """Every run record persisted under ``cache_dir``, oldest first.

    Unparseable lines (torn writes) are skipped — mirroring the result
    cache's never-a-crash stance — but reported via a warning so a
    damaged ledger is visible; use :func:`read_ledger_report` to handle
    the torn lines programmatically.
    """
    records, torn = read_ledger_report(cache_dir)
    if torn:
        lines = ", ".join(str(number) for number in torn[:5])
        warnings.warn(
            f"ledger.jsonl under {cache_dir}: skipped "
            f"{len(torn)} torn record(s) at line(s) {lines} — likely "
            f"a writer killed mid-append before this version's locked "
            f"single-write appends", RuntimeWarning, stacklevel=2)
    return records
