"""Declarative stages and the study plan DAG.

A :class:`Stage` is a named pure function with declared inputs; a
:class:`StudyPlan` wires stages into a directed acyclic graph and
computes a deterministic execution order. :class:`MapStage` marks the
embarrassingly parallel per-item stages (one call per element of the
first input) that the executor may fan out over worker processes and
memoize in the content-addressed result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.errors import EngineError


@dataclass(frozen=True)
class StageEvent:
    """One progress notification emitted while a plan executes.

    Attributes:
        stage: name of the stage the event concerns.
        phase: ``"start"`` or ``"finish"``.
        seconds: wall-clock duration (finish events only).
        items: number of mapped items (map stages only).
        cache_hits: items served from the result cache (map stages).
        cache_misses: items that had to be computed (map stages).
        parse_hits: statement-memo hits during the stage (statements
            reused instead of re-parsed by the incremental parse path,
            summed over workers).
        parse_misses: statement-memo misses (statements parsed).
        kernel_series: activity-series prefix tables built during the
            stage (heartbeat kernel; summed over workers).
        kernel_reuse: prefix-table lookups served from the per-series
            memo — each one a full cumulative-array recomputation
            before the columnar kernel layer existed.
        failures: mapped items that could not be computed and were
            quarantined under a skip/retry error policy.
        retries: extra attempts spent on transient failures (both the
            ones that eventually succeeded and the ones that did not).
        chunk_size: items per pickled work chunk the executor chose
            for this stage (0 for serial or non-map stages).
        pack_rows: columnar table rows packed during the stage (summed
            over workers and the parent).
        pack_merges: partial packs merged FIFO as worker chunks were
            harvested (0 for serial or non-packing stages).
        delta_appended: projects served by the append-only delta path.
        delta_rewritten: projects whose study checkpoint was rejected
            (rewritten history; recomputed in full).
        delta_reused: checkpointed versions reused without re-parsing.
        delta_parsed: suffix versions parsed by the delta kernel.
    """

    stage: str
    phase: str
    seconds: float = 0.0
    items: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    parse_hits: int = 0
    parse_misses: int = 0
    kernel_series: int = 0
    kernel_reuse: int = 0
    failures: int = 0
    retries: int = 0
    chunk_size: int = 0
    pack_rows: int = 0
    pack_merges: int = 0
    delta_appended: int = 0
    delta_rewritten: int = 0
    delta_reused: int = 0
    delta_parsed: int = 0


@dataclass(frozen=True)
class Stage:
    """One node of a study plan.

    Attributes:
        name: unique stage name; other stages reference it as an input.
        fn: the stage body, called as ``fn(*input_values)`` in declared
            input order. Must be a module-level callable so map stages
            stay picklable for the process backend.
        inputs: names of the values the stage consumes — either other
            stage names or keys of the initial input dict.
        version: code-version tag mixed into cache keys; bump it when
            the stage's logic changes so stale cache entries die.
    """

    name: str
    fn: Callable[..., Any]
    inputs: tuple[str, ...] = ()
    version: str = "1"

    def __post_init__(self):
        if not self.name:
            raise EngineError("a stage needs a non-empty name")
        if self.name in self.inputs:
            raise EngineError(f"stage {self.name!r} cannot consume itself")

    @property
    def provides(self) -> tuple[str, ...]:
        """Names this stage publishes into the result namespace."""
        return (self.name,)


@dataclass(frozen=True)
class MapStage(Stage):
    """A stage applied independently to every element of its first input.

    ``fn(item, *extras)`` is called once per element of the sequence
    named by ``inputs[0]``; the remaining inputs are broadcast to every
    call. The stage's result is the list of per-item results in input
    order — so serial, process-parallel and cache-served executions are
    indistinguishable to downstream stages.

    Attributes:
        cache_key_fn: optional ``fn(item, extras, version) -> str``
            producing the content hash under which one item's result is
            cached; ``None`` disables caching for the stage.
        transport_fn: optional ``fn(result) -> result`` applied before a
            result crosses a pickling boundary (worker → parent, or the
            on-disk cache). Used to shed derived caches that are cheap
            to rebuild but expensive to serialize.
        item_transport_fn: optional ``fn(item) -> item`` applied to each
            input item before it is pickled to a worker process — the
            inbound counterpart of ``transport_fn``.
        chunk_size: per-stage override for items per pickled work
            chunk. Precedence is ``config.chunk_size`` (the global /
            CLI knob), then this, then the executor's auto heuristic;
            ``None`` defers to the next level.
        pack_fn: optional ``fn(result) -> row`` flattening one mapped
            result into a columnar row. Workers pack alongside the map
            (after ``transport_fn``), shipping rows back with results
            so the pack overlaps the map itself.
        pack_finish_fn: ``fn(rows) -> pack`` assembling the harvested
            rows (item order, survivors only) into the stage's
            secondary output.
        pack_output: result-namespace name the assembled pack is
            published under. All three pack fields come together.
    """

    cache_key_fn: Callable[[Any, tuple, str], str] | None = field(
        default=None, compare=False)
    transport_fn: Callable[[Any], Any] | None = field(
        default=None, compare=False)
    item_transport_fn: Callable[[Any], Any] | None = field(
        default=None, compare=False)
    chunk_size: int | None = None
    pack_fn: Callable[[Any], Any] | None = field(
        default=None, compare=False)
    pack_finish_fn: Callable[[list], Any] | None = field(
        default=None, compare=False)
    pack_output: str | None = None

    def __post_init__(self):
        super().__post_init__()
        if not self.inputs:
            raise EngineError(
                f"map stage {self.name!r} needs at least the input "
                f"sequence it maps over")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise EngineError(
                f"map stage {self.name!r} chunk_size must be >= 1, "
                f"got {self.chunk_size}")
        pack_bits = (self.pack_fn, self.pack_finish_fn, self.pack_output)
        if any(b is not None for b in pack_bits):
            if any(b is None for b in pack_bits):
                raise EngineError(
                    f"map stage {self.name!r} needs pack_fn, "
                    f"pack_finish_fn and pack_output together")
            if self.pack_output == self.name or self.pack_output in self.inputs:
                raise EngineError(
                    f"map stage {self.name!r} pack_output "
                    f"{self.pack_output!r} collides with its own "
                    f"name or inputs")

    @property
    def provides(self) -> tuple[str, ...]:
        if self.pack_output is None:
            return (self.name,)
        return (self.name, self.pack_output)


class StudyPlan:
    """A validated DAG of stages.

    Args:
        stages: the plan's stages; names (and any secondary pack
            outputs) must be unique across the plan.

    Raises:
        EngineError: on duplicate stage names or produced-value names.
    """

    def __init__(self, stages: Iterable[Stage]):
        self._stages: dict[str, Stage] = {}
        for stage in stages:
            if stage.name in self._stages:
                raise EngineError(f"duplicate stage name {stage.name!r}")
            self._stages[stage.name] = stage
        self._producers: dict[str, str] = {}
        for name, stage in self._stages.items():
            for output in stage.provides:
                owner = self._producers.get(output)
                if owner is not None:
                    raise EngineError(
                        f"stages {owner!r} and {name!r} both produce "
                        f"{output!r}")
                self._producers[output] = name

    @property
    def stages(self) -> tuple[Stage, ...]:
        """The plan's stages in declaration order."""
        return tuple(self._stages.values())

    @property
    def names(self) -> tuple[str, ...]:
        """All stage names in declaration order."""
        return tuple(self._stages)

    def stage(self, name: str) -> Stage:
        """Look one stage up by name.

        Raises:
            EngineError: for an unknown name.
        """
        try:
            return self._stages[name]
        except KeyError:
            raise EngineError(f"no stage named {name!r}") from None

    @property
    def producers(self) -> dict[str, str]:
        """Produced value name -> producing stage name (primary stage
        names plus any map-stage pack outputs)."""
        return dict(self._producers)

    def schedule(self, available: Sequence[str] = ()) -> "PlanSchedule":
        """A live ready-set view of the DAG for one execution.

        Args:
            available: names of externally provided initial inputs.

        Raises:
            EngineError: when a stage consumes a name that neither a
                stage nor ``available`` provides.
        """
        return PlanSchedule(self, available)

    def execution_order(self, available: Sequence[str] = ()) -> list[Stage]:
        """Topologically order the stages (Kahn's algorithm).

        Args:
            available: names of externally provided initial inputs.

        Raises:
            EngineError: when a stage consumes a name that neither a
                stage nor ``available`` provides, or the graph cycles.
        """
        schedule = self.schedule(available)
        order: list[Stage] = []
        while not schedule.done:
            for stage in schedule.take_ready():
                order.append(stage)
                schedule.complete(stage.name)
        return order

    def describe(self) -> str:
        """A one-line-per-stage listing of the DAG (docs/debugging)."""
        lines = []
        for stage in self._stages.values():
            kind = "map " if isinstance(stage, MapStage) else "    "
            deps = ", ".join(stage.inputs) or "-"
            extra = ""
            if isinstance(stage, MapStage) and stage.pack_output:
                extra = f"  [+{stage.pack_output}]"
            lines.append(f"{kind}{stage.name}  <-  {deps}{extra}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._stages)

    def __contains__(self, name: str) -> bool:
        return name in self._stages


class PlanSchedule:
    """The live ready-set of one plan execution.

    The executor repeatedly pops :meth:`take_ready` — every stage whose
    producers have all completed — runs those stages (publishing any
    secondary pack outputs), and calls :meth:`complete` to unblock
    their consumers. Dependencies resolve through the plan's producers
    map, so a stage consuming a map stage's pack output waits on the
    map stage itself.

    Args:
        plan: the validated plan to schedule.
        available: names of externally provided initial inputs.

    Raises:
        EngineError: when a stage consumes a name that neither a stage
            nor ``available`` provides.
    """

    def __init__(self, plan: StudyPlan, available: Sequence[str] = ()):
        producers = plan.producers
        provided = set(available)
        for stage in plan.stages:
            for needed in stage.inputs:
                if needed not in provided and needed not in producers:
                    raise EngineError(
                        f"stage {stage.name!r} consumes {needed!r}, which "
                        f"no stage produces and no initial input provides")
        self._stages = {stage.name: stage for stage in plan.stages}
        self._pending = {
            stage.name: {
                producers[i] for i in stage.inputs if i in producers}
            for stage in plan.stages
        }

    @property
    def done(self) -> bool:
        """True once every stage has been handed out."""
        return not self._pending

    def take_ready(self) -> list[Stage]:
        """Pop the stages whose dependencies have all completed.

        Declaration order breaks ties, keeping execution deterministic.

        Raises:
            EngineError: when stages remain but none are ready (cycle).
        """
        ready = [name for name, deps in self._pending.items() if not deps]
        if not ready and self._pending:
            cyclic = ", ".join(sorted(self._pending))
            raise EngineError(f"study plan has a cycle among: {cyclic}")
        for name in ready:
            del self._pending[name]
        return [self._stages[name] for name in ready]

    def complete(self, name: str) -> None:
        """Mark a stage finished, unblocking stages that consume it."""
        for deps in self._pending.values():
            deps.discard(name)
