"""The single execution configuration threaded through the pipeline.

One :class:`StudyConfig` carries everything that parameterizes a study
run — corpus seed, label scheme, worker count, cache directory and the
progress hook — so the CLI, the benchmarks and library callers all
speak the same object instead of hand-wiring keyword arguments through
every layer.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.corpus.generator import DEFAULT_SEED
from repro.engine.faults import ErrorPolicy, FaultPlan
from repro.engine.stage import StageEvent
from repro.errors import EngineError
from repro.labels.quantization import DEFAULT_SCHEME, LabelScheme

#: Signature of the per-stage progress callback.
ProgressHook = Callable[[StageEvent], None]


@dataclass(frozen=True)
class StudyConfig:
    """Execution parameters of one study run.

    Attributes:
        seed: master corpus seed (same seed, same corpus, any ``jobs``).
        scheme: quantization boundaries applied when labeling profiles.
        jobs: worker processes for the per-project map stages; 1 runs
            everything serially in-process.
        cache_dir: directory of the content-addressed result cache;
            ``None`` disables caching.
        chunk_size: items per pickled work chunk sent to a worker;
            ``None`` picks ``ceil(items / (jobs * 4))`` when the item
            count is cheaply known, else a fixed jobs-scaled default
            (streamed sources of unknown size).
        sample: study only this many projects of the source, drawn
            deterministically from the seed; ``None`` studies all.
            Sampling materializes the (tiny) handle list, never the
            projects.
        stratified: draw the sample round-robin across the source's
            strata (pattern groups) instead of uniformly, so small
            interactive samples still span every pattern. Requires
            ``sample``.
        source: history-source spec (``synthetic:[SEED]``, ``dir:PATH``
            or ``git:PATH``) consumed by
            :func:`repro.sources.source_from_spec`; ``synthetic:``
            resolves its seed from this config.
        error_policy: what happens when computing one project raises —
            fail fast (default; today's behaviour), skip it, or retry
            transient source failures first. See
            :class:`~repro.engine.faults.ErrorPolicy`.
        stage_timeout: wall-clock seconds the executor waits for any
            one in-flight work chunk of a parallel map stage before
            declaring its items failed (``None``: wait forever; serial
            execution cannot be preempted and ignores this).
        faults: optional deterministic fault-injection plan (testing/
            chaos runs); ``None`` injects nothing.
        delta: maintain per-project study checkpoints in the cache dir
            and serve append-only history growth through the O(K)
            suffix kernel instead of a full recompute (needs
            ``cache_dir`` and a source speaking the version-chain
            protocol; output is byte-identical either way). False
            disables both checkpoint writes and reads.
        resume_from: journal run id of an interrupted/killed run to
            resume — its journaled chunks are replayed from the result
            cache and only the remainder executes. Needs ``cache_dir``
            (the journal lives there). Output is byte-identical to a
            cold run either way.
        progress: optional per-stage event callback (timing/progress
            hooks for CLIs and dashboards); excluded from equality.
    """

    seed: int = DEFAULT_SEED
    scheme: LabelScheme = DEFAULT_SCHEME
    jobs: int = 1
    cache_dir: Path | None = None
    chunk_size: int | None = None
    sample: int | None = None
    stratified: bool = False
    source: str = "synthetic:"
    error_policy: ErrorPolicy = ErrorPolicy()
    stage_timeout: float | None = None
    faults: FaultPlan | None = None
    delta: bool = True
    resume_from: str | None = None
    progress: ProgressHook | None = field(default=None, compare=False)

    def __post_init__(self):
        if self.jobs < 1:
            raise EngineError(f"jobs must be >= 1, got {self.jobs}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise EngineError(
                f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.sample is not None and self.sample < 1:
            raise EngineError(
                f"sample must be >= 1, got {self.sample}")
        if self.stratified and self.sample is None:
            raise EngineError("stratified needs a sample size")
        if self.stage_timeout is not None and self.stage_timeout <= 0:
            raise EngineError(
                f"stage_timeout must be > 0, got {self.stage_timeout}")
        if self.resume_from is not None and self.cache_dir is None:
            raise EngineError(
                "resume needs a cache dir: the run journal lives in "
                "<cache_dir>/journal/")
        if self.cache_dir is not None \
                and not isinstance(self.cache_dir, Path):
            object.__setattr__(self, "cache_dir", Path(self.cache_dir))

    def replace(self, **changes: Any) -> "StudyConfig":
        """A copy of this config with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def emit(self, event: StageEvent) -> None:
        """Deliver ``event`` to the progress hook, if any."""
        if self.progress is not None:
            self.progress(event)
