"""Build logical schemas by applying DDL statement streams.

The builder keeps mutable per-table state while statements are applied and
emits immutable :class:`~repro.schema.model.Schema` snapshots. Two modes:

* **strict** — schema violations (duplicate CREATE without IF NOT EXISTS,
  ALTER of a missing table, ...) raise :class:`~repro.errors.SchemaError`.
* **lenient** (default) — violations are recorded in
  :attr:`SchemaBuilder.issues` and the statement is skipped, which is how
  history extraction must behave on real-world dumps that occasionally
  re-create tables or drop what is not there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.schema.model import Attribute, ForeignKey, Schema, Table
from repro.sqlddl import ast_nodes as ast
from repro.sqlddl.normalize import canonical_type, normalize_identifier


@dataclass
class _ColumnState:
    """Mutable working copy of one attribute while building."""

    name: str
    data_type: object | None
    not_null: bool


@dataclass
class _TableState:
    """Mutable working copy of one table while building.

    ``trace`` records, in application order, an opaque token per
    statement that shaped this table (the statement's content hash in
    the incremental path, a unique sentinel otherwise). Because the
    fold of statements over a fresh state is deterministic, two states
    with equal ``(name, trace)`` are guaranteed content-identical —
    which lets :meth:`SchemaBuilder.snapshot_reusing` hand back the
    previous version's frozen :class:`Table` object untouched.
    """

    name: str
    columns: list[_ColumnState] = field(default_factory=list)
    primary_key: list[str] = field(default_factory=list)
    foreign_keys: list[ForeignKey] = field(default_factory=list)
    unique_keys: list[tuple[str, ...]] = field(default_factory=list)
    named_constraints: dict[str, str] = field(default_factory=dict)
    trace: list = field(default_factory=list)

    def column(self, name: str) -> _ColumnState | None:
        for col in self.columns:
            if col.name == name:
                return col
        return None

    def column_index(self, name: str) -> int:
        for index, col in enumerate(self.columns):
            if col.name == name:
                return index
        return -1


class SchemaBuilder:
    """Applies DDL statements to an evolving logical schema.

    Args:
        strict: raise on schema violations instead of recording them.

    Attributes:
        issues: human-readable descriptions of every lenient-mode skip.
    """

    def __init__(self, strict: bool = False):
        self._strict = strict
        self._tables: dict[str, _TableState] = {}
        self._order: list[str] = []
        self._views: list[str] = []
        self._token: object | None = None
        self.issues: list[str] = []

    # ------------------------------------------------------------------
    # public API

    def apply_script(self, script: ast.Script) -> "SchemaBuilder":
        """Apply every statement of ``script`` in order; returns self."""
        for statement in script.statements:
            self.apply(statement)
        return self

    def apply(self, statement: ast.Statement,
              token: object | None = None) -> None:
        """Apply one DDL statement.

        Args:
            statement: the statement to fold into the working schema.
            token: opaque identity of the statement's *content* (the
                incremental path passes the segment hash). Recorded in
                the trace of every table the statement shapes; when
                omitted, a unique sentinel is recorded instead, which
                soundly disables cross-version reuse for that table.
        """
        self._token = token
        if isinstance(statement, ast.CreateTable):
            self._apply_create_table(statement)
        elif isinstance(statement, ast.DropTable):
            self._apply_drop_table(statement)
        elif isinstance(statement, ast.AlterTable):
            self._apply_alter_table(statement)
        elif isinstance(statement, ast.CreateTableLike):
            self._apply_create_table_like(statement)
        elif isinstance(statement, ast.CreateView):
            self._apply_create_view(statement)
        elif isinstance(statement, ast.DropView):
            self._apply_drop_view(statement)
        elif isinstance(statement, (ast.CreateIndex, ast.DropIndex)):
            pass  # physical level: no logical schema effect
        else:
            self._problem(f"unsupported statement type "
                          f"{type(statement).__name__}")

    def snapshot(self) -> Schema:
        """Emit an immutable snapshot of the current schema."""
        tables = tuple(self._snapshot_table(self._tables[name])
                       for name in self._order)
        return Schema(tables=tables, views=tuple(self._views))

    def snapshot_reusing(
        self, previous: dict | None,
    ) -> tuple[Schema, dict]:
        """Snapshot, reusing frozen tables from a previous version.

        Args:
            previous: pool from the prior version's snapshot —
                ``(name, trace) -> Table`` — or None on the first
                version.

        Returns:
            The schema plus this version's pool. A table whose
            ``(name, trace)`` key appears in ``previous`` is returned
            as the *same* frozen :class:`Table` object (enabling the
            diff engine's identity fast path); anything else is built
            fresh.
        """
        pool: dict = {}
        tables = []
        for name in self._order:
            state = self._tables[name]
            key = (state.name, tuple(state.trace))
            table = previous.get(key) if previous else None
            if table is None:
                table = self._snapshot_table(state)
            pool[key] = table
            tables.append(table)
        schema = Schema(tables=tuple(tables), views=tuple(self._views))
        return schema, pool

    def _stamp(self, state: _TableState) -> None:
        """Record the current statement in ``state``'s trace."""
        state.trace.append(self._token if self._token is not None
                           else object())

    def _apply_create_table_like(self, stmt: ast.CreateTableLike) -> None:
        import copy

        name = normalize_identifier(stmt.name)
        template = normalize_identifier(stmt.template)
        source = self._tables.get(template)
        if source is None:
            self._problem(f"cannot clone missing table {template!r}")
            return
        if name in self._tables:
            if stmt.if_not_exists:
                return
            self._problem(f"table {name!r} already exists")
            self._remove_table(name)
        clone = copy.deepcopy(source)
        clone.name = name
        # The clone's content derives from the source's full fold, so
        # its trace must be the source's trace (shared tokens, not
        # deep copies) plus this statement.
        clone.trace = list(source.trace)
        self._stamp(clone)
        self._tables[name] = clone
        self._order.append(name)

    def _apply_create_view(self, stmt: ast.CreateView) -> None:
        name = normalize_identifier(stmt.name)
        if name in self._views:
            if stmt.or_replace or stmt.if_not_exists:
                return
            self._problem(f"view {name!r} already exists")
            return
        self._views.append(name)

    def _apply_drop_view(self, stmt: ast.DropView) -> None:
        for raw in stmt.names:
            name = normalize_identifier(raw)
            if name in self._views:
                self._views.remove(name)
            elif not stmt.if_exists:
                self._problem(f"cannot drop missing view {name!r}")

    # ------------------------------------------------------------------
    # statement handlers

    def _apply_create_table(self, stmt: ast.CreateTable) -> None:
        if stmt.temporary:
            return  # temp tables are not part of the persistent schema
        name = normalize_identifier(stmt.name)
        if name in self._tables:
            if stmt.if_not_exists:
                return
            self._problem(f"table {name!r} already exists")
            # Real dumps re-create tables; treat as replace in lenient mode.
            self._remove_table(name)
        state = _TableState(name=name)
        self._stamp(state)
        for coldef in stmt.columns:
            self._add_column_to_state(state, coldef)
        for constraint in stmt.constraints:
            self._apply_constraint(state, constraint)
        self._tables[name] = state
        self._order.append(name)

    def _apply_drop_table(self, stmt: ast.DropTable) -> None:
        for raw in stmt.names:
            name = normalize_identifier(raw)
            if name not in self._tables:
                if not stmt.if_exists:
                    self._problem(f"cannot drop missing table {name!r}")
                continue
            self._remove_table(name)

    def _apply_alter_table(self, stmt: ast.AlterTable) -> None:
        name = normalize_identifier(stmt.name)
        state = self._tables.get(name)
        if state is None:
            if not stmt.if_exists:
                self._problem(f"cannot alter missing table {name!r}")
            return
        self._stamp(state)
        for action in stmt.actions:
            self._apply_alter_action(state, action)

    # ------------------------------------------------------------------
    # ALTER actions

    def _apply_alter_action(self, state: _TableState,
                            action: ast.AlterAction) -> None:
        if isinstance(action, ast.AddColumn):
            self._add_column_to_state(state, action.column,
                                      position=action.position)
        elif isinstance(action, ast.DropColumn):
            self._drop_column(state, action)
        elif isinstance(action, ast.ModifyColumn):
            self._modify_column(state, action.column.name, action.column)
        elif isinstance(action, ast.ChangeColumn):
            self._modify_column(state, action.old_name, action.column)
        elif isinstance(action, ast.AlterColumnType):
            col = self._require_column(state, action.name)
            if col is not None:
                col.data_type = canonical_type(action.data_type)
        elif isinstance(action, ast.AlterColumnDefault):
            self._require_column(state, action.name)  # defaults: no-op
        elif isinstance(action, ast.AlterColumnNullability):
            col = self._require_column(state, action.name)
            if col is not None:
                col.not_null = action.not_null
        elif isinstance(action, ast.AddConstraint):
            self._apply_constraint(state, action.constraint)
        elif isinstance(action, ast.DropConstraint):
            self._drop_constraint(state, action)
        elif isinstance(action, ast.RenameTable):
            self._rename_table(state, action.new_name)
        elif isinstance(action, ast.RenameColumn):
            self._rename_column(state, action.old_name, action.new_name)
        elif isinstance(action, ast.TableOption):
            pass  # OWNER TO / SET SCHEMA: physical level
        else:
            self._problem(f"unsupported alter action "
                          f"{type(action).__name__}")

    def _drop_column(self, state: _TableState, action: ast.DropColumn) -> None:
        name = normalize_identifier(action.name)
        index = state.column_index(name)
        if index < 0:
            if not action.if_exists:
                self._problem(f"cannot drop missing column "
                              f"{state.name}.{name}")
            return
        del state.columns[index]
        state.primary_key = [c for c in state.primary_key if c != name]
        state.foreign_keys = [fk for fk in state.foreign_keys
                              if name not in fk.columns]
        state.unique_keys = [uk for uk in state.unique_keys
                             if name not in uk]

    def _modify_column(self, state: _TableState, old_name: str,
                       coldef: ast.ColumnDef) -> None:
        old = normalize_identifier(old_name)
        col = self._require_column(state, old)
        if col is None:
            return
        new_name = normalize_identifier(coldef.name)
        col.data_type = canonical_type(coldef.data_type)
        col.not_null = coldef.not_null
        if new_name != old:
            self._rename_column(state, old, new_name, already_checked=col)
        self._apply_inline_keys(state, new_name, coldef)

    def _rename_table(self, state: _TableState, new_raw: str) -> None:
        new_name = normalize_identifier(new_raw)
        if new_name == state.name:
            return
        if new_name in self._tables:
            self._problem(f"cannot rename {state.name!r} to existing "
                          f"table {new_name!r}")
            return
        old_name = state.name
        state.name = new_name
        self._tables[new_name] = state
        del self._tables[old_name]
        self._order[self._order.index(old_name)] = new_name

    def _rename_column(self, state: _TableState, old_raw: str, new_raw: str,
                       already_checked: _ColumnState | None = None) -> None:
        old = normalize_identifier(old_raw)
        new = normalize_identifier(new_raw)
        col = already_checked or self._require_column(state, old)
        if col is None:
            return
        if new != old and state.column(new) is not None:
            self._problem(f"cannot rename {state.name}.{old} to existing "
                          f"column {new}")
            return
        col.name = new
        state.primary_key = [new if c == old else c
                             for c in state.primary_key]
        state.foreign_keys = [
            ForeignKey(columns=tuple(new if c == old else c
                                     for c in fk.columns),
                       ref_table=fk.ref_table, ref_columns=fk.ref_columns)
            for fk in state.foreign_keys
        ]
        state.unique_keys = [tuple(new if c == old else c for c in uk)
                             for uk in state.unique_keys]

    def _drop_constraint(self, state: _TableState,
                         action: ast.DropConstraint) -> None:
        if action.kind == "primary key":
            state.primary_key = []
            return
        name = normalize_identifier(action.name or "")
        kind = state.named_constraints.pop(name, None)
        if kind == "foreign key" or action.kind == "foreign key":
            # Drop the FK registered under this name; fall back to
            # dropping the last FK when the name is unknown (MySQL dumps
            # use auto-generated names the model does not track).
            if state.foreign_keys:
                state.foreign_keys.pop()
            return
        if kind == "unique":
            if state.unique_keys:
                state.unique_keys.pop()
            return
        if kind == "primary key":
            state.primary_key = []
            return
        # Unknown names (indexes, checks) have no logical effect.

    # ------------------------------------------------------------------
    # shared pieces

    def _add_column_to_state(self, state: _TableState, coldef: ast.ColumnDef,
                             position: str | None = None) -> None:
        name = normalize_identifier(coldef.name)
        if state.column(name) is not None:
            self._problem(f"duplicate column {state.name}.{name}")
            return
        col = _ColumnState(name=name,
                           data_type=canonical_type(coldef.data_type),
                           not_null=coldef.not_null)
        index = len(state.columns)
        if position == "FIRST":
            index = 0
        elif position and position.startswith("AFTER "):
            anchor = normalize_identifier(position[len("AFTER "):])
            anchor_index = state.column_index(anchor)
            if anchor_index >= 0:
                index = anchor_index + 1
        state.columns.insert(index, col)
        self._apply_inline_keys(state, name, coldef)

    def _apply_inline_keys(self, state: _TableState, name: str,
                           coldef: ast.ColumnDef) -> None:
        if coldef.primary_key:
            state.primary_key = [name]
        if coldef.unique and (name,) not in state.unique_keys:
            state.unique_keys.append((name,))
        if coldef.references is not None:
            ref = coldef.references
            fk = ForeignKey(
                columns=(name,),
                ref_table=normalize_identifier(ref.table),
                ref_columns=tuple(normalize_identifier(c)
                                  for c in ref.columns),
            )
            if fk not in state.foreign_keys:
                state.foreign_keys.append(fk)

    def _apply_constraint(self, state: _TableState,
                          constraint: ast.TableConstraint) -> None:
        name = normalize_identifier(getattr(constraint, "name", None) or "")
        if isinstance(constraint, ast.PrimaryKeyConstraint):
            state.primary_key = [normalize_identifier(c)
                                 for c in constraint.columns]
            if name:
                state.named_constraints[name] = "primary key"
        elif isinstance(constraint, ast.ForeignKeyConstraint):
            fk = ForeignKey(
                columns=tuple(normalize_identifier(c)
                              for c in constraint.columns),
                ref_table=normalize_identifier(constraint.ref_table),
                ref_columns=tuple(normalize_identifier(c)
                                  for c in constraint.ref_columns),
            )
            if fk not in state.foreign_keys:
                state.foreign_keys.append(fk)
            if name:
                state.named_constraints[name] = "foreign key"
        elif isinstance(constraint, ast.UniqueConstraint):
            key = tuple(normalize_identifier(c) for c in constraint.columns)
            if key not in state.unique_keys:
                state.unique_keys.append(key)
            if name:
                state.named_constraints[name] = "unique"
        elif isinstance(constraint, (ast.CheckConstraint, ast.IndexKey)):
            pass  # checks and plain indexes: no logical-model effect
        else:
            self._problem(f"unsupported constraint "
                          f"{type(constraint).__name__}")

    def _require_column(self, state: _TableState,
                        raw_name: str) -> _ColumnState | None:
        name = normalize_identifier(raw_name)
        col = state.column(name)
        if col is None:
            self._problem(f"missing column {state.name}.{name}")
        return col

    def _remove_table(self, name: str) -> None:
        self._tables.pop(name, None)
        if name in self._order:
            self._order.remove(name)

    def _problem(self, message: str) -> None:
        if self._strict:
            raise SchemaError(message)
        self.issues.append(message)

    # ------------------------------------------------------------------
    # snapshot

    def _snapshot_table(self, state: _TableState) -> Table:
        pk = set(state.primary_key)
        fk_cols = {c for fk in state.foreign_keys for c in fk.columns}
        attributes = tuple(
            Attribute(name=col.name, data_type=col.data_type,
                      not_null=col.not_null or col.name in pk,
                      in_primary_key=col.name in pk,
                      in_foreign_key=col.name in fk_cols)
            for col in state.columns
        )
        return Table(name=state.name, attributes=attributes,
                     primary_key=tuple(state.primary_key),
                     foreign_keys=tuple(state.foreign_keys),
                     unique_keys=tuple(state.unique_keys))


def build_schema(script: ast.Script, strict: bool = False) -> Schema:
    """Build a schema by applying every statement of ``script``.

    This is the one-shot convenience over :class:`SchemaBuilder` used when
    each history commit holds a full DDL dump.
    """
    builder = SchemaBuilder(strict=strict)
    builder.apply_script(script)
    return builder.snapshot()
