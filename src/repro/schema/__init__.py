"""Logical relational schema model and DDL-to-schema builder.

The schema model captures exactly the level the paper studies: tables,
attributes (with canonical data types), primary keys and foreign keys.
Physical artifacts (indexes, storage options) are not part of the model.

Typical usage::

    from repro.sqlddl import parse_script
    from repro.schema import build_schema

    schema = build_schema(parse_script(ddl_text))
    schema.table_count, schema.attribute_count
"""

from repro.schema.model import Attribute, ForeignKey, Schema, Table
from repro.schema.builder import SchemaBuilder, build_schema
from repro.schema.validate import ValidationIssue, validate_schema

__all__ = [
    "Attribute",
    "ForeignKey",
    "Schema",
    "SchemaBuilder",
    "Table",
    "ValidationIssue",
    "build_schema",
    "validate_schema",
]
