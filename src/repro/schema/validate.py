"""Referential sanity checks over a logical schema.

Used by tests and by the corpus generator's self-checks; real-world dumps
regularly violate these (dangling FKs appear mid-history), so validation
reports issues rather than raising.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schema.model import Schema


@dataclass(frozen=True, slots=True)
class ValidationIssue:
    """One problem found in a schema.

    Attributes:
        kind: machine-readable issue kind, one of ``"dangling-fk-table"``,
            ``"dangling-fk-column"``, ``"pk-missing-column"``,
            ``"unique-missing-column"``, ``"empty-table"``.
        table: the table the issue belongs to.
        detail: human-readable description.
    """

    kind: str
    table: str
    detail: str


def validate_schema(schema: Schema) -> list[ValidationIssue]:
    """Check PK/FK/unique references; returns all issues found."""
    issues: list[ValidationIssue] = []
    by_name = schema.as_dict()
    for table in schema:
        names = set(table.attribute_names)
        if not table.attributes:
            issues.append(ValidationIssue(
                "empty-table", table.name, "table has no attributes"))
        for col in table.primary_key:
            if col not in names:
                issues.append(ValidationIssue(
                    "pk-missing-column", table.name,
                    f"primary key column {col!r} is not an attribute"))
        for unique in table.unique_keys:
            for col in unique:
                if col not in names:
                    issues.append(ValidationIssue(
                        "unique-missing-column", table.name,
                        f"unique key column {col!r} is not an attribute"))
        for fk in table.foreign_keys:
            for col in fk.columns:
                if col not in names:
                    issues.append(ValidationIssue(
                        "dangling-fk-column", table.name,
                        f"foreign key column {col!r} is not an attribute"))
            target = by_name.get(fk.ref_table)
            if target is None:
                issues.append(ValidationIssue(
                    "dangling-fk-table", table.name,
                    f"foreign key references missing table "
                    f"{fk.ref_table!r}"))
                continue
            target_names = set(target.attribute_names)
            for col in fk.ref_columns:
                if col not in target_names:
                    issues.append(ValidationIssue(
                        "dangling-fk-column", table.name,
                        f"foreign key references missing column "
                        f"{fk.ref_table}.{col}"))
    return issues
