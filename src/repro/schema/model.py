"""Immutable logical schema model.

All names stored in the model are *normalized* (lower-cased, see
:func:`repro.sqlddl.normalize.normalize_identifier`); data types are
*canonical* (see :func:`repro.sqlddl.normalize.canonical_type`). This makes
schema versions directly comparable across dialect and spelling drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sqlddl.ast_nodes import DataType


@dataclass(frozen=True, slots=True)
class Attribute:
    """One attribute (column) of a table, at the logical level.

    Attributes:
        name: normalized attribute name.
        data_type: canonical data type (None for typeless SQLite columns).
        not_null: whether the attribute is declared NOT NULL.
        in_primary_key: whether the attribute participates in the PK.
        in_foreign_key: whether the attribute participates in any FK.
    """

    name: str
    data_type: DataType | None = None
    not_null: bool = False
    in_primary_key: bool = False
    in_foreign_key: bool = False

    def with_keys(self, in_pk: bool, in_fk: bool) -> "Attribute":
        """Copy of this attribute with key-participation flags replaced."""
        return Attribute(name=self.name, data_type=self.data_type,
                         not_null=self.not_null,
                         in_primary_key=in_pk, in_foreign_key=in_fk)


@dataclass(frozen=True, slots=True)
class ForeignKey:
    """One foreign-key relationship of a table.

    Attributes:
        columns: referencing attribute names (normalized), in order.
        ref_table: referenced table name (normalized).
        ref_columns: referenced attribute names; may be empty when the DDL
            relies on the target's primary key.
    """

    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class Table:
    """One table of the logical schema.

    Attributes:
        name: normalized table name.
        attributes: attributes in declaration order.
        primary_key: names of PK attributes, in key order.
        foreign_keys: foreign keys, in declaration order.
        unique_keys: unique constraints as tuples of attribute names.
    """

    name: str
    attributes: tuple[Attribute, ...]
    primary_key: tuple[str, ...] = ()
    foreign_keys: tuple[ForeignKey, ...] = ()
    unique_keys: tuple[tuple[str, ...], ...] = ()

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Attribute names in declaration order."""
        return tuple(a.name for a in self.attributes)

    def attribute(self, name: str) -> Attribute | None:
        """Look an attribute up by (normalized) name, or None."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        return None

    def __contains__(self, name: str) -> bool:
        return any(a.name == name for a in self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)


@dataclass(frozen=True, slots=True)
class Schema:
    """A full logical schema: tables (keyed by normalized name) plus the
    names of the views defined on top of them.

    Views are tracked by name only: the paper's unit of change is the
    attribute, and view bodies are not diffed at that granularity.
    """

    tables: tuple[Table, ...] = ()
    views: tuple[str, ...] = ()

    @property
    def table_names(self) -> tuple[str, ...]:
        """Table names in declaration order."""
        return tuple(t.name for t in self.tables)

    @property
    def table_count(self) -> int:
        """Number of tables."""
        return len(self.tables)

    @property
    def attribute_count(self) -> int:
        """Total number of attributes across all tables — the paper's
        fundamental size measure."""
        return sum(len(t) for t in self.tables)

    def table(self, name: str) -> Table | None:
        """Look a table up by (normalized) name, or None."""
        for tbl in self.tables:
            if tbl.name == name:
                return tbl
        return None

    def as_dict(self) -> dict[str, Table]:
        """Tables keyed by name (fresh dict; the schema stays immutable)."""
        return {t.name: t for t in self.tables}

    def __contains__(self, name: str) -> bool:
        return any(t.name == name for t in self.tables)

    def __len__(self) -> int:
        return len(self.tables)

    def __iter__(self):
        return iter(self.tables)


#: The schema of a project before its DDL file exists.
EMPTY_SCHEMA = Schema(tables=())
