"""Exception hierarchy for the repro library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle anything that goes wrong inside the
pipeline while letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class LexError(ReproError):
    """Raised when the SQL lexer encounters an unreadable character sequence.

    Attributes:
        line: 1-based line of the offending character.
        column: 1-based column of the offending character.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(ReproError):
    """Raised when the DDL parser cannot make sense of a statement.

    Attributes:
        line: 1-based line where parsing failed.
        column: 1-based column where parsing failed.
        statement_start: offset of the statement within the script, if known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0,
                 statement_start: int | None = None):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column
        self.statement_start = statement_start


class SchemaError(ReproError):
    """Raised when a DDL statement cannot be applied to the current schema.

    Examples: creating a table that already exists (without IF NOT EXISTS),
    altering or dropping a missing table or column.
    """


class HistoryError(ReproError):
    """Raised for malformed schema histories.

    Examples: empty commit lists, commits with non-increasing timestamps
    when strict ordering was requested, unreadable history files.
    """


class MetricError(ReproError):
    """Raised when a time-related metric cannot be computed.

    Example: asking for the top-band attainment point of a history whose
    total activity is zero months long.
    """


class LabelError(ReproError):
    """Raised for invalid quantization inputs or malformed label schemes."""


class ClassificationError(ReproError):
    """Raised when pattern classification is asked for impossible input."""


class CorpusError(ReproError):
    """Raised by the synthetic corpus generator for unsatisfiable plans."""


class AnalysisError(ReproError):
    """Raised when a study-level analysis receives unusable input."""


class EngineError(ReproError):
    """Raised for malformed study plans or invalid engine configuration.

    Examples: a stage wired to an input no stage produces, a cyclic
    plan, a non-positive worker count, unhashable cache-key material.
    """


class SourceError(ReproError):
    """Raised when a history source cannot list, fingerprint or load.

    Examples: an unknown ``--source`` spec, a corpus directory with a
    missing or version-mismatched manifest, a git extraction failure,
    an unknown project id.

    The hierarchy distinguishes *permanent* from *transient* source
    failures: a plain :class:`SourceError` means retrying cannot help
    (bad spec, missing manifest, unknown id), while
    :class:`TransientSourceError` marks failures that a retry has a
    real chance of clearing. The engine's ``retry`` error policy acts
    only on the transient subclass; everything else fails on the first
    attempt regardless of the retry budget.
    """


class TransientSourceError(SourceError):
    """A source failure that may succeed if the operation is retried.

    Examples: a ``git`` subprocess exiting non-zero (index locks,
    transient I/O pressure, a concurrent fetch touching the odb), a
    network-backed source timing out. Raise this — never the plain
    :class:`SourceError` — for failure modes where the input itself is
    not known to be bad, so the ``retry`` policy can tell retryable
    failures from permanent ones.
    """


class RunInterrupted(ReproError):
    """Raised when a study run is stopped by SIGINT/SIGTERM mid-flight.

    The executor's graceful-shutdown path raises this after draining
    finished chunks and flushing the journal + ledger, so by the time a
    caller sees it every completed unit of work is durable. ``run_id``
    names the journal of the interrupted run (pass it back via
    ``repro-schema study --resume RUN_ID``); it is ``None`` when the run
    had no cache dir and therefore kept no journal.
    """

    def __init__(self, run_id: str | None = None):
        message = "run interrupted"
        if run_id:
            message = f"run interrupted (resume with --resume {run_id})"
        super().__init__(message)
        self.run_id = run_id


class CliError(ReproError):
    """Raised for command-line-level failures with no deeper home.

    Examples: an output path that cannot be written. Keeping these in
    the :class:`ReproError` hierarchy gives ``main()`` one exit path
    for every failure mode.
    """
