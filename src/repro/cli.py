"""Command-line interface: ``repro-schema`` / ``python -m repro.cli``.

Subcommands:

* ``generate`` — build the synthetic 151-project corpus and save it.
* ``study`` — run the full study and print every paper table/figure;
  ``--source synthetic:|dir:PATH|git:PATH`` picks where the histories
  come from (or ``--corpus`` replays a saved JSON corpus).
* ``corpus export`` / ``corpus import`` — round-trip a corpus through
  the versioned JSONL directory format that ``--source dir:`` reads.
* ``refresh`` — re-derive the study of a growing source incrementally:
  unchanged projects come from the result cache, append-only history
  growth runs through the O(K) delta suffix kernel, and ``--watch``
  polls the source on an interval. Output is byte-identical to a cold
  ``study`` of the same source.
* ``profile`` — measure, label and classify one schema history
  (directory of .sql files or a JSONL commit log).
* ``chart`` — render a history's heartbeat as ASCII or SVG.
* ``ledger`` — print the run ledger recorded under a ``--cache-dir``
  (one row per past run: timings, cache totals, result digest).
* ``resume`` — list interrupted runs whose journal makes them
  resumable via ``study --resume RUN_ID``.

Every failure funnels through the :class:`~repro.errors.ReproError`
hierarchy, so :func:`main` has exactly one error exit path. Exit
codes: 0 success, 1 error, 2 usage (argparse), 3 partial success — the
study completed but quarantined at least one project under
``--on-error skip``/``retry`` (the survivors' results were printed),
130 interrupted (SIGINT/SIGTERM; finished work is journaled and a
resume hint is printed).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import report
from repro.corpus.dataset import load_corpus, save_corpus
from repro.corpus.generator import DEFAULT_SEED, generate_corpus
from repro.engine import (
    EngineSession,
    FaultPlan,
    StudyConfig,
    policy_from_name,
    read_ledger,
)
from repro.errors import CliError, ReproError, RunInterrupted

#: Exit status of a run that completed on survivors only: some
#: projects were quarantined (distinct from 1 = hard error and from
#: argparse's 2 = usage error).
EXIT_PARTIAL = 3

#: Exit status of an interrupted run (the conventional 128 + SIGINT).
#: Comes with a one-line resume hint on stderr; the run's finished
#: work is journaled, so ``study --resume RUN_ID`` picks it back up.
EXIT_INTERRUPTED = 130
from repro.history.heartbeat import schema_heartbeat
from repro.history.repository import (
    load_history_from_directory,
    load_history_from_jsonl,
)
from repro.labels.quantization import label_profile
from repro.metrics.profile import ProjectProfile
from repro.patterns.classifier import classify_with_tolerance
from repro.sources import (
    InMemorySource,
    import_corpus_dir,
    source_from_spec,
)
from repro.study.pipeline import run_full_study_from_source
from repro.viz.ascii_chart import ascii_chart
from repro.viz.svg_chart import svg_chart


#: The process-wide engine session: one warm pool + hot cache + ledger
#: shared by every study-like command this process runs. A second
#: in-process invocation (the service's shape) is pure cache-hit
#: latency; the session's atexit guard reaps the pool on interrupt.
_SESSION: EngineSession | None = None


def _process_session() -> EngineSession:
    """This process's engine session, created on first use."""
    global _SESSION
    if _SESSION is None or _SESSION.closed:
        _SESSION = EngineSession()
    return _SESSION


def _load_history(path: str):
    from repro.errors import HistoryError
    target = Path(path)
    try:
        if target.is_dir():
            return load_history_from_directory(target)
        return load_history_from_jsonl(target)
    except OSError as exc:
        raise HistoryError(f"cannot read history {path}: {exc}") from exc


def _study_config(args: argparse.Namespace) -> StudyConfig:
    """Build the run's :class:`StudyConfig` from CLI arguments."""
    fault_spec = getattr(args, "fault_plan", None)
    faults = FaultPlan.parse(fault_spec) if fault_spec \
        else FaultPlan.from_env()
    return StudyConfig(
        seed=getattr(args, "seed", DEFAULT_SEED),
        jobs=getattr(args, "jobs", 1),
        chunk_size=getattr(args, "chunk_size", None),
        cache_dir=Path(args.cache_dir)
        if getattr(args, "cache_dir", None) else None,
        source=getattr(args, "source", "synthetic:"),
        error_policy=policy_from_name(
            getattr(args, "on_error", "fail"),
            max_retries=getattr(args, "max_retries", 2)),
        stage_timeout=getattr(args, "stage_timeout", None),
        faults=faults if faults else None,
        sample=getattr(args, "sample", None),
        stratified=getattr(args, "stratified", False),
        delta=not getattr(args, "no_delta", False),
        resume_from=getattr(args, "resume", None),
    )


def _resolve_source(args: argparse.Namespace, config: StudyConfig):
    """The history source a study-like command should run over.

    ``--corpus FILE`` (the pre-sources replay path) wins and wraps the
    loaded corpus in-memory; otherwise ``--source`` is parsed.
    """
    if getattr(args, "corpus", None):
        corpus = load_corpus(args.corpus)
        return InMemorySource(corpus.projects, mode="corpus")
    return source_from_spec(config.source, config)


def _write_text(path: str | Path, text: str, what: str) -> None:
    """Write an output file, wrapping failures as :class:`CliError`."""
    try:
        Path(path).write_text(text)
    except OSError as exc:
        raise CliError(f"cannot write {what} {path}: {exc}") from exc


def _print_timings(report_obj) -> None:
    print(report_obj.format_table(), file=sys.stderr)


def _run_study_like(args: argparse.Namespace):
    """The shared study-execution block of study/report/export.

    Owns the plumbing every study-like command repeats: build the
    :class:`StudyConfig` from the shared ``--jobs``/``--cache-dir``/
    ``--on-error`` flags, resolve the history source, run through the
    process-wide engine session, and print ``--timings`` when asked.

    Returns:
        ``(results, report)`` from the full study run.
    """
    config = _study_config(args)
    results, timing = run_full_study_from_source(
        _resolve_source(args, config), config,
        session=_process_session())
    if getattr(args, "timings", False):
        _print_timings(timing)
    return results, timing


def _fault_exit(report_obj) -> int:
    """Surface a run's quarantined projects; pick its exit status.

    Prints one line per failure (and the degraded-run note) to stderr
    and returns :data:`EXIT_PARTIAL` when anything was skipped, 0 for
    a clean run.
    """
    if report_obj.degraded:
        print("warning: run degraded — worker pool lost, unfinished "
              "work re-executed serially", file=sys.stderr)
    if report_obj.quarantined:
        print(f"warning: {report_obj.quarantined} corrupt cache "
              f"entr{'y' if report_obj.quarantined == 1 else 'ies'} "
              f"quarantined and recomputed", file=sys.stderr)
    if getattr(report_obj, "pruned", 0):
        print(f"warning: quarantine cap reached — {report_obj.pruned} "
              f"oldest corrupt entr"
              f"{'y' if report_obj.pruned == 1 else 'ies'} pruned",
              file=sys.stderr)
    if getattr(report_obj, "write_failures", 0) \
            or getattr(report_obj, "journal_degraded", False):
        print("warning: cache/journal writes failing (disk full or "
              "read-only?) — continuing memory-only; this run is not "
              "resumable", file=sys.stderr)
    if not report_obj.failures:
        return 0
    print(f"warning: {len(report_obj.failures)} project(s) skipped "
          f"(results cover the survivors):", file=sys.stderr)
    for failure in report_obj.failures:
        print(f"  {failure.summary()}", file=sys.stderr)
    return EXIT_PARTIAL


def _cmd_generate(args: argparse.Namespace) -> int:
    corpus = generate_corpus(config=_study_config(args))
    save_corpus(corpus, args.output)
    print(f"wrote {len(corpus)} projects to {args.output} "
          f"(seed {corpus.seed})")
    return 0


def _print_study_report(results) -> None:
    """Print every paper table/figure to stdout (study and refresh
    share this byte for byte — refresh output stays cmp-identical)."""
    sections = [
        report.render_table1(results),
        report.render_table2(results),
        report.render_correlations(results),
        report.render_fig4_overview(results),
        report.render_tree(results),
        report.render_coverage(results),
        report.render_prediction(results),
        report.render_section34(results),
        report.render_section52(results),
        report.render_section61(results),
        report.render_section63(results),
    ]
    print(("\n\n" + "=" * 72 + "\n\n").join(sections))


def _cmd_study(args: argparse.Namespace) -> int:
    results, timing = _run_study_like(args)
    _print_study_report(results)
    return _fault_exit(timing)


def _cmd_refresh(args: argparse.Namespace) -> int:
    """Incrementally re-derive the study; optionally keep polling.

    Each poll resolves the source afresh (so a grown corpus dir or a
    new git HEAD is seen), skips cheaply when the source's session key
    is unchanged since the last processed poll, and otherwise runs the
    delta-aware refresh through the process session. The report goes
    to stdout exactly as ``study`` prints it; the delta summary (and
    ``--timings``) go to stderr.
    """
    import time

    from repro.engine import source_session_key

    config = _study_config(args)
    session = _process_session()
    watch = getattr(args, "watch", None)
    max_polls = getattr(args, "max_polls", None)
    polls = 0
    last_key: str | None = None
    status = 0
    while True:
        polls += 1
        source = _resolve_source(args, config)
        key = source_session_key(source)
        if watch and key is not None and key == last_key:
            print(f"refresh: source unchanged, skipping poll {polls}",
                  file=sys.stderr)
        else:
            results, timing = session.refresh(source, config)
            last_key = key
            print(timing.format_delta_summary(), file=sys.stderr)
            if getattr(args, "timings", False):
                _print_timings(timing)
            _print_study_report(results)
            status = _fault_exit(timing)
        if not watch or (max_polls is not None and polls >= max_polls):
            return status
        time.sleep(watch)


def _cmd_profile(args: argparse.Namespace) -> int:
    history = _load_history(args.history)
    profile = ProjectProfile.from_history(history)
    labeled = label_profile(profile)
    result = classify_with_tolerance(labeled)
    marks = profile.landmarks
    print(f"project:            {history.project_name}")
    print(f"PUP (months):       {marks.pup_months}")
    print(f"schema birth:       month {marks.birth_month} "
          f"({marks.birth_pct:.0%} of life)")
    print(f"birth volume:       {marks.birth_volume_fraction:.0%} "
          f"of total activity")
    print(f"top band (90%):     month {marks.top_band_month} "
          f"({marks.top_band_pct:.0%} of life)")
    print(f"active growth mo.:  {marks.active_growth_months}")
    print(f"vault:              {marks.has_vault}")
    print(f"labels:             {labeled.feature_dict()}")
    suffix = " (exception)" if result.is_exception else ""
    print(f"pattern:            {result.pattern.value}{suffix}")
    from repro.patterns.describe import describe
    from repro.patterns.taxonomy import Pattern
    if result.pattern is not Pattern.UNCLASSIFIED:
        description = describe(result.pattern)
        print(f"shape:              {description.shape}")
        print(f"meaning:            {description.meaning}")
        print(f"advice:             {description.advice}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    """Classify every history found under a directory."""
    from repro.errors import HistoryError
    from repro.history.filters import filter_study_corpus
    from repro.viz.tables import format_table

    root = Path(args.directory)
    histories = []
    for entry in sorted(root.iterdir()) if root.is_dir() else []:
        try:
            if entry.is_dir():
                histories.append(load_history_from_directory(entry))
            elif entry.suffix == ".jsonl":
                histories.append(load_history_from_jsonl(entry))
        except (HistoryError, OSError) as exc:
            print(f"skipping {entry.name}: {exc}", file=sys.stderr)
    if not histories:
        raise CliError(f"no histories found under {root}")

    if args.apply_protocol:
        result = filter_study_corpus(histories)
        for excluded in result.excluded:
            print(f"excluded {excluded.name}: {excluded.reason}",
                  file=sys.stderr)
        histories = list(result.kept)

    rows = []
    for history in histories:
        profile = ProjectProfile.from_history(history)
        labeled = label_profile(profile)
        outcome = classify_with_tolerance(labeled)
        rows.append([
            history.project_name, profile.pup_months,
            profile.birth_month, profile.total_activity,
            outcome.pattern.value
            + (" (exception)" if outcome.is_exception else ""),
        ])
    print(format_table(
        ["project", "PUP", "birth", "activity", "pattern"], rows,
        title=f"Classified {len(rows)} histories"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report.markdown import markdown_report
    results, timing = _run_study_like(args)
    _write_text(args.output, markdown_report(results), "report")
    print(f"wrote {args.output}")
    return _fault_exit(timing)


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.engine import compute_records_from_source
    from repro.report.export import export_dataset
    config = _study_config(args)
    records, timing = compute_records_from_source(
        _resolve_source(args, config), config,
        session=_process_session())
    paths = export_dataset(records, args.output)
    for path in paths:
        print(f"wrote {path}")
    return _fault_exit(timing)


def _stratified_ids(source, limit: int) -> list[str]:
    """The first ``limit`` project ids, drawn round-robin across strata.

    The id-level counterpart of
    :func:`repro.sources.corpusdir.stratified` — same selection, same
    order, but over a lazy source's plan so nothing is realized.
    """
    from repro.sources import source_stratum
    groups: dict[str, list[str]] = {}
    for pid in source.project_ids():
        groups.setdefault(source_stratum(source, pid), []).append(pid)
    picked: list[str] = []
    queues = list(groups.values())
    while queues and len(picked) < limit:
        for queue in list(queues):
            if len(picked) >= limit:
                break
            picked.append(queue.pop(0))
            if not queue:
                queues.remove(queue)
    return picked


def _cmd_corpus_export(args: argparse.Namespace) -> int:
    from repro.sources import write_corpus_dir
    from repro.sources.corpusdir import stratified
    from repro.sources.synthetic import SyntheticSource
    config = _study_config(args)
    if args.corpus:
        # Replaying a saved JSON corpus: it is already in memory, so
        # stream straight from its project list.
        corpus = load_corpus(args.corpus)
        seed = corpus.seed
        projects = corpus.projects if args.limit is None \
            else stratified(list(corpus.projects), args.limit)
    else:
        # Regenerating: realize projects one at a time off the lazy
        # synthetic plan so export memory stays O(shard), not
        # O(corpus).
        source = SyntheticSource(seed=config.seed)
        pids = source.project_ids() if args.limit is None \
            else _stratified_ids(source, args.limit)
        seed = source.seed
        projects = (source.load(pid) for pid in pids)
    written = write_corpus_dir(projects, args.output, seed=seed,
                               shard_size=args.shard_size)
    layout = f"{written.shards} shards" if written.shards \
        else "per-project files"
    print(f"wrote {written.projects} projects to {written.root} "
          f"({layout}, seed {seed})")
    return 0


def _cmd_corpus_import(args: argparse.Namespace) -> int:
    corpus = import_corpus_dir(args.directory)
    save_corpus(corpus, args.output)
    print(f"wrote {len(corpus)} projects to {args.output} "
          f"(seed {corpus.seed})")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.diff.engine import DiffOptions, diff_schemas
    from repro.errors import HistoryError
    from repro.schema.builder import build_schema
    from repro.sqlddl.parser import parse_script

    def load(path: str):
        try:
            return build_schema(parse_script(Path(path).read_text()))
        except OSError as exc:
            raise HistoryError(f"cannot read {path}: {exc}") from exc

    old_schema = load(args.old)
    new_schema = load(args.new)
    options = DiffOptions(detect_renames=args.detect_renames)
    delta = diff_schemas(old_schema, new_schema, options)
    print(f"tables added:   {', '.join(delta.tables_added) or '-'}")
    print(f"tables dropped: {', '.join(delta.tables_dropped) or '-'}")
    if delta.tables_renamed:
        renames = ", ".join(f"{a}->{b}" for a, b in delta.tables_renamed)
        print(f"tables renamed: {renames}")
    print(f"affected attributes: {delta.total_affected} "
          f"({delta.expansion_count} expansion / "
          f"{delta.maintenance_count} maintenance)")
    for change in delta:
        detail = f"  [{change.detail}]" if change.detail else ""
        print(f"  {change.kind.value:20s} {change.table}."
              f"{change.attribute}{detail}")
    if args.migration:
        from repro.diff.migrate import migration_script
        _write_text(args.migration,
                    migration_script(old_schema, new_schema, options),
                    "migration script")
        print(f"wrote migration script: {args.migration}")
    return 0


def _cmd_ledger(args: argparse.Namespace) -> int:
    """Print the run ledger of a cache directory as a table."""
    from repro.viz.tables import format_table
    runs = read_ledger(Path(args.cache_dir))
    if not runs:
        print(f"no ledger entries under {args.cache_dir}")
        return 0
    if getattr(args, "json", False):
        import json as _json
        for run in runs:
            print(_json.dumps(run, sort_keys=True))
        return 0
    headers = ("run", "started", "seconds", "items", "hits", "misses",
               "hot", "packed", "delta", "retries", "fail", "degraded",
               "digest")
    rows = []
    for run in runs:
        digest = str(run.get("result_digest", ""))[:12]
        appended = run.get("delta_appended", 0)
        rewritten = run.get("delta_rewritten", 0)
        parsed = run.get("delta_parsed", 0)
        delta = f"{appended}a/{rewritten}r/{parsed}p" \
            if appended or rewritten or parsed else "-"
        rows.append((
            run.get("run_id", "-"),
            str(run.get("started", ""))[:19],
            f"{run.get('seconds', 0.0):.3f}",
            run.get("items", 0),
            run.get("cache_hits", 0),
            run.get("cache_misses", 0),
            f"{run.get('hot_hits', 0)}/{run.get('hot_misses', 0)}",
            run.get("pack_rows", 0),
            delta,
            run.get("retries", 0),
            len(run.get("failures", ())),
            "yes" if run.get("degraded") else "no",
            digest or "-",
        ))
    print(format_table(headers, rows,
                       title=f"run ledger — {args.cache_dir}"))
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    """List the resumable (interrupted/aborted) runs of a cache dir."""
    from repro.engine import resumable_runs
    from repro.viz.tables import format_table
    runs = resumable_runs(Path(args.cache_dir))
    if getattr(args, "json", False):
        import json as _json
        for info in runs:
            print(_json.dumps({
                "run_id": info.run_id, "started": info.started,
                "status": info.status, "source": info.source,
                "chunks": len(info.chunks), "items": info.items,
                "resumed_from": info.resumed_from,
            }, sort_keys=True))
        return 0
    if not runs:
        print(f"no resumable runs under {args.cache_dir}")
        return 0
    headers = ("run", "started", "status", "chunks", "items", "source")
    rows = [(info.run_id, str(info.started or "")[:19], info.status,
             len(info.chunks), info.items, (info.source or "-")[:16])
            for info in runs]
    print(format_table(headers, rows,
                       title=f"resumable runs — {args.cache_dir}"))
    print(f"\nresume with: repro-schema study --resume RUN_ID "
          f"--cache-dir {args.cache_dir} ...", file=sys.stderr)
    return 0


def _cmd_chart(args: argparse.Namespace) -> int:
    history = _load_history(args.history)
    series = schema_heartbeat(history)
    if args.svg:
        _write_text(args.svg,
                    svg_chart(series, title=history.project_name),
                    "chart")
        print(f"wrote {args.svg}")
    else:
        print(ascii_chart(series, title=history.project_name))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-schema",
        description="Time-related patterns of schema evolution "
                    "(EDBT 2025 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_execution_flags(p, cache: bool = True,
                            faults: bool = True):
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for per-project work "
                            "(default: 1, serial)")
        p.add_argument("--chunk-size", type=int, metavar="N",
                       help="items per pickled work chunk sent to a "
                            "worker; overrides both the automatic "
                            "sizing and any per-stage default (the "
                            "chosen size shows in the --timings "
                            "'chunk' column)")
        p.add_argument("--no-incremental", action="store_true",
                       help="disable incremental statement-level "
                            "parsing; re-parse every snapshot in full "
                            "(output is identical, just slower)")
        if cache:
            p.add_argument("--cache-dir", metavar="DIR",
                           help="content-addressed result cache; "
                                "re-runs recompute only changed "
                                "projects (default: no cache)")
            p.add_argument("--no-delta", action="store_true",
                           help="do not maintain per-project study "
                                "checkpoints in the cache dir; "
                                "'refresh' then recomputes grown "
                                "histories in full (output is "
                                "identical, just O(N) instead of "
                                "O(K))")
        if faults:
            p.add_argument("--on-error",
                           choices=["fail", "skip", "retry"],
                           default="fail",
                           help="per-project failure policy: 'fail' "
                                "aborts on the first bad project "
                                "(default), 'skip' quarantines it and "
                                "computes over the survivors (exit "
                                f"code {EXIT_PARTIAL}), 'retry' also "
                                "re-attempts transient source "
                                "failures with backoff first")
            p.add_argument("--max-retries", type=int, default=2,
                           metavar="N",
                           help="extra attempts for transient source "
                                "failures under --on-error retry "
                                "(default: 2)")
            p.add_argument("--stage-timeout", type=float,
                           metavar="SECONDS",
                           help="wall-clock budget per in-flight "
                                "parallel work chunk; overrunning "
                                "chunks count as failures (default: "
                                "no timeout)")
            p.add_argument("--fault-plan", metavar="SPEC",
                           help="inject deterministic faults for "
                                "chaos testing, e.g. 'parse@proj-01;"
                                "source@proj-02*2;cache@~10' "
                                "(overrides $REPRO_FAULT_PLAN)")

    def add_source_flag(p):
        p.add_argument("--source", default="synthetic:", metavar="SPEC",
                       help="history source: 'synthetic:[SEED]' (the "
                            "generated corpus), 'dir:PATH' (a corpus "
                            "directory from 'corpus export') or "
                            "'git:PATH' (DDL files of a checked-out "
                            "git repository); default: synthetic:")
        p.add_argument("--sample", type=int, metavar="N",
                       help="run over a deterministic N-project "
                            "sample of the source (seeded by --seed) "
                            "instead of the full corpus")
        p.add_argument("--stratified", action="store_true",
                       help="draw --sample round-robin across "
                            "patterns/shards so small samples stay "
                            "pattern-diverse")

    p_generate = sub.add_parser("generate",
                                help="generate the synthetic corpus")
    p_generate.add_argument("output", help="output corpus JSON path")
    p_generate.add_argument("--seed", type=int, default=DEFAULT_SEED)
    add_execution_flags(p_generate, cache=False, faults=False)
    p_generate.set_defaults(func=_cmd_generate)

    p_study = sub.add_parser("study", help="run the full study")
    p_study.add_argument("--corpus", help="saved corpus JSON "
                                          "(overrides --source)")
    p_study.add_argument("--seed", type=int, default=DEFAULT_SEED)
    add_source_flag(p_study)
    add_execution_flags(p_study)
    p_study.add_argument("--timings", action="store_true",
                         help="print the per-stage execution report "
                              "to stderr")
    p_study.add_argument("--resume", metavar="RUN_ID",
                         help="resume an interrupted run: replay its "
                              "journaled chunks from the cache and "
                              "compute only the remainder (requires "
                              "the same --cache-dir; output is "
                              "byte-identical to an uninterrupted "
                              "run). See 'repro-schema resume' for "
                              "resumable run ids")
    p_study.set_defaults(func=_cmd_study)

    p_refresh = sub.add_parser(
        "refresh", help="incrementally re-derive the study of a "
                        "growing source (append-only histories run "
                        "through the O(K) delta kernel)")
    p_refresh.add_argument("--corpus", help="saved corpus JSON "
                                            "(overrides --source)")
    p_refresh.add_argument("--seed", type=int, default=DEFAULT_SEED)
    add_source_flag(p_refresh)
    add_execution_flags(p_refresh)
    p_refresh.add_argument("--timings", action="store_true",
                           help="print the per-stage execution report "
                                "to stderr")
    p_refresh.add_argument("--watch", type=float, metavar="SECONDS",
                           help="keep polling the source every "
                                "SECONDS, refreshing whenever its "
                                "content identity changes (default: "
                                "refresh once and exit)")
    p_refresh.add_argument("--max-polls", type=int, metavar="N",
                           help="stop a --watch loop after N polls "
                                "(default: poll forever)")
    p_refresh.set_defaults(func=_cmd_refresh)

    p_corpus = sub.add_parser(
        "corpus", help="corpus-directory import/export")
    corpus_sub = p_corpus.add_subparsers(dest="corpus_command",
                                         required=True)
    p_cx = corpus_sub.add_parser(
        "export", help="write a corpus as a JSONL directory "
                       "(readable via --source dir:PATH)")
    p_cx.add_argument("output", help="target directory")
    p_cx.add_argument("--corpus", help="saved corpus JSON "
                                       "(default: regenerate)")
    p_cx.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p_cx.add_argument("--limit", type=int, metavar="N",
                      help="export only N projects, sampled "
                           "round-robin across patterns")
    p_cx.add_argument("--shard-size", type=int, metavar="N",
                      help="write the sharded v2 layout with N "
                           "projects per shards/NNNN.jsonl file "
                           "(default: one file per project)")
    p_cx.set_defaults(func=_cmd_corpus_export)
    p_ci = corpus_sub.add_parser(
        "import", help="load a corpus directory back into one JSON file")
    p_ci.add_argument("directory", help="corpus directory")
    p_ci.add_argument("output", help="output corpus JSON path")
    p_ci.set_defaults(func=_cmd_corpus_import)

    p_profile = sub.add_parser("profile",
                               help="profile one schema history")
    p_profile.add_argument("history",
                           help=".sql directory or JSONL commit log")
    p_profile.set_defaults(func=_cmd_profile)

    p_classify = sub.add_parser(
        "classify", help="classify every history in a directory")
    p_classify.add_argument("directory",
                            help="directory of history subdirs/.jsonl")
    p_classify.add_argument("--apply-protocol", action="store_true",
                            help="apply the paper's corpus-selection "
                                 "protocol first (Sec. 3.1)")
    p_classify.set_defaults(func=_cmd_classify)

    p_report = sub.add_parser("report",
                              help="write the full study as Markdown")
    p_report.add_argument("output", help="output .md path")
    p_report.add_argument("--corpus", help="saved corpus JSON "
                                           "(overrides --source)")
    p_report.add_argument("--seed", type=int, default=DEFAULT_SEED)
    add_source_flag(p_report)
    add_execution_flags(p_report)
    p_report.set_defaults(func=_cmd_report)

    p_export = sub.add_parser("export",
                              help="export the study dataset as CSV")
    p_export.add_argument("output", help="output directory")
    p_export.add_argument("--corpus", help="saved corpus JSON "
                                           "(overrides --source)")
    p_export.add_argument("--seed", type=int, default=DEFAULT_SEED)
    add_source_flag(p_export)
    add_execution_flags(p_export)
    p_export.set_defaults(func=_cmd_export)

    p_diff = sub.add_parser("diff",
                            help="logical diff of two .sql files")
    p_diff.add_argument("old", help="earlier DDL file")
    p_diff.add_argument("new", help="later DDL file")
    p_diff.add_argument("--detect-renames", action="store_true",
                        help="match renamed tables by attribute overlap")
    p_diff.add_argument("--migration", metavar="OUT.SQL",
                        help="also write a migration script "
                             "transforming OLD into NEW")
    p_diff.set_defaults(func=_cmd_diff)

    p_resume = sub.add_parser(
        "resume", help="list interrupted runs that can be resumed")
    p_resume.add_argument("cache_dir",
                          help="cache directory holding journal/ "
                               "(the --cache-dir of the interrupted "
                               "run)")
    p_resume.add_argument("--json", action="store_true",
                          help="print one JSON object per run instead "
                               "of the table")
    p_resume.set_defaults(func=_cmd_resume)

    p_ledger = sub.add_parser(
        "ledger", help="print the run ledger of a cache directory")
    p_ledger.add_argument("cache_dir",
                          help="cache directory holding ledger.jsonl "
                               "(the --cache-dir of past runs)")
    p_ledger.add_argument("--json", action="store_true",
                          help="print raw JSONL entries instead of "
                               "the table")
    p_ledger.set_defaults(func=_cmd_ledger)

    p_chart = sub.add_parser("chart", help="chart one schema history")
    p_chart.add_argument("history",
                         help=".sql directory or JSONL commit log")
    p_chart.add_argument("--svg", help="write SVG to this path instead "
                                       "of printing ASCII")
    p_chart.set_defaults(func=_cmd_chart)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "no_incremental", False):
        from repro.history.repository import set_incremental_parse_default
        set_incremental_parse_default(False)
    try:
        return args.func(args)
    except RunInterrupted as exc:
        # Graceful shutdown already drained in-flight work and flushed
        # the journal; all that is left is the one-line resume hint.
        if exc.run_id:
            print(f"interrupted — resume with: repro-schema study "
                  f"--resume {exc.run_id}", file=sys.stderr)
        else:
            print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except KeyboardInterrupt:
        # A second Ctrl-C during the drain, or an interrupt outside a
        # journaled run (e.g. sleeping between --watch polls).
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
