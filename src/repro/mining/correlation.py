"""Spearman rank correlation, implemented from first principles.

Used for the paper's Fig. 2 (correlations between the time-related
measures). Tests cross-check against :func:`scipy.stats.spearmanr`.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import AnalysisError


def rankdata(values: Sequence[float]) -> list[float]:
    """Ranks of ``values`` (1-based), with ties receiving average ranks."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) \
                and values[order[j + 1]] == values[order[i]]:
            j += 1
        average = (i + j) / 2 + 1  # average of 1-based positions i+1..j+1
        for k in range(i, j + 1):
            ranks[order[k]] = average
        i = j + 1
    return ranks


def _pearson(x: Sequence[float], y: Sequence[float]) -> float:
    n = len(x)
    mean_x = sum(x) / n
    mean_y = sum(y) / n
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(x, y))
    var_x = sum((a - mean_x) ** 2 for a in x)
    var_y = sum((b - mean_y) ** 2 for b in y)
    if var_x == 0 or var_y == 0:
        return float("nan")
    return cov / math.sqrt(var_x * var_y)


def spearman_rho(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank-correlation coefficient of two samples.

    Returns NaN when either sample is constant (undefined correlation).

    Raises:
        AnalysisError: for mismatched lengths or samples shorter than 2.
    """
    if len(x) != len(y):
        raise AnalysisError(f"sample lengths differ: {len(x)} vs {len(y)}")
    if len(x) < 2:
        raise AnalysisError("need at least two observations")
    return _pearson(rankdata(x), rankdata(y))


def spearman_matrix(measures: Mapping[str, Sequence[float]]
                    ) -> dict[tuple[str, str], float]:
    """Pairwise Spearman correlations of named measures.

    Args:
        measures: measure name -> observation vector; all vectors must
            share one length.

    Returns:
        ``{(name_a, name_b): rho}`` for every unordered pair (keys are
        stored in both orders plus the diagonal at 1.0).
    """
    names = list(measures)
    out: dict[tuple[str, str], float] = {}
    for i, a in enumerate(names):
        out[(a, a)] = 1.0
        for b in names[i + 1:]:
            rho = spearman_rho(measures[a], measures[b])
            out[(a, b)] = rho
            out[(b, a)] = rho
    return out
