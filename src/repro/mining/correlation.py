"""Spearman rank correlation, implemented from first principles.

Used for the paper's Fig. 2 (correlations between the time-related
measures). Tests cross-check against :func:`scipy.stats.spearmanr`.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import AnalysisError


def rankdata(values: Sequence[float]) -> list[float]:
    """Ranks of ``values`` (1-based), with ties receiving average ranks."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) \
                and values[order[j + 1]] == values[order[i]]:
            j += 1
        average = (i + j) / 2 + 1  # average of 1-based positions i+1..j+1
        for k in range(i, j + 1):
            ranks[order[k]] = average
        i = j + 1
    return ranks


def _pearson(x: Sequence[float], y: Sequence[float]) -> float:
    n = len(x)
    mean_x = sum(x) / n
    mean_y = sum(y) / n
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(x, y))
    var_x = sum((a - mean_x) ** 2 for a in x)
    var_y = sum((b - mean_y) ** 2 for b in y)
    if var_x == 0 or var_y == 0:
        return float("nan")
    return cov / math.sqrt(var_x * var_y)


def spearman_rho(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank-correlation coefficient of two samples.

    Returns NaN when either sample is constant (undefined correlation).

    Raises:
        AnalysisError: for mismatched lengths or samples shorter than 2.
    """
    if len(x) != len(y):
        raise AnalysisError(f"sample lengths differ: {len(x)} vs {len(y)}")
    if len(x) < 2:
        raise AnalysisError("need at least two observations")
    return _pearson(rankdata(x), rankdata(y))


def spearman_matrix(measures: Mapping[str, Sequence[float]]
                    ) -> dict[tuple[str, str], float]:
    """Pairwise Spearman correlations of named measures.

    Args:
        measures: measure name -> observation vector; all vectors must
            share one length.

    Returns:
        ``{(name_a, name_b): rho}`` for every unordered pair (keys are
        stored in both orders plus the diagonal at 1.0).
    """
    names = list(measures)
    out: dict[tuple[str, str], float] = {}
    for i, a in enumerate(names):
        out[(a, a)] = 1.0
        for b in names[i + 1:]:
            rho = spearman_rho(measures[a], measures[b])
            out[(a, b)] = rho
            out[(b, a)] = rho
    return out


def spearman_matrix_ranked(measures: Mapping[str, Sequence[float]]
                           ) -> dict[tuple[str, str], float]:
    """:func:`spearman_matrix` with each measure rank-transformed once.

    Numerically identical — the same :func:`rankdata` feeds the same
    ``_pearson`` — but the rank transform runs once per measure instead
    of once per ordered pair, so ``k`` measures cost ``k`` sorts rather
    than ``k·(k-1)``. Key order and values match the pairwise form
    exactly.

    Raises:
        AnalysisError: for mismatched vector lengths, or (when there is
            more than one measure) samples shorter than 2.
    """
    names = list(measures)
    ranked: dict[str, list[float]] = {}
    length: int | None = None
    for name in names:
        values = measures[name]
        if length is None:
            length = len(values)
        elif len(values) != length:
            raise AnalysisError(
                f"sample lengths differ: {length} vs {len(values)}")
        ranked[name] = rankdata(values)
    if len(names) > 1 and length is not None and length < 2:
        raise AnalysisError("need at least two observations")
    out: dict[tuple[str, str], float] = {}
    for i, a in enumerate(names):
        out[(a, a)] = 1.0
        for b in names[i + 1:]:
            rho = _pearson(ranked[a], ranked[b])
            out[(a, b)] = rho
            out[(b, a)] = rho
    return out
