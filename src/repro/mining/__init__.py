"""Mining and validation algorithms built from scratch.

No scikit-learn offline, so this package implements the paper's
quantitative-validation machinery directly:

* a CART-style decision tree over categorical label features (Fig. 5),
* Spearman rank correlation (Fig. 2), cross-checked against scipy,
* pattern centroids and Mean Distance to Centroid (§5.2),
* k-means and agglomerative clustering over heartbeat vectors, plus a
  silhouette score — the quantitative aid for the grounded-theory
  grouping and the completeness probe.
"""

from repro.mining.decision_tree import DecisionTree, TreeNode
from repro.mining.correlation import (
    rankdata,
    spearman_matrix,
    spearman_rho,
)
from repro.mining.centroids import CentroidReport, centroid_report
from repro.mining.clustering import (
    agglomerative,
    kmeans,
    silhouette_score,
)
from repro.mining.predictor import (
    LeaveOneOutReport,
    NaiveBayesPredictor,
    leave_one_out,
)

__all__ = [
    "LeaveOneOutReport",
    "NaiveBayesPredictor",
    "leave_one_out",
    "CentroidReport",
    "DecisionTree",
    "TreeNode",
    "agglomerative",
    "centroid_report",
    "kmeans",
    "rankdata",
    "silhouette_score",
    "spearman_matrix",
    "spearman_rho",
]
