"""Bootstrap confidence intervals for small-sample medians.

The paper reports per-pattern medians over small populations (7–41
projects). Percentile-bootstrap intervals quantify how much those
medians can be trusted — an inexpensive statistical-rigor upgrade used
by the §6.1 benchmark.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import Sequence

from repro.errors import AnalysisError


@dataclass(frozen=True, slots=True)
class BootstrapCI:
    """A percentile-bootstrap confidence interval.

    Attributes:
        point: the statistic on the original sample.
        low / high: the interval bounds.
        confidence: the nominal coverage (e.g. 0.95).
    """

    point: float
    low: float
    high: float
    confidence: float

    def __str__(self) -> str:
        return (f"{self.point:g} "
                f"[{self.low:g}, {self.high:g}]")

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval."""
        return self.low <= value <= self.high


def bootstrap_median_ci(values: Sequence[float], seed: int = 0,
                        iterations: int = 2000,
                        confidence: float = 0.95) -> BootstrapCI:
    """Percentile-bootstrap CI for the median of ``values``.

    Args:
        values: the sample (>= 1 observation).
        seed: RNG seed (deterministic resampling).
        iterations: bootstrap resamples.
        confidence: nominal coverage in (0, 1).

    Raises:
        AnalysisError: for empty samples or invalid parameters.
    """
    if not values:
        raise AnalysisError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError("confidence must be in (0, 1)")
    if iterations < 10:
        raise AnalysisError("need at least 10 bootstrap iterations")
    rng = random.Random(seed)
    data = list(values)
    point = float(statistics.median(data))
    size = len(data)
    medians = sorted(
        statistics.median(rng.choices(data, k=size))
        for _ in range(iterations))
    alpha = (1.0 - confidence) / 2.0
    low_index = int(alpha * iterations)
    high_index = min(int((1.0 - alpha) * iterations),
                     iterations - 1)
    return BootstrapCI(point=point,
                       low=float(medians[low_index]),
                       high=float(medians[high_index]),
                       confidence=confidence)
