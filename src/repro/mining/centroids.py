"""Pattern centroids and Mean Distance to Centroid (paper §5.2).

The paper quantizes each project's cumulative-progress line into a
20-point vector, computes the centroid of each pattern, and reports the
Mean Distance to Centroid (MDC, 0.06–1.25 in their corpus) as evidence of
pattern cohesion. This module computes exactly that, plus the pairwise
centroid distances used to argue the patterns are mutually distinct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import AnalysisError
from repro.metrics.timeseries import euclidean_distance, mean_vector


@dataclass(frozen=True)
class CentroidReport:
    """Cohesion statistics over pattern-grouped vectors.

    Attributes:
        centroids: group key -> centroid vector.
        mdc: group key -> mean distance of members to their centroid.
        max_distance: group key -> farthest member distance.
        sizes: group key -> member count.
    """

    centroids: dict[str, tuple[float, ...]]
    mdc: dict[str, float]
    max_distance: dict[str, float]
    sizes: dict[str, int]

    def centroid_distance(self, left: str, right: str) -> float:
        """Euclidean distance between two group centroids."""
        return euclidean_distance(self.centroids[left],
                                  self.centroids[right])

    def pairwise_centroid_distances(self) -> dict[tuple[str, str], float]:
        """Distances between every unordered centroid pair."""
        names = sorted(self.centroids)
        out: dict[tuple[str, str], float] = {}
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                out[(a, b)] = self.centroid_distance(a, b)
        return out

    def separation_ratio(self) -> float:
        """Smallest centroid-pair distance over the largest MDC — a crude
        cohesion-vs-separation indicator (> 1 is comfortable)."""
        pair_distances = self.pairwise_centroid_distances()
        if not pair_distances:
            raise AnalysisError("need at least two groups")
        largest_mdc = max(self.mdc.values())
        if largest_mdc == 0:
            return float("inf")
        return min(pair_distances.values()) / largest_mdc


def centroid_report(groups: Mapping[str, Sequence[Sequence[float]]]
                    ) -> CentroidReport:
    """Compute centroids and MDC for vector groups.

    Args:
        groups: group key -> list of member vectors (non-empty).

    Raises:
        AnalysisError: for empty input or empty groups.
    """
    if not groups:
        raise AnalysisError("no groups given")
    centroids: dict[str, tuple[float, ...]] = {}
    mdc: dict[str, float] = {}
    max_distance: dict[str, float] = {}
    sizes: dict[str, int] = {}
    for key, vectors in groups.items():
        vectors = [tuple(v) for v in vectors]
        if not vectors:
            raise AnalysisError(f"group {key!r} is empty")
        center = mean_vector(vectors)
        distances = [euclidean_distance(v, center) for v in vectors]
        centroids[key] = center
        mdc[key] = sum(distances) / len(distances)
        max_distance[key] = max(distances)
        sizes[key] = len(vectors)
    return CentroidReport(centroids=centroids, mdc=mdc,
                          max_distance=max_distance, sizes=sizes)
