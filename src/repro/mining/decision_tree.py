"""A CART-style decision tree over categorical features.

The paper (Fig. 5) extracts a decision tree from the labeled metric
values *after* manual annotation, to show the patterns are automatically
separable (4 of 151 misclassified). This module reimplements that:
multiway splits on categorical features, Gini impurity, majority-vote
leaves, depth/size stopping rules, and a text rendering of the tree.

Samples are plain ``dict[str, str]`` feature mappings with hashable
labels; nothing here is specific to schema evolution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

from repro.errors import AnalysisError

Sample = Mapping[str, str]


def gini_impurity(labels: Sequence[Hashable]) -> float:
    """Gini impurity of a label multiset (0 = pure)."""
    total = len(labels)
    if total == 0:
        return 0.0
    counts = Counter(labels)
    return 1.0 - sum((c / total) ** 2 for c in counts.values())


@dataclass
class TreeNode:
    """One node of the fitted tree.

    Attributes:
        prediction: majority label at this node (used when a leaf, or
            when an unseen feature value arrives at prediction time).
        size: number of training samples that reached this node.
        feature: split feature, or None for a leaf.
        children: feature value -> child node (multiway split).
    """

    prediction: Hashable
    size: int
    feature: str | None = None
    children: dict[str, "TreeNode"] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        """True when the node does not split further."""
        return self.feature is None

    def depth(self) -> int:
        """Height of the subtree rooted here (leaf = 0)."""
        if self.is_leaf:
            return 0
        return 1 + max(child.depth() for child in self.children.values())

    def leaf_count(self) -> int:
        """Number of leaves in the subtree."""
        if self.is_leaf:
            return 1
        return sum(child.leaf_count() for child in self.children.values())


class DecisionTree:
    """Multiway categorical decision tree (Gini, majority leaves).

    Args:
        max_depth: maximum number of splits along any path.
        min_samples_split: smallest node the tree will try to split.
        min_gain: minimum impurity reduction for a split to be kept.
    """

    def __init__(self, max_depth: int = 6, min_samples_split: int = 2,
                 min_gain: float = 1e-9):
        if max_depth < 0:
            raise AnalysisError("max_depth cannot be negative")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_gain = min_gain
        self.root: TreeNode | None = None
        self._features: tuple[str, ...] = ()

    # ------------------------------------------------------------------

    def fit(self, samples: Sequence[Sample],
            labels: Sequence[Hashable]) -> "DecisionTree":
        """Grow the tree on a labeled sample set; returns self.

        Raises:
            AnalysisError: for empty or inconsistent training input.
        """
        if not samples:
            raise AnalysisError("cannot fit a tree on zero samples")
        if len(samples) != len(labels):
            raise AnalysisError("samples and labels must align")
        self._features = tuple(samples[0].keys())
        for sample in samples:
            if tuple(sample.keys()) != self._features:
                raise AnalysisError("all samples must share one feature set")
        self.root = self._grow(list(samples), list(labels), depth=0)
        return self

    def _grow(self, samples: list[Sample], labels: list[Hashable],
              depth: int) -> TreeNode:
        majority = Counter(labels).most_common(1)[0][0]
        node = TreeNode(prediction=majority, size=len(samples))
        if (depth >= self.max_depth
                or len(samples) < self.min_samples_split
                or gini_impurity(labels) == 0.0):
            return node
        feature, gain = self._best_split(samples, labels)
        if feature is None or gain < self.min_gain:
            return node
        node.feature = feature
        groups: dict[str, tuple[list[Sample], list[Hashable]]] = {}
        for sample, label in zip(samples, labels):
            bucket = groups.setdefault(sample[feature], ([], []))
            bucket[0].append(sample)
            bucket[1].append(label)
        for value, (sub_samples, sub_labels) in sorted(groups.items()):
            node.children[value] = self._grow(sub_samples, sub_labels,
                                              depth + 1)
        return node

    def _best_split(self, samples: list[Sample],
                    labels: list[Hashable]) -> tuple[str | None, float]:
        base = gini_impurity(labels)
        total = len(samples)
        best_feature = None
        best_gain = 0.0
        for feature in self._features:
            groups: dict[str, list[Hashable]] = {}
            for sample, label in zip(samples, labels):
                groups.setdefault(sample[feature], []).append(label)
            if len(groups) < 2:
                continue
            weighted = sum(len(g) / total * gini_impurity(g)
                           for g in groups.values())
            gain = base - weighted
            if gain > best_gain:
                best_feature = feature
                best_gain = gain
        return best_feature, best_gain

    # ------------------------------------------------------------------

    def predict(self, sample: Sample) -> Hashable:
        """Predict the label of one sample.

        Unseen feature values fall back to the deepest reached node's
        majority label.

        Raises:
            AnalysisError: when called before :meth:`fit`.
        """
        if self.root is None:
            raise AnalysisError("tree is not fitted")
        node = self.root
        while not node.is_leaf:
            child = node.children.get(sample.get(node.feature, ""))
            if child is None:
                return node.prediction
            node = child
        return node.prediction

    def training_errors(self, samples: Sequence[Sample],
                        labels: Sequence[Hashable]) -> list[int]:
        """Indices of samples the fitted tree misclassifies."""
        return [i for i, (s, l) in enumerate(zip(samples, labels))
                if self.predict(s) != l]

    # ------------------------------------------------------------------

    def render(self) -> str:
        """Human-readable text rendering of the tree.

        Raises:
            AnalysisError: when called before :meth:`fit`.
        """
        if self.root is None:
            raise AnalysisError("tree is not fitted")
        lines: list[str] = []
        self._render_node(self.root, prefix="", lines=lines)
        return "\n".join(lines)

    def _render_node(self, node: TreeNode, prefix: str,
                     lines: list[str]) -> None:
        if node.is_leaf:
            lines.append(f"{prefix}-> {node.prediction} "
                         f"[n={node.size}]")
            return
        lines.append(f"{prefix}[{node.feature}?] (n={node.size})")
        for value, child in node.children.items():
            lines.append(f"{prefix}  = {value}:")
            self._render_node(child, prefix + "    ", lines)

    def to_dot(self, name: str = "decision_tree") -> str:
        """Render the tree in Graphviz DOT format.

        Raises:
            AnalysisError: when called before :meth:`fit`.
        """
        if self.root is None:
            raise AnalysisError("tree is not fitted")
        lines = [f"digraph {name} {{",
                 '  node [shape=box, fontname="sans-serif"];']
        counter = [0]

        def emit(node: TreeNode) -> int:
            index = counter[0]
            counter[0] += 1
            if node.is_leaf:
                lines.append(
                    f'  n{index} [label="{node.prediction}\\n'
                    f'n={node.size}", style=filled, '
                    f'fillcolor="#e8f0fe"];')
                return index
            lines.append(f'  n{index} [label="{node.feature}?\\n'
                         f'n={node.size}"];')
            for value, child in node.children.items():
                child_index = emit(child)
                lines.append(f'  n{index} -> n{child_index} '
                             f'[label="{value}"];')
            return index

        emit(self.root)
        lines.append("}")
        return "\n".join(lines)
