"""Clustering over heartbeat vectors: k-means, agglomerative, silhouette.

The paper's grouping was manual (grounded theory); these algorithms serve
as its quantitative counterpart — the completeness probe ("would blind
clustering discover groups the taxonomy misses?") and a sanity check that
the manual patterns correspond to real structure in vector space.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import AnalysisError
from repro.metrics.timeseries import euclidean_distance, mean_vector

Vector = Sequence[float]


def kmeans(vectors: Sequence[Vector], k: int, seed: int = 0,
           max_iterations: int = 200) -> list[int]:
    """Lloyd's k-means with k-means++-style seeding.

    Args:
        vectors: the points (equal-length sequences).
        k: number of clusters (1 <= k <= len(vectors)).
        seed: RNG seed for the initialization.
        max_iterations: iteration cap.

    Returns:
        Cluster index per input vector.

    Raises:
        AnalysisError: for an invalid ``k`` or empty input.
    """
    points = [tuple(v) for v in vectors]
    if not points:
        raise AnalysisError("cannot cluster zero points")
    if not 1 <= k <= len(points):
        raise AnalysisError(f"k must be in [1, {len(points)}], got {k}")
    rng = random.Random(seed)

    # k-means++ seeding: spread the initial centers out.
    centers = [rng.choice(points)]
    while len(centers) < k:
        weights = [min(euclidean_distance(p, c) ** 2 for c in centers)
                   for p in points]
        total = sum(weights)
        if total == 0:
            centers.append(rng.choice(points))
            continue
        pick = rng.random() * total
        running = 0.0
        for point, weight in zip(points, weights):
            running += weight
            if running >= pick:
                centers.append(point)
                break

    assignment = [0] * len(points)
    for _ in range(max_iterations):
        changed = False
        for i, point in enumerate(points):
            best = min(range(k),
                       key=lambda c: euclidean_distance(point, centers[c]))
            if best != assignment[i]:
                assignment[i] = best
                changed = True
        for c in range(k):
            members = [p for p, a in zip(points, assignment) if a == c]
            if members:
                centers[c] = mean_vector(members)
        if not changed:
            break
    return assignment


def agglomerative(vectors: Sequence[Vector], k: int) -> list[int]:
    """Average-linkage agglomerative clustering down to ``k`` clusters.

    Returns:
        Cluster index per input vector (indices are 0..k-1, compacted).

    Raises:
        AnalysisError: for an invalid ``k`` or empty input.
    """
    points = [tuple(v) for v in vectors]
    if not points:
        raise AnalysisError("cannot cluster zero points")
    if not 1 <= k <= len(points):
        raise AnalysisError(f"k must be in [1, {len(points)}], got {k}")

    clusters: dict[int, list[int]] = {i: [i] for i in range(len(points))}

    def linkage(a: int, b: int) -> float:
        members_a, members_b = clusters[a], clusters[b]
        total = 0.0
        for i in members_a:
            for j in members_b:
                total += euclidean_distance(points[i], points[j])
        return total / (len(members_a) * len(members_b))

    while len(clusters) > k:
        keys = sorted(clusters)
        best_pair = None
        best_value = float("inf")
        for i, a in enumerate(keys):
            for b in keys[i + 1:]:
                value = linkage(a, b)
                if value < best_value:
                    best_value = value
                    best_pair = (a, b)
        a, b = best_pair
        clusters[a].extend(clusters[b])
        del clusters[b]

    assignment = [0] * len(points)
    for new_index, key in enumerate(sorted(clusters)):
        for member in clusters[key]:
            assignment[member] = new_index
    return assignment


def silhouette_score(vectors: Sequence[Vector],
                     assignment: Sequence[int]) -> float:
    """Mean silhouette coefficient of a clustering (in [-1, 1]).

    Singleton clusters contribute a silhouette of 0, following the
    standard convention.

    Raises:
        AnalysisError: for mismatched lengths or fewer than 2 clusters.
    """
    points = [tuple(v) for v in vectors]
    if len(points) != len(assignment):
        raise AnalysisError("vectors and assignment must align")
    labels = set(assignment)
    if len(labels) < 2:
        raise AnalysisError("silhouette needs at least two clusters")

    members: dict[int, list[int]] = {}
    for index, label in enumerate(assignment):
        members.setdefault(label, []).append(index)

    scores: list[float] = []
    for index, label in enumerate(assignment):
        own = [i for i in members[label] if i != index]
        if not own:
            scores.append(0.0)
            continue
        a = sum(euclidean_distance(points[index], points[i])
                for i in own) / len(own)
        b = min(
            sum(euclidean_distance(points[index], points[i])
                for i in members[other]) / len(members[other])
            for other in labels if other != label
        )
        denom = max(a, b)
        scores.append((b - a) / denom if denom > 0 else 0.0)
    return sum(scores) / len(scores)
