"""Birth-time pattern prediction (extension of paper §6.2).

The paper's Fig. 7 conditions only on the birth month. This module takes
the suggested "solid foundations for prediction" a step further with a
Laplace-smoothed categorical Naive Bayes model over *birth-observable*
features — things a curator can measure the day the schema appears:

* the birth-month bucket (M0 / M1–M6 / M7–M12 / later),
* the schema size at birth (attributes), binned,
* the number of tables at birth, binned.

Evaluation is leave-one-out, compared against the majority-class
baseline and the Fig-7 birth-bucket-only predictor.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.errors import AnalysisError

Sample = Mapping[str, str]


def size_bin(attributes: int) -> str:
    """Bin a schema size at birth into a coarse ordinal label."""
    if attributes <= 5:
        return "tiny"
    if attributes <= 15:
        return "small"
    if attributes <= 40:
        return "medium"
    return "large"


def table_bin(tables: int) -> str:
    """Bin a table count at birth."""
    if tables <= 1:
        return "1"
    if tables <= 4:
        return "2-4"
    if tables <= 10:
        return "5-10"
    return ">10"


class NaiveBayesPredictor:
    """Categorical Naive Bayes with Laplace smoothing.

    Args:
        alpha: Laplace smoothing strength (> 0).
    """

    def __init__(self, alpha: float = 1.0):
        if alpha <= 0:
            raise AnalysisError("alpha must be positive")
        self.alpha = alpha
        self._classes: list[Hashable] = []
        self._class_counts: Counter = Counter()
        self._feature_counts: dict[tuple[Hashable, str, str], int] = {}
        self._feature_values: dict[str, set[str]] = {}
        self._total = 0

    def fit(self, samples: Sequence[Sample],
            labels: Sequence[Hashable]) -> "NaiveBayesPredictor":
        """Estimate the class priors and per-feature likelihoods.

        Raises:
            AnalysisError: for empty or misaligned training data.
        """
        if not samples:
            raise AnalysisError("cannot fit on zero samples")
        if len(samples) != len(labels):
            raise AnalysisError("samples and labels must align")
        self._class_counts = Counter(labels)
        self._classes = sorted(self._class_counts, key=str)
        self._total = len(samples)
        self._feature_counts = {}
        self._feature_values = {}
        for sample, label in zip(samples, labels):
            for feature, value in sample.items():
                self._feature_values.setdefault(feature, set()).add(value)
                key = (label, feature, value)
                self._feature_counts[key] = \
                    self._feature_counts.get(key, 0) + 1
        return self

    def predict_proba(self, sample: Sample) -> dict[Hashable, float]:
        """Posterior probability per class (normalized).

        Unseen feature values fall back to the smoothed uniform term.

        Raises:
            AnalysisError: when called before :meth:`fit`.
        """
        if not self._classes:
            raise AnalysisError("predictor is not fitted")
        log_posteriors: dict[Hashable, float] = {}
        for cls in self._classes:
            class_count = self._class_counts[cls]
            log_p = math.log(class_count / self._total)
            for feature, value in sample.items():
                cardinality = len(self._feature_values.get(feature, ()))
                count = self._feature_counts.get((cls, feature, value), 0)
                log_p += math.log(
                    (count + self.alpha)
                    / (class_count + self.alpha * max(cardinality, 1)))
            log_posteriors[cls] = log_p
        peak = max(log_posteriors.values())
        weights = {cls: math.exp(v - peak)
                   for cls, v in log_posteriors.items()}
        total = sum(weights.values())
        return {cls: w / total for cls, w in weights.items()}

    def predict(self, sample: Sample) -> Hashable:
        """The maximum-posterior class."""
        posteriors = self.predict_proba(sample)
        return max(posteriors, key=lambda cls: (posteriors[cls], str(cls)))


@dataclass(frozen=True)
class LeaveOneOutReport:
    """Leave-one-out evaluation of birth-time prediction.

    Attributes:
        accuracy: LOO accuracy of the Naive Bayes model.
        baseline_accuracy: accuracy of always predicting the majority
            class.
        bucket_only_accuracy: accuracy of the Fig-7 style predictor
            (majority class within the birth-month bucket).
        total: number of evaluated projects.
    """

    accuracy: float
    baseline_accuracy: float
    bucket_only_accuracy: float
    total: int


def leave_one_out(samples: Sequence[Sample], labels: Sequence[Hashable],
                  bucket_feature: str = "birth_bucket",
                  alpha: float = 1.0) -> LeaveOneOutReport:
    """Leave-one-out evaluation against both baselines.

    Raises:
        AnalysisError: for fewer than 2 samples.
    """
    if len(samples) < 2:
        raise AnalysisError("leave-one-out needs at least 2 samples")
    hits = 0
    bucket_hits = 0
    for index in range(len(samples)):
        train_samples = [s for i, s in enumerate(samples) if i != index]
        train_labels = [l for i, l in enumerate(labels) if i != index]
        model = NaiveBayesPredictor(alpha=alpha).fit(train_samples,
                                                     train_labels)
        if model.predict(samples[index]) == labels[index]:
            hits += 1
        bucket_value = samples[index].get(bucket_feature)
        in_bucket = [l for s, l in zip(train_samples, train_labels)
                     if s.get(bucket_feature) == bucket_value]
        pool = in_bucket or train_labels
        majority = Counter(pool).most_common(1)[0][0]
        if majority == labels[index]:
            bucket_hits += 1
    majority_overall = Counter(labels).most_common(1)[0][1]
    return LeaveOneOutReport(
        accuracy=hits / len(samples),
        baseline_accuracy=majority_overall / len(labels),
        bucket_only_accuracy=bucket_hits / len(samples),
        total=len(samples),
    )
