"""The full study pipeline: corpus → profiles → labels → patterns → analyses.

:func:`run_study` reproduces every quantitative artifact of the paper in
one call and returns a :class:`StudyResults` bundle the benchmarks and
examples render. Execution is delegated to :mod:`repro.engine`;
:func:`run_full_study` is the engine-native entry point with worker
pools, result caching and per-stage timings.
"""

from repro.study.compare import StudyComparison, compare_studies
from repro.study.pipeline import (
    StudyResults,
    records_from_corpus,
    records_from_histories,
    run_full_study,
    run_study,
)

__all__ = [
    "StudyComparison",
    "StudyResults",
    "compare_studies",
    "records_from_corpus",
    "records_from_histories",
    "run_full_study",
    "run_study",
]
