"""End-to-end study driver."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.activity_relation import (
    ActivityRelationResult,
    compute_activity_relation,
)
from repro.analysis.change_mix import ChangeMixResult, compute_change_mix
from repro.analysis.coverage import CoverageResult, compute_coverage
from repro.analysis.normality import NormalityResult, compute_normality
from repro.analysis.prediction import PredictionResult, compute_prediction
from repro.analysis.records import StudyRecord, measures_of
from repro.analysis.stats_tables import (
    Section34Stats,
    Table1Result,
    compute_section34_stats,
    compute_table1,
)
from repro.corpus.generator import Corpus
from repro.errors import AnalysisError
from repro.history.repository import SchemaHistory
from repro.labels.quantization import DEFAULT_SCHEME, LabelScheme, label_profile
from repro.metrics.profile import ProjectProfile
from repro.mining.centroids import CentroidReport, centroid_report
from repro.mining.correlation import spearman_matrix
from repro.mining.decision_tree import DecisionTree
from repro.patterns.classifier import classify, classify_with_tolerance
from repro.patterns.exceptions import ExceptionReport, exception_report
from repro.patterns.taxonomy import Pattern

#: The four defining features the Fig.-5 decision tree splits on.
TREE_FEATURES = ("birth_timing", "top_band_timing",
                 "interval_birth_to_top", "agm_bucket")


def _tree_sample(record: StudyRecord) -> dict[str, str]:
    from repro.analysis.coverage import agm_bucket
    labeled = record.labeled
    return {
        "birth_timing": labeled.birth_timing.value,
        "top_band_timing": labeled.top_band_timing.value,
        "interval_birth_to_top": labeled.interval_birth_to_top.value,
        "agm_bucket": agm_bucket(labeled.active_growth_months),
    }


@dataclass(frozen=True)
class StudyResults:
    """Every quantitative artifact of the paper, computed on one corpus.

    Attributes:
        records: the classified study records.
        table1: label distribution (Table 1).
        stats34: §3.4 headline statistics.
        table2: exception/overlap accounting (Table 2).
        correlations: Spearman matrix over the time measures (Fig. 2).
        tree: the fitted decision tree (Fig. 5).
        tree_misclassified: names of projects the tree gets wrong.
        centroids: per-pattern centroid/MDC report (§5.2).
        coverage: active-domain coverage (Fig. 6).
        prediction: birth-month conditional probabilities (Fig. 7).
        activity: per-pattern activity statistics (§6.1).
        change_mix: change-type mixture (§6.3).
        normality: Shapiro–Wilk results (§3.4.1).
        strict_agreement: records whose strict definition-based
            classification equals their assigned pattern.
    """

    records: tuple[StudyRecord, ...]
    table1: Table1Result
    stats34: Section34Stats
    table2: ExceptionReport
    correlations: dict[tuple[str, str], float]
    tree: DecisionTree
    tree_misclassified: tuple[str, ...]
    centroids: CentroidReport
    coverage: CoverageResult
    prediction: PredictionResult
    activity: ActivityRelationResult
    change_mix: ChangeMixResult
    normality: NormalityResult
    strict_agreement: int

    @property
    def total(self) -> int:
        """Corpus size."""
        return len(self.records)


def records_from_corpus(corpus: Corpus,
                        scheme: LabelScheme = DEFAULT_SCHEME
                        ) -> list[StudyRecord]:
    """Measure and label a generated corpus.

    The assigned pattern is the generator's ground truth — the synthetic
    counterpart of the paper's manual annotation; the exception flag is
    recomputed from the formal definitions (a project is an exception
    when its labels violate its assigned pattern's definition).
    """
    records: list[StudyRecord] = []
    for project in corpus.projects:
        profile = ProjectProfile.from_history(project.history,
                                              source=project.source)
        labeled = label_profile(profile, scheme)
        strict = classify(labeled)
        records.append(StudyRecord(
            name=project.name,
            pattern=project.intended_pattern,
            labeled=labeled,
            is_exception=strict is not project.intended_pattern,
        ))
    return records


def records_from_histories(histories: Iterable[SchemaHistory],
                           scheme: LabelScheme = DEFAULT_SCHEME
                           ) -> list[StudyRecord]:
    """Measure, label and *blindly* classify external histories."""
    records: list[StudyRecord] = []
    for history in histories:
        profile = ProjectProfile.from_history(history)
        labeled = label_profile(profile, scheme)
        result = classify_with_tolerance(labeled)
        records.append(StudyRecord(
            name=history.project_name,
            pattern=result.pattern,
            labeled=labeled,
            is_exception=result.is_exception,
        ))
    return records


def run_study(records: Sequence[StudyRecord]) -> StudyResults:
    """Run every analysis of the paper over classified records.

    Raises:
        AnalysisError: for an empty record list.
    """
    if not records:
        raise AnalysisError("cannot run the study on zero records")

    # Table 2 needs (labeled, result)-style pairs; rebuild results from
    # the records' assignment.
    from repro.patterns.classifier import ClassificationResult
    table2 = exception_report(
        (r.labeled, ClassificationResult(pattern=r.pattern,
                                         is_exception=r.is_exception))
        for r in records)

    correlations = spearman_matrix(measures_of(records))

    samples = [_tree_sample(r) for r in records]
    labels = [r.pattern.value for r in records]
    tree = DecisionTree(max_depth=4).fit(samples, labels)
    misclassified = tuple(records[i].name
                          for i in tree.training_errors(samples, labels))

    vector_groups: dict[str, list] = {}
    for record in records:
        if record.pattern is Pattern.UNCLASSIFIED:
            continue
        vector_groups.setdefault(record.pattern.value, []).append(
            record.profile.vector)
    centroids = centroid_report(vector_groups)

    strict_agreement = sum(1 for r in records
                           if classify(r.labeled) is r.pattern)

    return StudyResults(
        records=tuple(records),
        table1=compute_table1(records),
        stats34=compute_section34_stats(records),
        table2=table2,
        correlations=correlations,
        tree=tree,
        tree_misclassified=misclassified,
        centroids=centroids,
        coverage=compute_coverage(records),
        prediction=compute_prediction(records),
        activity=compute_activity_relation(records),
        change_mix=compute_change_mix(records),
        normality=compute_normality(records),
        strict_agreement=strict_agreement,
    )
