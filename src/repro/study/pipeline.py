"""End-to-end study driver.

Since the engine refactor this module is a thin compatibility facade:
the actual execution lives in :mod:`repro.engine.study_plan`, which
expresses the study as a stage DAG with parallel per-project mapping
and content-addressed caching. :func:`records_from_corpus`,
:func:`records_from_histories` and :func:`run_study` keep their
historical signatures; :func:`run_full_study` is the engine-native
entry point that also returns per-stage timings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.activity_relation import ActivityRelationResult
from repro.analysis.change_mix import ChangeMixResult
from repro.analysis.coverage import CoverageResult
from repro.analysis.normality import NormalityResult
from repro.analysis.prediction import PredictionResult
from repro.analysis.records import StudyRecord
from repro.analysis.stats_tables import Section34Stats, Table1Result
from repro.corpus.generator import Corpus
from repro.engine.config import StudyConfig
from repro.engine.executor import ExecutionReport
from repro.engine.study_plan import (
    compute_records_from_source,
    execute_study,
    execute_study_from_source,
    run_analyses,
    tree_sample,
)
from repro.sources.base import InMemorySource
from repro.history.repository import SchemaHistory
from repro.labels.quantization import DEFAULT_SCHEME, LabelScheme
from repro.mining.centroids import CentroidReport
from repro.mining.decision_tree import DecisionTree
from repro.patterns.classifier import ClassificationResult  # noqa: F401
from repro.patterns.exceptions import ExceptionReport

#: The four defining features the Fig.-5 decision tree splits on.
TREE_FEATURES = ("birth_timing", "top_band_timing",
                 "interval_birth_to_top", "agm_bucket")

__all__ = [
    "StudyResults",
    "TREE_FEATURES",
    "records_from_corpus",
    "records_from_histories",
    "run_full_study",
    "run_full_study_from_source",
    "run_study",
]


def _tree_sample(record: StudyRecord) -> dict[str, str]:
    return tree_sample(record)


@dataclass(frozen=True)
class StudyResults:
    """Every quantitative artifact of the paper, computed on one corpus.

    Attributes:
        records: the classified study records.
        table1: label distribution (Table 1).
        stats34: §3.4 headline statistics.
        table2: exception/overlap accounting (Table 2).
        correlations: Spearman matrix over the time measures (Fig. 2).
        tree: the fitted decision tree (Fig. 5).
        tree_misclassified: names of projects the tree gets wrong.
        centroids: per-pattern centroid/MDC report (§5.2).
        coverage: active-domain coverage (Fig. 6).
        prediction: birth-month conditional probabilities (Fig. 7).
        activity: per-pattern activity statistics (§6.1).
        change_mix: change-type mixture (§6.3).
        normality: Shapiro–Wilk results (§3.4.1).
        strict_agreement: records whose strict definition-based
            classification equals their assigned pattern.
    """

    records: tuple[StudyRecord, ...]
    table1: Table1Result
    stats34: Section34Stats
    table2: ExceptionReport
    correlations: dict[tuple[str, str], float]
    tree: DecisionTree
    tree_misclassified: tuple[str, ...]
    centroids: CentroidReport
    coverage: CoverageResult
    prediction: PredictionResult
    activity: ActivityRelationResult
    change_mix: ChangeMixResult
    normality: NormalityResult
    strict_agreement: int

    @property
    def total(self) -> int:
        """Corpus size."""
        return len(self.records)


def _effective_config(config: StudyConfig | None,
                      scheme: LabelScheme) -> StudyConfig:
    """Resolve the (config, scheme) compatibility overlap.

    An explicit ``config`` wins; otherwise a serial no-cache config is
    built around the given scheme, matching the historical behavior.
    """
    if config is not None:
        return config
    return StudyConfig(scheme=scheme)


def records_from_corpus(corpus: Corpus,
                        scheme: LabelScheme = DEFAULT_SCHEME,
                        config: StudyConfig | None = None,
                        session=None) -> list[StudyRecord]:
    """Measure and label a generated corpus.

    The assigned pattern is the generator's ground truth — the synthetic
    counterpart of the paper's manual annotation; the exception flag is
    recomputed from the formal definitions (a project is an exception
    when its labels violate its assigned pattern's definition).

    Args:
        corpus: the generated corpus.
        scheme: quantization boundaries (ignored when ``config`` is
            given — the config's scheme applies).
        config: execution configuration (workers, cache, progress).
        session: optional :class:`~repro.engine.session.EngineSession`
            whose warm pool/cache/ledger the run should use.
    """
    records, _ = compute_records_from_source(
        InMemorySource(corpus.projects, mode="corpus"),
        _effective_config(config, scheme), session=session)
    return records


def records_from_histories(histories: Iterable[SchemaHistory],
                           scheme: LabelScheme = DEFAULT_SCHEME,
                           config: StudyConfig | None = None,
                           session=None) -> list[StudyRecord]:
    """Measure, label and *blindly* classify external histories."""
    records, _ = compute_records_from_source(
        InMemorySource(histories, mode="histories"),
        _effective_config(config, scheme), session=session)
    return records


def run_study(records: Sequence[StudyRecord],
              config: StudyConfig | None = None,
              session=None,
              columnar: bool = True) -> StudyResults:
    """Run every analysis of the paper over classified records.

    ``columnar=False`` runs the per-record oracle backend instead of
    the fused columnar kernels (identical results, slower — kept for
    differential testing and benchmarking).

    Raises:
        AnalysisError: for an empty record list.
    """
    return run_analyses(records, config, session=session,
                        columnar=columnar)


def run_full_study(corpus: Corpus,
                   config: StudyConfig | None = None,
                   session=None
                   ) -> tuple[StudyResults, ExecutionReport]:
    """Corpus in, complete study out — one engine plan execution.

    The per-project map runs on ``config.jobs`` workers and is served
    from ``config.cache_dir`` when warm; the returned report carries
    per-stage wall-clock timings and cache statistics. Under a
    skip/retry ``config.error_policy`` the analyses are computed over
    the surviving projects — mirroring how the paper computes over the
    151 survivors of its 195 mined histories — and every quarantined
    project is listed in ``report.failures``.

    Pass ``session`` (an :class:`~repro.engine.session.EngineSession`)
    to keep the worker pool, the cache's hot layer and the run ledger
    warm across repeated studies; without one, each call opens and
    closes a throwaway session (the historical one-shot behavior).

    Raises:
        AnalysisError: for an empty corpus.
    """
    return execute_study(corpus.projects, config, source="corpus",
                         session=session)


def run_full_study_from_source(source,
                               config: StudyConfig | None = None,
                               session=None
                               ) -> tuple[StudyResults, ExecutionReport]:
    """Any history source in, complete study out.

    Lightweight sources (synthetic specs, corpus directories, git
    repositories) stream to workers as handles and load lazily there —
    the executor keeps only a bounded window of work in flight, so
    handle-side memory stays flat no matter how many projects the
    source enumerates; in-memory sources take the legacy eager path.
    ``config.sample``/``config.stratified`` restrict the run to a
    deterministic seeded subset. Either way the returned pair matches
    :func:`run_full_study`, including the survivors-only semantics of
    skip/retry error policies and the optional warm ``session``.

    Raises:
        AnalysisError: for a source with zero projects.
    """
    return execute_study_from_source(source, config, session=session)
