"""Comparison of two study runs (what-if analyses, regression checks).

Computes typed deltas between two :class:`StudyResults` — population
mixes, aversion-to-change signals, activity levels — so what-if studies
(``examples/what_if_mix.py``) and corpus-regression checks read one
structure instead of eyeballing two reports.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.patterns.taxonomy import Family, family_of
from repro.study.pipeline import StudyResults


@dataclass(frozen=True)
class StudyComparison:
    """Headline deltas between a baseline and a variant study.

    All ``*_delta`` fields are ``variant − baseline``.

    Attributes:
        baseline_total / variant_total: corpus sizes.
        family_share_delta: per-family share change (fractions).
        zero_agm_share_delta: change in the share of projects with zero
            active growth months.
        vault_share_delta: change in the vault share.
        median_activity_delta: change in the median total activity.
        tree_errors_delta: change in decision-tree misclassifications.
    """

    baseline_total: int
    variant_total: int
    family_share_delta: dict[Family, float]
    zero_agm_share_delta: float
    vault_share_delta: float
    median_activity_delta: float
    tree_errors_delta: int

    @property
    def livelier(self) -> bool:
        """True when the variant shows less aversion to change than the
        baseline (fewer zero-AGM projects and fewer vaults)."""
        return (self.zero_agm_share_delta < 0
                and self.vault_share_delta < 0)


def _family_shares(results: StudyResults) -> dict[Family, float]:
    counts = {family: 0 for family in Family}
    for record in results.records:
        family = family_of(record.pattern)
        if family is not None:
            counts[family] += 1
    return {family: count / results.total
            for family, count in counts.items()}


def _median_activity(results: StudyResults) -> float:
    return statistics.median(r.profile.total_activity
                             for r in results.records)


def compare_studies(baseline: StudyResults,
                    variant: StudyResults) -> StudyComparison:
    """Compute the headline deltas of ``variant`` against ``baseline``."""
    base_shares = _family_shares(baseline)
    variant_shares = _family_shares(variant)
    return StudyComparison(
        baseline_total=baseline.total,
        variant_total=variant.total,
        family_share_delta={
            family: variant_shares[family] - base_shares[family]
            for family in Family},
        zero_agm_share_delta=(
            variant.stats34.zero_active_growth / variant.total
            - baseline.stats34.zero_active_growth / baseline.total),
        vault_share_delta=(variant.stats34.vault_share
                           - baseline.stats34.vault_share),
        median_activity_delta=(_median_activity(variant)
                               - _median_activity(baseline)),
        tree_errors_delta=(len(variant.tree_misclassified)
                           - len(baseline.tree_misclassified)),
    )
