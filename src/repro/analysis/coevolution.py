"""Joint schema/source evolution measures (extension; cf. paper [45]).

The paper's closest prior work studies how schema and source code
co-evolve. Our corpus pairs every schema heartbeat with a (synthetic)
source-code series, so the joint measures can be computed — with the
explicit caveat that the source side carries no real signal beyond its
construction (spread over the whole project, first/last month active).
The measures themselves are the real deliverable: point them at real
paired histories and they report the paper-[45]-style facts.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.records import StudyRecord
from repro.errors import AnalysisError
from repro.mining.correlation import spearman_rho


@dataclass(frozen=True)
class CoevolutionRow:
    """Joint schema/source measures of one project.

    Attributes:
        name: project name.
        schema_birth_lag_months: months between project start (first
            source activity) and schema birth.
        schema_source_overlap: share of schema-active months that are
            also source-active.
        activity_rho: Spearman correlation of the two monthly series
            (NaN when either side is constant).
        source_active_share: share of months with source activity.
        schema_active_share: share of months with schema activity.
    """

    name: str
    schema_birth_lag_months: int
    schema_source_overlap: float
    activity_rho: float
    source_active_share: float
    schema_active_share: float


@dataclass(frozen=True)
class CoevolutionResult:
    """Corpus-level aggregates of the joint measures.

    Attributes:
        rows: per-project measures (projects with a source series only).
        median_birth_lag: median schema-birth lag in months.
        median_overlap: median schema/source overlap share.
        share_born_with_project: projects whose schema is born in the
            project's first month.
    """

    rows: tuple[CoevolutionRow, ...]
    median_birth_lag: float
    median_overlap: float
    share_born_with_project: float


def _project_row(record: StudyRecord) -> CoevolutionRow | None:
    source = record.profile.source
    if source is None:
        return None
    schema = record.profile.heartbeat
    months = schema.months
    schema_active = set(schema.active_month_indices)
    source_active = set(source.active_month_indices)
    overlap = (len(schema_active & source_active) / len(schema_active)
               if schema_active else 0.0)
    rho = spearman_rho(list(schema.monthly), list(source.monthly)) \
        if months >= 2 else float("nan")
    return CoevolutionRow(
        name=record.name,
        schema_birth_lag_months=record.profile.birth_month,
        schema_source_overlap=overlap,
        activity_rho=rho,
        source_active_share=len(source_active) / months,
        schema_active_share=len(schema_active) / months,
    )


def compute_coevolution(records: Sequence[StudyRecord]
                        ) -> CoevolutionResult:
    """Compute the joint schema/source measures over a corpus.

    Raises:
        AnalysisError: when no record carries a source series.
    """
    rows = [row for row in (_project_row(r) for r in records)
            if row is not None]
    if not rows:
        raise AnalysisError("no project carries a source-code series")
    return CoevolutionResult(
        rows=tuple(rows),
        median_birth_lag=statistics.median(
            r.schema_birth_lag_months for r in rows),
        median_overlap=statistics.median(
            r.schema_source_overlap for r in rows),
        share_born_with_project=sum(
            1 for r in rows if r.schema_birth_lag_months == 0)
        / len(rows),
    )
