"""Table-level timing analysis (extension; companion-study territory).

The paper's companion line of work ("Gravitating to rigidity", "Schema
evolution survival guide for tables") studies the same questions at the
granularity of individual *table lives*. With :func:`table_lives` in the
library, the corpus-level aggregates come for free; this module computes
them so the table-level traits can be cross-checked against the
schema-level patterns:

* the share of rigid tables (no post-birth change at all),
* rigidity conditioned on the birth quarter of the table,
* survival (share of tables alive at the end of their project),
* update intensity of the survivors.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.records import StudyRecord
from repro.errors import AnalysisError
from repro.metrics.tables import TableLife, table_lives


@dataclass(frozen=True)
class TableLevelResult:
    """Corpus-wide table-life statistics.

    Attributes:
        total_lives: number of table lives across the corpus.
        rigid_share: share of lives with zero post-birth change.
        alive_share: share of lives that survive to the project's end.
        rigidity_by_birth_quarter: rigid share per quarter of project
            life the table was born in (4 values).
        median_updates_active: median update events among the tables
            that did change.
        median_birth_size: median attributes at table creation.
    """

    total_lives: int
    rigid_share: float
    alive_share: float
    rigidity_by_birth_quarter: tuple[float, float, float, float]
    median_updates_active: float
    median_birth_size: float


def _birth_quarter(life: TableLife, pup_months: int) -> int:
    if pup_months <= 1:
        return 0
    pct = life.birth_month / (pup_months - 1)
    return min(int(pct * 4), 3)


def compute_table_level(records: Sequence[StudyRecord]
                        ) -> TableLevelResult:
    """Aggregate table lives over a study corpus.

    Raises:
        AnalysisError: for an empty corpus or a corpus without any table.
    """
    if not records:
        raise AnalysisError("empty corpus")
    lives: list[TableLife] = []
    quarters: list[int] = []
    for record in records:
        history = record.profile.history
        if history is None:
            continue
        project_lives = table_lives(history)
        lives.extend(project_lives)
        quarters.extend(_birth_quarter(l, record.profile.pup_months)
                        for l in project_lives)
    if not lives:
        raise AnalysisError(
            "no table lives available: the profiles carry no history "
            "handle (profiles built via ProjectProfile.from_history "
            "always do)")

    rigid_flags = [life.update_events == 0 for life in lives]
    per_quarter: list[list[bool]] = [[], [], [], []]
    for quarter, rigid in zip(quarters, rigid_flags):
        per_quarter[quarter].append(rigid)
    quarter_shares = tuple(
        (sum(flags) / len(flags)) if flags else 0.0
        for flags in per_quarter)
    active_updates = [life.update_events for life in lives
                      if life.update_events > 0]
    return TableLevelResult(
        total_lives=len(lives),
        rigid_share=sum(rigid_flags) / len(lives),
        alive_share=sum(1 for l in lives if l.is_alive) / len(lives),
        rigidity_by_birth_quarter=quarter_shares,
        median_updates_active=(statistics.median(active_updates)
                               if active_updates else 0.0),
        median_birth_size=statistics.median(l.birth_size for l in lives),
    )
