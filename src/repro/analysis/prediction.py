"""Birth-month conditional pattern probabilities (paper Fig. 7, §6.2).

"Given only the month of schema birth, what will the schema's evolution
look like?" — the paper's preliminary prediction attempt. The analysis
buckets projects by the absolute birth month (M0, M1–M6, M7–M12, later)
and reports P(pattern | bucket).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.records import StudyRecord
from repro.errors import AnalysisError
from repro.patterns.taxonomy import Pattern, REAL_PATTERNS, family_of, Family

#: Bucket labels, in order.
BUCKET_LABELS: tuple[str, ...] = ("Born M0", "Born [M1..M6]",
                                  "Born [M7..M12]", "Not born till M12")


def birth_bucket(birth_month: int) -> int:
    """Map an absolute birth month to its Fig.-7 bucket index."""
    if birth_month == 0:
        return 0
    if birth_month <= 6:
        return 1
    if birth_month <= 12:
        return 2
    return 3


@dataclass(frozen=True)
class PredictionResult:
    """The Fig.-7 table.

    Attributes:
        counts: pattern -> per-bucket project counts (length 4).
        bucket_totals: projects per bucket.
        total: corpus size.
    """

    counts: dict[Pattern, tuple[int, int, int, int]]
    bucket_totals: tuple[int, int, int, int]
    total: int

    def probability(self, pattern: Pattern, bucket: int) -> float:
        """P(pattern | birth bucket); 0.0 for an empty bucket."""
        total = self.bucket_totals[bucket]
        if total == 0:
            return 0.0
        return self.counts.get(pattern, (0, 0, 0, 0))[bucket] / total

    def overall_probability(self, pattern: Pattern) -> float:
        """Unconditional P(pattern)."""
        return sum(self.counts.get(pattern, (0, 0, 0, 0))) / self.total

    def frozen_probability(self, bucket: int) -> float:
        """P(completely frozen | bucket): Flatliner or Radical Sign —
        the paper's 75 %-if-born-in-M0 headline."""
        return (self.probability(Pattern.FLATLINER, bucket)
                + self.probability(Pattern.RADICAL_SIGN, bucket))

    def family_probability(self, family: Family, bucket: int) -> float:
        """P(pattern family | bucket)."""
        return sum(self.probability(p, bucket) for p in REAL_PATTERNS
                   if family_of(p) is family)

    def birth_distribution(self) -> tuple[float, float, float, float]:
        """Share of projects born in each bucket (the paper's side
        observation: 34 % at M0, 60 % within 6 months, ...)."""
        return tuple(t / self.total for t in self.bucket_totals)


def compute_prediction(records: Sequence[StudyRecord]) -> PredictionResult:
    """Build the Fig.-7 table from study records.

    Raises:
        AnalysisError: for an empty corpus.
    """
    if not records:
        raise AnalysisError("empty corpus")
    counts: dict[Pattern, list[int]] = {p: [0, 0, 0, 0]
                                        for p in REAL_PATTERNS}
    bucket_totals = [0, 0, 0, 0]
    for record in records:
        bucket = birth_bucket(record.profile.birth_month)
        bucket_totals[bucket] += 1
        if record.pattern in counts:
            counts[record.pattern][bucket] += 1
    return PredictionResult(
        counts={p: tuple(v) for p, v in counts.items()},
        bucket_totals=tuple(bucket_totals),
        total=len(records),
    )
