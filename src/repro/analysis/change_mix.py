"""Mixture of change types per pattern (paper §6.3).

The paper observes: change is biased toward expansion, done mostly at the
granule of whole tables; the Be-Quick-or-Be-Dead family is frequently
monothematic (a single change kind) due to its tiny volumes, while the
more active patterns mix change types.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.records import StudyRecord
from repro.diff.changes import ChangeKind
from repro.errors import AnalysisError
from repro.patterns.taxonomy import Pattern, REAL_PATTERNS


@dataclass(frozen=True)
class ChangeMixRow:
    """Per-pattern change-type mixture.

    Attributes:
        pattern: the pattern.
        count: projects in the pattern.
        kind_totals: summed events per change kind across the pattern.
        median_expansion_fraction: median per-project expansion share.
        table_granule_fraction: share of events that are whole-table
            births/deletions (the paper's "granule of change is mostly
            the entire table").
        monothematic_projects: projects whose *post-birth* change uses a
            single change kind (or none at all).
    """

    pattern: Pattern
    count: int
    kind_totals: dict[ChangeKind, int]
    median_expansion_fraction: float
    table_granule_fraction: float
    monothematic_projects: int


@dataclass(frozen=True)
class ChangeMixResult:
    """§6.3 mixture rows plus corpus-wide aggregates.

    Attributes:
        rows: one row per populated pattern.
        overall_expansion_fraction: expansion share over all events.
        overall_table_granule_fraction: whole-table share of all events.
    """

    rows: tuple[ChangeMixRow, ...]
    overall_expansion_fraction: float
    overall_table_granule_fraction: float

    def row(self, pattern: Pattern) -> ChangeMixRow | None:
        """Row of one pattern, or None when it has no projects."""
        for row in self.rows:
            if row.pattern is pattern:
                return row
        return None


_TABLE_GRANULE = (ChangeKind.BORN_WITH_TABLE,
                  ChangeKind.DELETED_WITH_TABLE)


def _is_monothematic(record: StudyRecord) -> bool:
    """True when the project's post-birth change uses <= 1 change kind."""
    series = record.profile.heartbeat
    if series.breakdowns is None:
        return True
    birth = record.profile.birth_month
    kinds_used = set()
    for month, breakdown in enumerate(series.breakdowns):
        if month == birth:
            continue
        for kind, count in breakdown.by_kind:
            if count:
                kinds_used.add(kind)
    return len(kinds_used) <= 1


def compute_change_mix(records: Sequence[StudyRecord]) -> ChangeMixResult:
    """Compute the §6.3 change-type mixture.

    Raises:
        AnalysisError: for an empty corpus.
    """
    if not records:
        raise AnalysisError("empty corpus")
    rows: list[ChangeMixRow] = []
    grand_totals = {kind: 0 for kind in ChangeKind}
    for pattern in REAL_PATTERNS:
        members = [r for r in records if r.pattern is pattern]
        if not members:
            continue
        kind_totals = {kind: 0 for kind in ChangeKind}
        fractions: list[float] = []
        for record in members:
            breakdown = record.profile.totals.breakdown
            for kind, count in breakdown.by_kind:
                kind_totals[kind] += count
                grand_totals[kind] += count
            fractions.append(breakdown.expansion_fraction)
        total_events = sum(kind_totals.values())
        table_events = sum(kind_totals[k] for k in _TABLE_GRANULE)
        rows.append(ChangeMixRow(
            pattern=pattern,
            count=len(members),
            kind_totals=kind_totals,
            median_expansion_fraction=statistics.median(fractions),
            table_granule_fraction=(table_events / total_events
                                    if total_events else 0.0),
            monothematic_projects=sum(1 for r in members
                                      if _is_monothematic(r)),
        ))
    grand_total = sum(grand_totals.values())
    grand_table = sum(grand_totals[k] for k in _TABLE_GRANULE)
    grand_expansion = sum(count for kind, count in grand_totals.items()
                          if kind.is_expansion)
    return ChangeMixResult(
        rows=tuple(rows),
        overall_expansion_fraction=(grand_expansion / grand_total
                                    if grand_total else 0.0),
        overall_table_granule_fraction=(grand_table / grand_total
                                        if grand_total else 0.0),
    )
