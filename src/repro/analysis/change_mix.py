"""Mixture of change types per pattern (paper §6.3).

The paper observes: change is biased toward expansion, done mostly at the
granule of whole tables; the Be-Quick-or-Be-Dead family is frequently
monothematic (a single change kind) due to its tiny volumes, while the
more active patterns mix change types.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.records import StudyRecord
from repro.diff.changes import KIND_INDEX, KIND_ORDER, N_KINDS, ChangeKind
from repro.errors import AnalysisError
from repro.patterns.taxonomy import Pattern, REAL_PATTERNS


@dataclass(frozen=True)
class ChangeMixRow:
    """Per-pattern change-type mixture.

    Attributes:
        pattern: the pattern.
        count: projects in the pattern.
        kind_totals: summed events per change kind across the pattern.
        median_expansion_fraction: median per-project expansion share.
        table_granule_fraction: share of events that are whole-table
            births/deletions (the paper's "granule of change is mostly
            the entire table").
        monothematic_projects: projects whose *post-birth* change uses a
            single change kind (or none at all).
    """

    pattern: Pattern
    count: int
    kind_totals: dict[ChangeKind, int]
    median_expansion_fraction: float
    table_granule_fraction: float
    monothematic_projects: int


@dataclass(frozen=True)
class ChangeMixResult:
    """§6.3 mixture rows plus corpus-wide aggregates.

    Attributes:
        rows: one row per populated pattern.
        overall_expansion_fraction: expansion share over all events.
        overall_table_granule_fraction: whole-table share of all events.
    """

    rows: tuple[ChangeMixRow, ...]
    overall_expansion_fraction: float
    overall_table_granule_fraction: float

    def row(self, pattern: Pattern) -> ChangeMixRow | None:
        """Row of one pattern, or None when it has no projects."""
        for row in self.rows:
            if row.pattern is pattern:
                return row
        return None


_TABLE_GRANULE = (ChangeKind.BORN_WITH_TABLE,
                  ChangeKind.DELETED_WITH_TABLE)

#: Flat-breakdown indexes of the whole-table change kinds — shared with
#: the fused columnar §6.3 kernel.
TABLE_GRANULE_INDEXES = tuple(KIND_INDEX[k] for k in _TABLE_GRANULE)

_TABLE_GRANULE_INDEXES = TABLE_GRANULE_INDEXES


def _is_monothematic(record: StudyRecord) -> bool:
    """True when the project's post-birth change uses <= 1 change kind."""
    series = record.profile.heartbeat
    if series.breakdowns is None:
        return True
    birth = record.profile.birth_month
    used = [0] * N_KINDS
    for month, breakdown in enumerate(series.breakdowns):
        if month == birth or not breakdown.total:
            continue
        flat = breakdown.flat
        for index in range(N_KINDS):
            used[index] |= flat[index]
    return sum(1 for value in used if value) <= 1


def compute_change_mix(records: Sequence[StudyRecord]) -> ChangeMixResult:
    """Compute the §6.3 change-type mixture.

    Raises:
        AnalysisError: for an empty corpus.
    """
    if not records:
        raise AnalysisError("empty corpus")
    rows: list[ChangeMixRow] = []
    grand_flat = [0] * N_KINDS
    grand_expansion = 0
    for pattern in REAL_PATTERNS:
        members = [r for r in records if r.pattern is pattern]
        if not members:
            continue
        flat_totals = [0] * N_KINDS
        fractions: list[float] = []
        for record in members:
            breakdown = record.profile.totals.breakdown
            flat = breakdown.flat
            for index in range(N_KINDS):
                flat_totals[index] += flat[index]
                grand_flat[index] += flat[index]
            grand_expansion += breakdown.expansion
            fractions.append(breakdown.expansion_fraction)
        total_events = sum(flat_totals)
        table_events = sum(flat_totals[i] for i in _TABLE_GRANULE_INDEXES)
        rows.append(ChangeMixRow(
            pattern=pattern,
            count=len(members),
            kind_totals=dict(zip(KIND_ORDER, flat_totals)),
            median_expansion_fraction=statistics.median(fractions),
            table_granule_fraction=(table_events / total_events
                                    if total_events else 0.0),
            monothematic_projects=sum(1 for r in members
                                      if _is_monothematic(r)),
        ))
    grand_total = sum(grand_flat)
    grand_table = sum(grand_flat[i] for i in _TABLE_GRANULE_INDEXES)
    return ChangeMixResult(
        rows=tuple(rows),
        overall_expansion_fraction=(grand_expansion / grand_total
                                    if grand_total else 0.0),
        overall_table_granule_fraction=(grand_table / grand_total
                                        if grand_total else 0.0),
    )
