"""Family-level cohesion and separation (paper §4 / §5.2 claims).

The paper argues the three families are "pairwise different, and
internally cohesive". This analysis quantifies that at the family
level: centroids of the 20-point vectors per family, within-family mean
distance, and the pairwise centroid gaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.records import StudyRecord
from repro.errors import AnalysisError
from repro.mining.centroids import CentroidReport, centroid_report
from repro.patterns.taxonomy import Family, family_of


@dataclass(frozen=True)
class FamilyCohesionResult:
    """Family-level cohesion/separation statistics.

    Attributes:
        report: the underlying centroid report keyed by family value.
        sizes: projects per family.
        min_between_gap: smallest centroid distance between families.
        max_within_mdc: largest within-family mean distance.
    """

    report: CentroidReport
    sizes: dict[str, int]
    min_between_gap: float
    max_within_mdc: float

    @property
    def families_distinct(self) -> bool:
        """True when every family pair is separated by a positive gap."""
        return self.min_between_gap > 0.0


def compute_family_cohesion(records: Sequence[StudyRecord]
                            ) -> FamilyCohesionResult:
    """Compute family centroids, MDC and pairwise gaps.

    Raises:
        AnalysisError: when fewer than two families are populated.
    """
    groups: dict[str, list] = {}
    for record in records:
        family = family_of(record.pattern)
        if family is None:
            continue
        groups.setdefault(family.value, []).append(record.profile.vector)
    if len(groups) < 2:
        raise AnalysisError("need at least two populated families")
    report = centroid_report(groups)
    gaps = report.pairwise_centroid_distances()
    return FamilyCohesionResult(
        report=report,
        sizes=dict(report.sizes),
        min_between_gap=min(gaps.values()),
        max_within_mdc=max(report.mdc.values()),
    )
