"""Columnar pack of classified study records (the analysis backend).

The corpus-level analyses of the paper (Tables 1/2, §3.4, Fig. 2/5/6/7,
§6.1/§6.3) historically ran as a dozen independent passes over
:class:`~repro.analysis.records.StudyRecord` objects, each pass chasing
the same ``record.labeled.profile.landmarks...`` attribute chains. This
module mirrors the columnar timeline kernels of the diff layer
(``KIND_ORDER``/``KIND_INDEX`` flat tuples) one level up: a
:class:`RecordTable` is the whole corpus flattened into dense columns —
pattern and label enums as small-int index columns, the Fig.-2 measure
vector as float columns, per-record change-kind count rows, interned
names — over which the analysis stages run as fused kernels.

A record flattens to one :class:`PackedRecord` row
(:func:`pack_record`); rows are cheap to pickle, so worker processes
pack alongside the map stage and the executor merges the partial packs
FIFO as chunks are harvested (:meth:`RecordTable.from_rows`). Rows
round-trip: ``RecordTable.from_rows(rows).unpack() == list(rows)``.

Packing never feeds the result cache — cache keys and payloads are
untouched (``RECORDS_STAGE_VERSION`` stands) — so warm runs revalidate
byte-for-byte and the table is rebuilt parent-side from the cached
records.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from operator import attrgetter
from typing import Iterable, NamedTuple, Sequence

from repro.analysis.records import MEASURE_NAMES, StudyRecord
from repro.analysis.stats_tables import TABLE1_ROWS
from repro.diff.changes import N_KINDS
from repro.patterns.taxonomy import Pattern, REAL_PATTERNS

#: Dense pattern index table, the corpus-level analog of ``KIND_INDEX``:
#: every pattern in declaration order, ``UNCLASSIFIED`` last.
PATTERN_ORDER: tuple[Pattern, ...] = tuple(Pattern)

PATTERN_INDEX: dict[Pattern, int] = {
    pattern: index for index, pattern in enumerate(PATTERN_ORDER)
}

#: ``PATTERN_ORDER[i].value`` memoized — kernels emit label strings
#: without touching the enum.
PATTERN_VALUES: tuple[str, ...] = tuple(p.value for p in PATTERN_ORDER)

UNCLASSIFIED_INDEX = PATTERN_INDEX[Pattern.UNCLASSIFIED]

#: Pattern index -> position in ``REAL_PATTERNS`` (the paper's Table-2
#: order, which differs from declaration order); no entry for
#: ``UNCLASSIFIED``.
REAL_POSITION: dict[int, int] = {
    PATTERN_INDEX[pattern]: position
    for position, pattern in enumerate(REAL_PATTERNS)
}

#: The seven label columns as (LabeledProfile attribute, enum class),
#: derived from ``TABLE1_ROWS`` so the fused Table-1 kernel can zip the
#: two without an order mismatch ever being possible.
LABEL_COLUMNS: tuple[tuple[str, type], ...] = tuple(
    (attr, enum_cls) for _, enum_cls, attr in TABLE1_ROWS)

#: Per label column: enum member -> dense index (declaration order).
LABEL_INDEX: tuple[dict, ...] = tuple(
    {member: index for index, member in enumerate(enum_cls)}
    for _, enum_cls in LABEL_COLUMNS)

#: Per label column: dense index -> ``member.value`` string.
LABEL_VALUES: tuple[tuple[str, ...], ...] = tuple(
    tuple(member.value for member in enum_cls)
    for _, enum_cls in LABEL_COLUMNS)

N_LABELS = len(LABEL_COLUMNS)
N_MEASURES = len(MEASURE_NAMES)

#: One multi-attribute getter pulling all seven label members off a
#: LabeledProfile in a single C-level call (pack hot loop).
_LABEL_MEMBERS = attrgetter(*(attr for attr, _ in LABEL_COLUMNS))


# ----------------------------------------------------------------------
# pack counters (worker -> parent, like the parse/kernel memo counters)

_COUNTERS = [0]


def pack_counters() -> tuple[int]:
    """Process-wide pack statistics: ``(rows_packed,)``.

    Worker processes tick their own copy; the executor ships the delta
    back with each mapped item, exactly like the statement-memo and
    heartbeat-kernel counters, so ``--timings`` can attribute packing
    work to the stage that did it.
    """
    return (_COUNTERS[0],)


class PackedRecord(NamedTuple):
    """One study record flattened to plain scalars and flat tuples.

    This is the unit that crosses the worker → parent pickle boundary
    and the row of :class:`RecordTable`. Everything an analysis kernel
    reads is here; nothing else (history, heartbeat, parse caches) is.

    Attributes:
        name: project name.
        pattern: dense index into :data:`PATTERN_ORDER`.
        is_exception: the record's exception flag. Because
            classification sets ``is_exception`` if and only if the
            strict definition-based classification disagrees with the
            assigned pattern (for corpus, history and tolerant paths
            alike), this column also answers strict agreement without
            re-classifying.
        labels: the seven label-enum dense indexes, in
            :data:`LABEL_COLUMNS` (= Table 1) order.
        measures: the eight Fig.-2 measures, in ``MEASURE_NAMES`` order.
        birth_month: absolute schema-birth month (Fig.-7 bucketing).
        interval_birth_to_top_months: the §3.4 growth interval.
        has_vault: landmark vault flag.
        active_growth_months: AGM as the label layer carries it
            (agm bucketing for the tree and Fig. 6).
        pup_months: project update period (§6.1 median duration).
        total_activity / post_birth_activity / expansion / maintenance /
            schema_size_at_birth: the §6.1 activity aggregates.
        kind_counts: lifetime events per change kind — the record's
            kind-count row, ``KIND_ORDER`` aligned (§6.3).
        expansion_fraction: the breakdown's expansion share (§6.3).
        post_birth_kinds: distinct change kinds used outside the birth
            month — the per-record reduction of the month×kind count
            rows; monothematy is ``post_birth_kinds <= 1``.
        vector: the 20-point cumulative-progress vector (§5.2).
    """

    name: str
    pattern: int
    is_exception: bool
    labels: tuple[int, ...]
    measures: tuple[float, ...]
    birth_month: int
    interval_birth_to_top_months: int
    has_vault: bool
    active_growth_months: int
    pup_months: int
    total_activity: int
    post_birth_activity: int
    expansion: int
    maintenance: int
    schema_size_at_birth: int
    kind_counts: tuple[int, ...]
    expansion_fraction: float
    post_birth_kinds: int
    vector: tuple[float, ...]


def _post_birth_kinds(profile) -> int:
    """Distinct change kinds used outside the birth month.

    The per-record reduction of the month×kind count rows that
    :func:`repro.analysis.change_mix._is_monothematic` walks; computing
    it at pack time lets the fused §6.3 kernel answer monothematy with
    a single integer comparison per record. Instead of re-walking the
    months, it exploits ``totals.breakdown`` being *exactly* the sum of
    the monthly breakdowns: a kind was used outside birth iff its
    project total exceeds its birth-month count — O(kinds), not
    O(months × kinds).
    """
    series = profile.heartbeat
    if series.breakdowns is None:
        return 0
    birth_flat = series.breakdowns[profile.birth_month].flat
    total_flat = profile.totals.breakdown.flat
    return sum(1 for total, born in zip(total_flat, birth_flat)
               if total > born)


def pack_record(record: StudyRecord, *,
                count: bool = True) -> PackedRecord:
    """Flatten one study record into its table row.

    ``count=False`` skips the pack counter — for callers packing a
    side copy (delta checkpoints) rather than a table row, so the
    ``--timings`` pack column keeps meaning "columnar rows packed".
    """
    labeled = record.labeled
    profile = labeled.profile
    marks = profile.landmarks
    totals = profile.totals
    if count:
        _COUNTERS[0] += 1
    return PackedRecord(
        name=record.name,
        pattern=PATTERN_INDEX[record.pattern],
        is_exception=record.is_exception,
        labels=tuple(map(dict.__getitem__, LABEL_INDEX,
                         _LABEL_MEMBERS(labeled))),
        measures=(
            marks.birth_volume_fraction,
            marks.birth_pct,
            marks.top_band_pct,
            marks.interval_birth_to_top_pct,
            marks.interval_top_to_end_pct,
            float(marks.active_growth_months),
            marks.active_pct_growth,
            marks.active_pct_pup,
        ),
        birth_month=marks.birth_month,
        interval_birth_to_top_months=marks.interval_birth_to_top_months,
        has_vault=marks.has_vault,
        active_growth_months=labeled.active_growth_months,
        pup_months=marks.pup_months,
        total_activity=totals.total_activity,
        post_birth_activity=totals.post_birth_activity,
        expansion=totals.expansion,
        maintenance=totals.maintenance,
        schema_size_at_birth=totals.schema_size_at_birth,
        kind_counts=totals.breakdown.flat,
        expansion_fraction=totals.breakdown.expansion_fraction,
        post_birth_kinds=_post_birth_kinds(profile),
        vector=profile.vector,
    )


@dataclass(frozen=True)
class RecordTable:
    """The corpus as flat columns, one entry per surviving record.

    Column-oriented twin of a ``StudyRecord`` list: every attribute an
    analysis kernel reads is a dense tuple indexed by record position
    (the map stage's item order, survivors only), so a corpus-level
    statistic is one tight loop over machine scalars instead of N
    attribute chains through five nested objects.

    Attributes:
        names: interned project names.
        pattern: dense :data:`PATTERN_ORDER` indexes.
        is_exception: exception flags (`True` iff strict classification
            disagrees with the assigned pattern — see
            :class:`PackedRecord`).
        labels: seven label-index columns, :data:`LABEL_COLUMNS` order.
        measures: eight measure columns, ``MEASURE_NAMES`` order.
        birth_month / interval_birth_to_top_months / has_vault /
            active_growth_months / pup_months: landmark columns.
        total_activity / post_birth_activity / expansion / maintenance /
            schema_size_at_birth: activity-total columns.
        kind_counts: row-major flat kind counts — record ``i`` owns
            ``kind_counts[i * N_KINDS : (i + 1) * N_KINDS]``.
        expansion_fraction: per-record expansion share.
        post_birth_kinds: distinct post-birth change kinds per record.
        vectors: the 20-point §5.2 vectors.
    """

    names: tuple[str, ...]
    pattern: tuple[int, ...]
    is_exception: tuple[bool, ...]
    labels: tuple[tuple[int, ...], ...]
    measures: tuple[tuple[float, ...], ...]
    birth_month: tuple[int, ...]
    interval_birth_to_top_months: tuple[int, ...]
    has_vault: tuple[bool, ...]
    active_growth_months: tuple[int, ...]
    pup_months: tuple[int, ...]
    total_activity: tuple[int, ...]
    post_birth_activity: tuple[int, ...]
    expansion: tuple[int, ...]
    maintenance: tuple[int, ...]
    schema_size_at_birth: tuple[int, ...]
    kind_counts: tuple[int, ...]
    expansion_fraction: tuple[float, ...]
    post_birth_kinds: tuple[int, ...]
    vectors: tuple[tuple[float, ...], ...]

    def __len__(self) -> int:
        return len(self.names)

    @classmethod
    def from_rows(cls, rows: Iterable[PackedRecord]) -> "RecordTable":
        """Assemble (or FIFO-merge) packed rows into one table.

        The executor calls this once per map stage with the harvested
        partial packs concatenated in item order; tests call it to
        round-trip. Empty input yields a valid zero-length table.
        """
        rows = list(rows)
        if not rows:
            return cls(
                names=(), pattern=(), is_exception=(),
                labels=((),) * N_LABELS, measures=((),) * N_MEASURES,
                birth_month=(), interval_birth_to_top_months=(),
                has_vault=(), active_growth_months=(), pup_months=(),
                total_activity=(), post_birth_activity=(), expansion=(),
                maintenance=(), schema_size_at_birth=(), kind_counts=(),
                expansion_fraction=(), post_birth_kinds=(), vectors=())
        return cls(
            names=tuple(sys.intern(row.name) for row in rows),
            pattern=tuple(row.pattern for row in rows),
            is_exception=tuple(row.is_exception for row in rows),
            labels=tuple(zip(*(row.labels for row in rows))),
            measures=tuple(zip(*(row.measures for row in rows))),
            birth_month=tuple(row.birth_month for row in rows),
            interval_birth_to_top_months=tuple(
                row.interval_birth_to_top_months for row in rows),
            has_vault=tuple(row.has_vault for row in rows),
            active_growth_months=tuple(
                row.active_growth_months for row in rows),
            pup_months=tuple(row.pup_months for row in rows),
            total_activity=tuple(row.total_activity for row in rows),
            post_birth_activity=tuple(
                row.post_birth_activity for row in rows),
            expansion=tuple(row.expansion for row in rows),
            maintenance=tuple(row.maintenance for row in rows),
            schema_size_at_birth=tuple(
                row.schema_size_at_birth for row in rows),
            kind_counts=tuple(
                value for row in rows for value in row.kind_counts),
            expansion_fraction=tuple(
                row.expansion_fraction for row in rows),
            post_birth_kinds=tuple(row.post_birth_kinds for row in rows),
            vectors=tuple(row.vector for row in rows),
        )

    @classmethod
    def from_records(cls, records: Sequence[StudyRecord]
                     ) -> "RecordTable":
        """Pack a record list in one go (the non-streamed path)."""
        return cls.from_rows(pack_record(record) for record in records)

    def unpack(self) -> list[PackedRecord]:
        """The table back as rows — inverse of :meth:`from_rows`."""
        return [
            PackedRecord(
                name=self.names[i],
                pattern=self.pattern[i],
                is_exception=self.is_exception[i],
                labels=tuple(column[i] for column in self.labels),
                measures=tuple(column[i] for column in self.measures),
                birth_month=self.birth_month[i],
                interval_birth_to_top_months=self
                .interval_birth_to_top_months[i],
                has_vault=self.has_vault[i],
                active_growth_months=self.active_growth_months[i],
                pup_months=self.pup_months[i],
                total_activity=self.total_activity[i],
                post_birth_activity=self.post_birth_activity[i],
                expansion=self.expansion[i],
                maintenance=self.maintenance[i],
                schema_size_at_birth=self.schema_size_at_birth[i],
                kind_counts=self.kind_row(i),
                expansion_fraction=self.expansion_fraction[i],
                post_birth_kinds=self.post_birth_kinds[i],
                vector=self.vectors[i],
            )
            for i in range(len(self))
        ]

    def kind_row(self, index: int) -> tuple[int, ...]:
        """Record ``index``'s per-kind lifetime event counts."""
        offset = index * N_KINDS
        return self.kind_counts[offset:offset + N_KINDS]

    def measure_map(self) -> dict[str, tuple[float, ...]]:
        """The measure columns keyed by name, ``MEASURE_NAMES`` order —
        the columnar stand-in for :func:`measures_of`."""
        return dict(zip(MEASURE_NAMES, self.measures))
