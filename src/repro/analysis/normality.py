"""Shapiro–Wilk normality tests over the time-related measures (§3.4.1).

The paper reports that every involved measure fails normality (highest
p-value on the order of 1e-9), justifying the use of rank correlation
and quantile-based statistics. We run the same tests via scipy and also
build the 10-bucket histograms the paper quantized with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from scipy import stats as _scipy_stats

from repro.analysis.records import MEASURE_NAMES, StudyRecord, measures_of
from repro.errors import AnalysisError


@dataclass(frozen=True)
class NormalityRow:
    """Shapiro–Wilk result for one measure.

    Attributes:
        measure: measure name.
        statistic: the W statistic.
        p_value: the test's p-value.
        histogram: 10-bucket counts over the measure's [min, max] range.
    """

    measure: str
    statistic: float
    p_value: float
    histogram: tuple[int, ...]

    @property
    def is_normal_at_5pct(self) -> bool:
        """True when normality is NOT rejected at the 5 % level."""
        return self.p_value > 0.05


@dataclass(frozen=True)
class NormalityResult:
    """Normality tests over all time-related measures.

    Attributes:
        rows: one per measure, in the canonical order.
    """

    rows: tuple[NormalityRow, ...]

    @property
    def max_p_value(self) -> float:
        """The largest p-value across measures (paper: ~1e-9)."""
        return max(row.p_value for row in self.rows)

    @property
    def all_non_normal(self) -> bool:
        """True when every measure rejects normality at 5 %."""
        return all(not row.is_normal_at_5pct for row in self.rows)


def _histogram(values: Sequence[float], buckets: int = 10) -> tuple[int, ...]:
    lo, hi = min(values), max(values)
    counts = [0] * buckets
    if hi == lo:
        counts[0] = len(values)
        return tuple(counts)
    width = (hi - lo) / buckets
    for value in values:
        index = min(int((value - lo) / width), buckets - 1)
        counts[index] += 1
    return tuple(counts)


def compute_normality(records: Sequence[StudyRecord]) -> NormalityResult:
    """Run Shapiro–Wilk on every time-related measure.

    Raises:
        AnalysisError: when fewer than 3 projects are given (the test's
            minimum sample size).
    """
    return normality_of(measures_of(records), len(records))


def normality_of(measures: Mapping[str, Sequence[float]],
                 total: int) -> NormalityResult:
    """Shapiro–Wilk over already-extracted measure vectors.

    The measure-vector form of :func:`compute_normality`, shared with
    the columnar analysis backend (which holds the vectors as table
    columns and never rebuilds the per-record view).
    """
    if total < 3:
        raise AnalysisError("Shapiro-Wilk needs at least 3 observations")
    rows: list[NormalityRow] = []
    for name in MEASURE_NAMES:
        values = measures[name]
        if len(set(values)) == 1:
            # Constant sample: normality is vacuously rejected.
            rows.append(NormalityRow(measure=name, statistic=0.0,
                                     p_value=0.0,
                                     histogram=_histogram(values)))
            continue
        statistic, p_value = _scipy_stats.shapiro(values)
        rows.append(NormalityRow(measure=name, statistic=float(statistic),
                                 p_value=float(p_value),
                                 histogram=_histogram(values)))
    return NormalityResult(rows=tuple(rows))
