"""Relationship of patterns to activity volume (paper §6.1).

The paper's claim: the time-related patterns are orthogonal to most
activity measures — except that Smoking Funnel and Regularly Curated
carry order-of-magnitude larger total change (§6.1 medians 189 and 250
versus 13/17/22 for the others), while project *duration* does not
differ across patterns.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.records import StudyRecord
from repro.errors import AnalysisError
from repro.patterns.taxonomy import Pattern, REAL_PATTERNS


@dataclass(frozen=True)
class ActivityRow:
    """Per-pattern activity statistics.

    Attributes:
        pattern: the pattern.
        count: projects in the pattern.
        median_post_birth: median Total Schema Activity (change after
            schema birth) — the paper's §6.1 quantity.
        median_total: median activity including birth.
        median_expansion / median_maintenance: medians of the split.
        median_pup: median project duration in months.
        median_birth_size: median schema size at birth (attributes).
    """

    pattern: Pattern
    count: int
    median_post_birth: float
    median_total: float
    median_expansion: float
    median_maintenance: float
    median_pup: float
    median_birth_size: float


@dataclass(frozen=True)
class ActivityRelationResult:
    """§6.1 per-pattern activity statistics.

    Attributes:
        rows: one row per populated pattern, in the paper's order.
    """

    rows: tuple[ActivityRow, ...]

    def row(self, pattern: Pattern) -> ActivityRow | None:
        """Row of one pattern, or None if it has no projects."""
        for row in self.rows:
            if row.pattern is pattern:
                return row
        return None


def compute_activity_relation(records: Sequence[StudyRecord]
                              ) -> ActivityRelationResult:
    """Compute §6.1 statistics per pattern.

    Raises:
        AnalysisError: for an empty corpus.
    """
    if not records:
        raise AnalysisError("empty corpus")
    rows: list[ActivityRow] = []
    for pattern in REAL_PATTERNS:
        members = [r for r in records if r.pattern is pattern]
        if not members:
            continue
        totals = [r.profile.totals for r in members]
        rows.append(ActivityRow(
            pattern=pattern,
            count=len(members),
            median_post_birth=statistics.median(
                t.post_birth_activity for t in totals),
            median_total=statistics.median(
                t.total_activity for t in totals),
            median_expansion=statistics.median(
                t.expansion for t in totals),
            median_maintenance=statistics.median(
                t.maintenance for t in totals),
            median_pup=statistics.median(
                r.profile.pup_months for r in members),
            median_birth_size=statistics.median(
                t.schema_size_at_birth for t in totals),
        ))
    return ActivityRelationResult(rows=tuple(rows))
