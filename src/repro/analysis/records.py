"""The study record: one classified, labeled, measured project."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.labels.quantization import LabeledProfile
from repro.metrics.profile import ProjectProfile
from repro.patterns.taxonomy import Pattern


@dataclass(frozen=True)
class StudyRecord:
    """One project as it enters the analyses.

    Attributes:
        name: project name.
        pattern: the pattern the project is assigned to (ground truth for
            generated corpora — mirroring the paper's manual annotation —
            or the tolerant classification for external histories).
        labeled: the labeled profile.
        is_exception: True when the assignment violates the pattern's
            formal definition.
    """

    name: str
    pattern: Pattern
    labeled: LabeledProfile
    is_exception: bool = False

    @property
    def profile(self) -> ProjectProfile:
        """The measured profile."""
        return self.labeled.profile


#: Names of the time-related measures used in Fig. 2 and §3.4.1, in the
#: order the paper discusses them.
MEASURE_NAMES: tuple[str, ...] = (
    "BirthVolume_pctTotal",
    "PointOfBirth_pctPUP",
    "PointOfTopBand_pctPUP",
    "IntervalBirthToTop_pctPUP",
    "IntervalTopToEnd_pctPUP",
    "ActiveGrowthMonths",
    "ActiveMonths_pctGrowth",
    "ActiveMonths_pctPUP",
)


def measures_of(records: Sequence[StudyRecord]
                ) -> dict[str, list[float]]:
    """Extract the Fig.-2 measure vectors from study records."""
    out: dict[str, list[float]] = {name: [] for name in MEASURE_NAMES}
    for record in records:
        marks = record.profile.landmarks
        out["BirthVolume_pctTotal"].append(marks.birth_volume_fraction)
        out["PointOfBirth_pctPUP"].append(marks.birth_pct)
        out["PointOfTopBand_pctPUP"].append(marks.top_band_pct)
        out["IntervalBirthToTop_pctPUP"].append(
            marks.interval_birth_to_top_pct)
        out["IntervalTopToEnd_pctPUP"].append(marks.interval_top_to_end_pct)
        out["ActiveGrowthMonths"].append(float(marks.active_growth_months))
        out["ActiveMonths_pctGrowth"].append(marks.active_pct_growth)
        out["ActiveMonths_pctPUP"].append(marks.active_pct_pup)
    return out
