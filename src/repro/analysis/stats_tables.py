"""Table 1 (label distribution) and the §3.4 statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.records import StudyRecord
from repro.errors import AnalysisError
from repro.labels.classes import (
    ActiveGrowthClass,
    ActivePupClass,
    BirthTimingClass,
    BirthVolumeClass,
    IntervalBirthToTopClass,
    IntervalTopToEndClass,
    TopBandTimingClass,
)

#: The Table-1 metric rows, in paper order: (row key, enum, attribute of
#: LabeledProfile holding the label).
TABLE1_ROWS: tuple[tuple[str, type, str], ...] = (
    ("Volume of Birth (%Total Change)", BirthVolumeClass, "birth_volume"),
    ("Time Point of Birth (%PUP)", BirthTimingClass, "birth_timing"),
    ("Time Point of Top Band (%PUP)", TopBandTimingClass,
     "top_band_timing"),
    ("Interval Birth-To-TopBand (%PUP)", IntervalBirthToTopClass,
     "interval_birth_to_top"),
    ("Interval TopBand-To-End (%PUP)", IntervalTopToEndClass,
     "interval_top_to_end"),
    ("Active Months as %Growth", ActiveGrowthClass, "active_growth"),
    ("Active Months as %PUP", ActivePupClass, "active_pup"),
)


@dataclass(frozen=True)
class Table1Result:
    """Per-metric label counts over the corpus (the paper's Table 1).

    Attributes:
        rows: metric row key -> {label value: project count}.
        total: number of projects.
    """

    rows: dict[str, dict[str, int]]
    total: int

    def count(self, row: str, label: str) -> int:
        """Projects carrying ``label`` on metric ``row``."""
        return self.rows[row].get(label, 0)


def compute_table1(records: Sequence[StudyRecord]) -> Table1Result:
    """Count label memberships per metric (Table 1).

    Raises:
        AnalysisError: for an empty corpus.
    """
    if not records:
        raise AnalysisError("empty corpus")
    rows: dict[str, dict[str, int]] = {}
    for key, enum_cls, attr in TABLE1_ROWS:
        counts = {member.value: 0 for member in enum_cls}
        for record in records:
            counts[getattr(record.labeled, attr).value] += 1
        rows[key] = counts
    return Table1Result(rows=rows, total=len(records))


@dataclass(frozen=True)
class Section34Stats:
    """The headline statistics of §3.4 (and the abstract).

    Attributes:
        total: corpus size.
        born_at_v0: projects whose schema is born at month 0.
        born_first_10pct: schemata born in the first 10 % of time
            (paper: ~half the corpus).
        born_first_25pct: born at V0 or before 25 % of the PUP
            (paper: ~105 of 151).
        top_attained_first_25pct: projects reaching the top band at V0 or
            before 25 % of the PUP (paper: 64, i.e. 42 %).
        high_activity_at_birth: projects at High or Full volume of birth
            (paper: 83).
        full_activity_at_birth: projects at Full volume (paper: 39).
        vault_share: fraction of projects with a vault (paper: 58 %).
        zero_active_growth: projects with zero active growth months
            (paper: 98, i.e. 2/3).
        at_most_one_active_growth: projects with <= 1 active growth month
            (paper: 115, i.e. 76 %).
        interval_birth_top_under_10pct: projects whose growth interval is
            under 10 % of the PUP (paper: 88).
        interval_birth_top_zero: projects with a zero growth interval
            (paper: 62).
    """

    total: int
    born_at_v0: int
    born_first_10pct: int
    born_first_25pct: int
    top_attained_first_25pct: int
    high_activity_at_birth: int
    full_activity_at_birth: int
    vault_share: float
    zero_active_growth: int
    at_most_one_active_growth: int
    interval_birth_top_under_10pct: int
    interval_birth_top_zero: int


def compute_section34_stats(records: Sequence[StudyRecord]
                            ) -> Section34Stats:
    """Compute the §3.4 headline statistics.

    Raises:
        AnalysisError: for an empty corpus.
    """
    if not records:
        raise AnalysisError("empty corpus")
    total = len(records)
    marks = [r.profile.landmarks for r in records]
    labels = [r.labeled for r in records]
    return Section34Stats(
        total=total,
        born_at_v0=sum(1 for m in marks if m.birth_month == 0),
        born_first_10pct=sum(1 for m in marks if m.birth_pct <= 0.10),
        born_first_25pct=sum(1 for m in marks if m.birth_pct <= 0.25),
        top_attained_first_25pct=sum(
            1 for m in marks if m.top_band_pct <= 0.25),
        high_activity_at_birth=sum(
            1 for l in labels
            if l.birth_volume in (BirthVolumeClass.HIGH,
                                  BirthVolumeClass.FULL)),
        full_activity_at_birth=sum(
            1 for l in labels if l.birth_volume is BirthVolumeClass.FULL),
        vault_share=sum(1 for m in marks if m.has_vault) / total,
        zero_active_growth=sum(
            1 for m in marks if m.active_growth_months == 0),
        at_most_one_active_growth=sum(
            1 for m in marks if m.active_growth_months <= 1),
        interval_birth_top_under_10pct=sum(
            1 for m in marks if m.interval_birth_to_top_pct < 0.10),
        interval_birth_top_zero=sum(
            1 for m in marks if m.interval_birth_to_top_months == 0),
    )
