"""Study-level analyses: one module per paper artifact.

Every analysis consumes a list of :class:`StudyRecord` (project +
measured profile + labels + assigned pattern) and returns a typed result
bundle the report/benchmark layer renders.

* :mod:`repro.analysis.stats_tables` — Table 1 and the §3.4 statistics.
* :mod:`repro.analysis.coverage` — Fig. 6 active-domain coverage.
* :mod:`repro.analysis.prediction` — Fig. 7 birth-month probabilities.
* :mod:`repro.analysis.activity_relation` — §6.1 activity medians.
* :mod:`repro.analysis.change_mix` — §6.3 expansion/maintenance mixture.
* :mod:`repro.analysis.normality` — §3.4.1 Shapiro–Wilk tests.
* :mod:`repro.analysis.table` — the columnar :class:`RecordTable` pack
  feeding the fused single-pass analysis kernels.
"""

from repro.analysis.records import StudyRecord, measures_of
from repro.analysis.table import PackedRecord, RecordTable, pack_record
from repro.analysis.stats_tables import (
    Table1Result,
    Section34Stats,
    compute_section34_stats,
    compute_table1,
)
from repro.analysis.coverage import CoverageResult, compute_coverage
from repro.analysis.prediction import PredictionResult, compute_prediction
from repro.analysis.activity_relation import (
    ActivityRelationResult,
    compute_activity_relation,
)
from repro.analysis.change_mix import ChangeMixResult, compute_change_mix
from repro.analysis.normality import NormalityResult, compute_normality
from repro.analysis.coevolution import CoevolutionResult, compute_coevolution
from repro.analysis.families import (
    FamilyCohesionResult,
    compute_family_cohesion,
)
from repro.analysis.table_level import TableLevelResult, compute_table_level

__all__ = [
    "ActivityRelationResult",
    "CoevolutionResult",
    "FamilyCohesionResult",
    "TableLevelResult",
    "compute_coevolution",
    "compute_family_cohesion",
    "compute_table_level",
    "ChangeMixResult",
    "CoverageResult",
    "NormalityResult",
    "PackedRecord",
    "PredictionResult",
    "RecordTable",
    "Section34Stats",
    "StudyRecord",
    "Table1Result",
    "pack_record",
    "compute_activity_relation",
    "compute_change_mix",
    "compute_coverage",
    "compute_normality",
    "compute_prediction",
    "compute_section34_stats",
    "compute_table1",
    "measures_of",
]
