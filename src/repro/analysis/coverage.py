"""Active-domain coverage of the pattern definitions (paper Fig. 6).

The paper plots which combinations of the defining class-based metrics
are actually populated, and by which patterns — the visual argument for
essential disjointedness. This module computes that map and the derived
disjointedness facts (cells shared by more than one pattern).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.records import StudyRecord
from repro.errors import AnalysisError
from repro.patterns.taxonomy import Pattern

#: A coverage cell: the four defining features, AGM bucketed the way the
#: definitions use it (0, 1–3, >3).
CoverageCell = tuple[str, str, str, str]


def agm_bucket(months: int) -> str:
    """Bucket active growth months the way the definitions split them."""
    if months == 0:
        return "0"
    if months <= 3:
        return "1-3"
    return ">3"


def cell_of(record: StudyRecord) -> CoverageCell:
    """The active-domain cell of one record."""
    labeled = record.labeled
    return (
        labeled.birth_timing.value,
        labeled.top_band_timing.value,
        labeled.interval_birth_to_top.value,
        agm_bucket(labeled.active_growth_months),
    )


@dataclass(frozen=True)
class CoverageResult:
    """The populated region of the defining-feature space.

    Attributes:
        cells: cell -> {pattern: project count}.
        total_cells_possible: cardinality of the full Cartesian product.
    """

    cells: dict[CoverageCell, dict[Pattern, int]]
    total_cells_possible: int

    @property
    def populated_cells(self) -> int:
        """Number of cells that contain at least one project."""
        return len(self.cells)

    @property
    def shared_cells(self) -> dict[CoverageCell, dict[Pattern, int]]:
        """Cells populated by more than one pattern (the paper's few
        acknowledged overlap spots)."""
        return {cell: patterns for cell, patterns in self.cells.items()
                if len(patterns) > 1}

    @property
    def coverage_fraction(self) -> float:
        """Share of the feature space that is populated."""
        return self.populated_cells / self.total_cells_possible

    def dominant_pattern(self, cell: CoverageCell) -> Pattern:
        """The most populous pattern of a cell."""
        patterns = self.cells[cell]
        return max(patterns, key=lambda p: (patterns[p], p.value))


def compute_coverage(records: Sequence[StudyRecord]) -> CoverageResult:
    """Build the Fig.-6 coverage map.

    Raises:
        AnalysisError: for an empty corpus.
    """
    if not records:
        raise AnalysisError("empty corpus")
    cells: dict[CoverageCell, dict[Pattern, int]] = {}
    for record in records:
        cell = cell_of(record)
        bucket = cells.setdefault(cell, {})
        bucket[record.pattern] = bucket.get(record.pattern, 0) + 1
    # 4 birth classes x 4 top classes x 5 interval classes x 3 AGM buckets.
    total_possible = 4 * 4 * 5 * 3
    return CoverageResult(cells=cells,
                          total_cells_possible=total_possible)
