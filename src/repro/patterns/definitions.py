"""Formal pattern definitions (paper Definitions 4.1 – 4.8).

Each pattern is defined over four features of a labeled profile:

1. Point-of-Schema-Birth class,
2. Top-Band-Attainment-Point class,
3. Birth-to-Top Interval class,
4. Active Growth Months (raw count).

A definition holds one or more :class:`Variant` rows (Quantum Steps and
Regularly Curated have two each); a profile matches the definition when it
matches any variant. The regions of the eight definitions are pairwise
disjoint in the feature space (verified by tests and by the Fig-6
coverage analysis).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.labels.classes import (
    BirthTimingClass,
    IntervalBirthToTopClass,
    TopBandTimingClass,
)
from repro.labels.quantization import LabeledProfile
from repro.patterns.taxonomy import Pattern

_B = BirthTimingClass
_T = TopBandTimingClass
_I = IntervalBirthToTopClass

#: Sentinel for "no upper bound" on active growth months.
UNBOUNDED = 10 ** 9


@dataclass(frozen=True)
class Variant:
    """One row of a pattern definition.

    Attributes:
        birth: allowed Point-of-Schema-Birth classes.
        top: allowed Top-Band-Attainment classes.
        interval: allowed Birth-to-Top interval classes; None = any.
        agm_min / agm_max: inclusive bounds on Active Growth Months.
    """

    birth: frozenset[BirthTimingClass]
    top: frozenset[TopBandTimingClass]
    interval: frozenset[IntervalBirthToTopClass] | None = None
    agm_min: int = 0
    agm_max: int = UNBOUNDED

    def matches(self, labeled: LabeledProfile) -> bool:
        """True when ``labeled`` satisfies every constraint of the row."""
        return not self.violations(labeled)

    def violations(self, labeled: LabeledProfile) -> tuple[str, ...]:
        """Names of the constraints ``labeled`` violates (empty = match)."""
        out: list[str] = []
        if labeled.birth_timing not in self.birth:
            out.append("birth_timing")
        if labeled.top_band_timing not in self.top:
            out.append("top_band_timing")
        if self.interval is not None \
                and labeled.interval_birth_to_top not in self.interval:
            out.append("interval_birth_to_top")
        agm = labeled.active_growth_months
        if not self.agm_min <= agm <= self.agm_max:
            out.append("active_growth_months")
        return tuple(out)


@dataclass(frozen=True)
class PatternDefinition:
    """A pattern with its defining variants."""

    pattern: Pattern
    variants: tuple[Variant, ...]

    def matches(self, labeled: LabeledProfile) -> bool:
        """True when any variant matches."""
        return any(v.matches(labeled) for v in self.variants)

    def min_violations(self, labeled: LabeledProfile) -> tuple[str, ...]:
        """The violation set of the closest variant (smallest set wins)."""
        best: tuple[str, ...] | None = None
        for variant in self.variants:
            violations = variant.violations(labeled)
            if best is None or len(violations) < len(best):
                best = violations
            if not best:
                break
        assert best is not None
        return best


#: Def 4.1 — born at V0, top band at V0, nothing afterwards.
FLATLINER = PatternDefinition(Pattern.FLATLINER, (
    Variant(birth=frozenset({_B.V0}), top=frozenset({_T.V0}),
            interval=frozenset({_I.ZERO}), agm_max=0),
))

#: Def 4.2 — born at V0/early, top band early; the vault right at birth.
#: The AGM bound follows the observed range of Fig. 4 (0–2).
RADICAL_SIGN = PatternDefinition(Pattern.RADICAL_SIGN, (
    Variant(birth=frozenset({_B.V0, _B.EARLY}), top=frozenset({_T.EARLY}),
            interval=None, agm_max=2),
))

#: Def 4.3 — born mid-life, immediate rise, long frozen tail.
SIGMOID = PatternDefinition(Pattern.SIGMOID, (
    Variant(birth=frozenset({_B.MIDDLE}), top=frozenset({_T.MIDDLE}),
            interval=frozenset({_I.ZERO, _I.SOON}), agm_max=1),
))

#: Def 4.4 — born late, rises immediately, short tail.
LATE_RISER = PatternDefinition(Pattern.LATE_RISER, (
    Variant(birth=frozenset({_B.LATE}), top=frozenset({_T.LATE}),
            interval=frozenset({_I.ZERO, _I.SOON}), agm_max=0),
))

#: Def 4.5 — few (<= 3) focused steps between birth and top band.
QUANTUM_STEPS = PatternDefinition(Pattern.QUANTUM_STEPS, (
    Variant(birth=frozenset({_B.V0, _B.EARLY}),
            top=frozenset({_T.MIDDLE}),
            interval=frozenset({_I.FAIR, _I.LONG}), agm_max=3),
    Variant(birth=frozenset({_B.MIDDLE}), top=frozenset({_T.LATE}),
            interval=frozenset({_I.FAIR, _I.LONG}), agm_max=3),
))

#: Def 4.6 — more than 3 active growth months of steady curation.
REGULARLY_CURATED = PatternDefinition(Pattern.REGULARLY_CURATED, (
    Variant(birth=frozenset({_B.V0, _B.EARLY}),
            top=frozenset({_T.MIDDLE, _T.LATE}),
            interval=frozenset({_I.LONG, _I.VERY_LONG}), agm_min=4),
    Variant(birth=frozenset({_B.MIDDLE}), top=frozenset({_T.LATE}),
            interval=frozenset({_I.FAIR, _I.LONG}), agm_min=4),
))

#: Def 4.7 — early birth, very long sleep, late final changes.
SIESTA = PatternDefinition(Pattern.SIESTA, (
    Variant(birth=frozenset({_B.V0, _B.EARLY}), top=frozenset({_T.LATE}),
            interval=frozenset({_I.VERY_LONG}), agm_max=3),
))

#: Def 4.8 — mid-life birth with dense change after it.
SMOKING_FUNNEL = PatternDefinition(Pattern.SMOKING_FUNNEL, (
    Variant(birth=frozenset({_B.MIDDLE}), top=frozenset({_T.MIDDLE}),
            interval=frozenset({_I.FAIR}), agm_min=4),
))

#: All definitions in the paper's presentation order.
DEFINITIONS: tuple[PatternDefinition, ...] = (
    FLATLINER,
    RADICAL_SIGN,
    SIGMOID,
    LATE_RISER,
    QUANTUM_STEPS,
    REGULARLY_CURATED,
    SIESTA,
    SMOKING_FUNNEL,
)

_BY_PATTERN = {d.pattern: d for d in DEFINITIONS}


def definition_of(pattern: Pattern) -> PatternDefinition:
    """The definition of one (real) pattern.

    Raises:
        KeyError: for :attr:`Pattern.UNCLASSIFIED`.
    """
    return _BY_PATTERN[pattern]
