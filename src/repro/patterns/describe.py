"""Human-readable pattern descriptions and curator guidance.

Turns a classification outcome into narrative a non-specialist can use:
what the pattern means, what the cumulative line looks like, and what a
project curator should plan for (the practical angle of paper §7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.patterns.taxonomy import Family, Pattern, family_of


@dataclass(frozen=True)
class PatternDescription:
    """Narrative facts about one pattern.

    Attributes:
        pattern: the described pattern.
        family: its family.
        shape: one-line description of the cumulative-progress line.
        meaning: what the pattern says about how the schema was curated.
        advice: practical guidance for a project in this pattern.
    """

    pattern: Pattern
    family: Family | None
    shape: str
    meaning: str
    advice: str


_DESCRIPTIONS: dict[Pattern, tuple[str, str, str]] = {
    Pattern.FLATLINER: (
        "a flat line at 100 % from the very first version",
        "the schema was designed once, with the project's first commit, "
        "and never changed at the logical level again",
        "treat the schema as a frozen contract; invest review effort "
        "up front, since fixing it later is evidently not the habit",
    ),
    Pattern.RADICAL_SIGN: (
        "a √-shaped vault: a steep early climb, then a long flat tail",
        "the schema was born early and completed almost immediately; "
        "whatever change happened, happened in the first quarter of "
        "the project's life",
        "expect a short, intense schema-design phase; after the vault, "
        "migrations become rare events worth treating as exceptions",
    ),
    Pattern.SIGMOID: (
        "an S-shaped step in the middle of the project's life",
        "the database arrived mid-project (often when persistence was "
        "added to an existing code base) and froze right away",
        "the late arrival compresses design time; budget a focused "
        "schema-design sprint when persistence lands",
    ),
    Pattern.LATE_RISER: (
        "a flat zero line with a single step near the end",
        "the schema appeared in the last quarter of the observed "
        "history — persistence was an afterthought or a late pivot",
        "treat the young schema as unstable; the observed freeze may "
        "only reflect how little time it has existed",
    ),
    Pattern.QUANTUM_STEPS: (
        "a staircase with at most three distinct steps",
        "schema changes came in a few focused batches, with long "
        "quiet stretches between them",
        "batch migrations deliberately: group schema work into planned "
        "releases rather than continuous trickle",
    ),
    Pattern.REGULARLY_CURATED: (
        "a steady ramp with many small steps",
        "the schema was continuously maintained alongside the code — "
        "the most database-active regime in the corpus",
        "invest in migration automation and schema-code co-evolution "
        "tooling; change is the norm here, not the exception",
    ),
    Pattern.SIESTA: (
        "an early step, a long flat plateau, and a late second step",
        "after an early design the schema slept for most of the "
        "project's life, then received late, focused changes",
        "late changes land on old code: re-validate queries and "
        "mappings carefully when the schema wakes up",
    ),
    Pattern.SMOKING_FUNNEL: (
        "a mid-life take-off followed by a dense climb",
        "the schema was born in mid-project at medium volume and kept "
        "evolving densely afterwards",
        "plan for sustained schema work from the moment the database "
        "lands; this is the rarest but busiest regime",
    ),
}


def describe(pattern: Pattern) -> PatternDescription:
    """The narrative description of ``pattern``.

    Raises:
        KeyError: for :attr:`Pattern.UNCLASSIFIED`.
    """
    shape, meaning, advice = _DESCRIPTIONS[pattern]
    return PatternDescription(pattern=pattern, family=family_of(pattern),
                              shape=shape, meaning=meaning, advice=advice)


def describe_all() -> list[PatternDescription]:
    """Descriptions of every real pattern, in the paper's order."""
    return [describe(pattern) for pattern in _DESCRIPTIONS]
