"""Pattern and family taxonomy with the paper's population counts."""

from __future__ import annotations

import enum


class Family(enum.Enum):
    """The three pattern families of the paper."""

    BE_QUICK_OR_BE_DEAD = "Be Quick or Be Dead"
    STAIRWAY_TO_HEAVEN = "Stairway to Heaven"
    SCARED_TO_FALL_ASLEEP_AGAIN = "Scared to Fall Asleep Again"


class Pattern(enum.Enum):
    """The eight time-related patterns (plus an explicit unclassified)."""

    FLATLINER = "Flatliner"
    RADICAL_SIGN = "Radical Sign"
    SIGMOID = "Sigmoid"
    LATE_RISER = "Late Riser"
    QUANTUM_STEPS = "Quantum Steps"
    REGULARLY_CURATED = "Regularly Curated"
    SIESTA = "Siesta"
    SMOKING_FUNNEL = "Smoking Funnel"
    UNCLASSIFIED = "Unclassified"

    @property
    def display_name(self) -> str:
        """Human-readable pattern name."""
        return self.value


_FAMILY_OF: dict[Pattern, Family] = {
    Pattern.FLATLINER: Family.BE_QUICK_OR_BE_DEAD,
    Pattern.RADICAL_SIGN: Family.BE_QUICK_OR_BE_DEAD,
    Pattern.SIGMOID: Family.BE_QUICK_OR_BE_DEAD,
    Pattern.LATE_RISER: Family.BE_QUICK_OR_BE_DEAD,
    Pattern.QUANTUM_STEPS: Family.STAIRWAY_TO_HEAVEN,
    Pattern.REGULARLY_CURATED: Family.STAIRWAY_TO_HEAVEN,
    Pattern.SIESTA: Family.SCARED_TO_FALL_ASLEEP_AGAIN,
    Pattern.SMOKING_FUNNEL: Family.SCARED_TO_FALL_ASLEEP_AGAIN,
}


def family_of(pattern: Pattern) -> Family | None:
    """The family of a pattern; None for UNCLASSIFIED."""
    return _FAMILY_OF.get(pattern)


#: Project counts per pattern in the paper's 151-project corpus (Table 2).
PAPER_POPULATION: dict[Pattern, int] = {
    Pattern.FLATLINER: 23,
    Pattern.RADICAL_SIGN: 41,
    Pattern.SIGMOID: 19,
    Pattern.LATE_RISER: 14,
    Pattern.QUANTUM_STEPS: 23,
    Pattern.REGULARLY_CURATED: 14,
    Pattern.SMOKING_FUNNEL: 7,
    Pattern.SIESTA: 10,
}

#: Exceptions the paper reports per pattern (Table 2).
PAPER_EXCEPTIONS: dict[Pattern, int] = {
    Pattern.FLATLINER: 0,
    Pattern.RADICAL_SIGN: 0,
    Pattern.SIGMOID: 2,
    Pattern.LATE_RISER: 1,
    Pattern.QUANTUM_STEPS: 2,
    Pattern.REGULARLY_CURATED: 0,
    Pattern.SMOKING_FUNNEL: 0,
    Pattern.SIESTA: 3,
}

#: All real patterns (excluding UNCLASSIFIED), in the paper's order.
REAL_PATTERNS: tuple[Pattern, ...] = tuple(PAPER_POPULATION)

#: Total corpus size of the paper.
PAPER_CORPUS_SIZE = sum(PAPER_POPULATION.values())
