"""The 8 time-related patterns of schema evolution (paper §4).

Three families:

* **Be Quick or Be Dead** — focused change around schema birth:
  Flatliner, Radical Sign, Sigmoid, Late Riser.
* **Stairway to Heaven** — regular steps of change:
  Quantum Steps, Regularly Curated.
* **Scared to Fall Asleep Again** — change late in the project's life:
  Siesta, Smoking Funnel.

The classifier applies the formal definitions (Defs 4.1–4.8) to a
:class:`~repro.labels.quantization.LabeledProfile`; a tolerance mode
emulates the paper's practice of keeping near-miss projects inside their
pattern as documented *exceptions* (Table 2).
"""

from repro.patterns.taxonomy import (
    Family,
    PAPER_POPULATION,
    Pattern,
    family_of,
)
from repro.patterns.definitions import (
    DEFINITIONS,
    PatternDefinition,
    Variant,
    definition_of,
)
from repro.patterns.classifier import (
    ClassificationResult,
    classify,
    classify_with_tolerance,
)
from repro.patterns.describe import PatternDescription, describe, describe_all
from repro.patterns.exceptions import ExceptionReport, exception_report

__all__ = [
    "ClassificationResult",
    "PatternDescription",
    "describe",
    "describe_all",
    "DEFINITIONS",
    "ExceptionReport",
    "Family",
    "PAPER_POPULATION",
    "Pattern",
    "PatternDefinition",
    "Variant",
    "classify",
    "classify_with_tolerance",
    "definition_of",
    "exception_report",
    "family_of",
]
