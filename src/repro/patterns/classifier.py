"""Pattern classification of labeled profiles.

Two modes:

* :func:`classify` — strict: the profile must satisfy a definition
  exactly, otherwise :attr:`Pattern.UNCLASSIFIED` is returned. The
  definitions' regions are disjoint, so at most one can match.
* :func:`classify_with_tolerance` — the paper's practice: a profile that
  matches no definition is assigned to the *closest* definition (fewest
  violated constraints, population prior as tie-break) and flagged as an
  exception, provided it is close enough (at most ``max_violations``
  violated constraints); otherwise it stays unclassified.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.labels.quantization import LabeledProfile
from repro.patterns.definitions import DEFINITIONS
from repro.patterns.taxonomy import PAPER_POPULATION, Pattern


@dataclass(frozen=True, slots=True)
class ClassificationResult:
    """The outcome of classifying one project.

    Attributes:
        pattern: the assigned pattern (possibly UNCLASSIFIED).
        is_exception: True when the assignment violates the formal
            definition (tolerance mode only).
        violations: names of the violated defining constraints.
    """

    pattern: Pattern
    is_exception: bool = False
    violations: tuple[str, ...] = ()


def classify(labeled: LabeledProfile) -> Pattern:
    """Strictly classify a labeled profile.

    Returns the unique matching pattern, or UNCLASSIFIED when no
    definition matches. Definition disjointness guarantees uniqueness.
    """
    for definition in DEFINITIONS:
        if definition.matches(labeled):
            return definition.pattern
    return Pattern.UNCLASSIFIED


def classify_with_tolerance(labeled: LabeledProfile,
                            max_violations: int = 1
                            ) -> ClassificationResult:
    """Classify, assigning near-misses to their closest pattern.

    Args:
        labeled: the project's labeled profile.
        max_violations: largest number of violated constraints for which
            a near-miss assignment is still made (the paper's exceptions
            violate exactly one clause of their definition).

    Returns:
        A :class:`ClassificationResult`; ``is_exception`` is True for
        near-miss assignments.
    """
    strict = classify(labeled)
    if strict is not Pattern.UNCLASSIFIED:
        return ClassificationResult(pattern=strict)

    best_pattern = Pattern.UNCLASSIFIED
    best_violations: tuple[str, ...] = ()
    best_count = max_violations + 1
    for definition in DEFINITIONS:
        violations = definition.min_violations(labeled)
        count = len(violations)
        if count < best_count or (
                count == best_count
                and PAPER_POPULATION.get(definition.pattern, 0)
                > PAPER_POPULATION.get(best_pattern, 0)):
            best_pattern = definition.pattern
            best_violations = violations
            best_count = count
    if best_count > max_violations:
        return ClassificationResult(pattern=Pattern.UNCLASSIFIED)
    return ClassificationResult(pattern=best_pattern, is_exception=True,
                                violations=best_violations)
