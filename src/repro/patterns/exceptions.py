"""Exception and overlap accounting (paper Table 2).

Given classified projects, this module counts, per pattern: the
population, the projects assigned as exceptions (definition violated),
and overlaps (profiles whose labels strictly satisfy more than one
definition — always zero given disjoint definitions; reported to prove
it, as the paper's Table 2 does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.labels.quantization import LabeledProfile
from repro.patterns.classifier import ClassificationResult
from repro.patterns.definitions import DEFINITIONS
from repro.patterns.taxonomy import Pattern, REAL_PATTERNS


@dataclass(frozen=True, slots=True)
class ExceptionReport:
    """Per-pattern population / exception / overlap counts.

    Attributes:
        rows: (pattern, population, exceptions, overlaps) per real
            pattern, in the paper's order.
        unclassified: projects no pattern could absorb.
    """

    rows: tuple[tuple[Pattern, int, int, int], ...]
    unclassified: int

    @property
    def total(self) -> int:
        """Total classified projects."""
        return sum(row[1] for row in self.rows)

    @property
    def total_exceptions(self) -> int:
        """Total exception projects across patterns."""
        return sum(row[2] for row in self.rows)


def count_strict_matches(labeled: LabeledProfile) -> int:
    """How many definitions strictly match ``labeled`` (0 or 1 when the
    definitions are disjoint)."""
    return sum(1 for d in DEFINITIONS if d.matches(labeled))


def exception_report(
        classified: Iterable[tuple[LabeledProfile, ClassificationResult]]
) -> ExceptionReport:
    """Build the Table-2 accounting from classification results."""
    population = {p: 0 for p in REAL_PATTERNS}
    exceptions = {p: 0 for p in REAL_PATTERNS}
    overlaps = {p: 0 for p in REAL_PATTERNS}
    unclassified = 0
    for labeled, result in classified:
        if result.pattern is Pattern.UNCLASSIFIED:
            unclassified += 1
            continue
        population[result.pattern] += 1
        if result.is_exception:
            exceptions[result.pattern] += 1
        if count_strict_matches(labeled) > 1:  # pragma: no cover
            overlaps[result.pattern] += 1
    rows = tuple((p, population[p], exceptions[p], overlaps[p])
                 for p in REAL_PATTERNS)
    return ExceptionReport(rows=rows, unclassified=unclassified)
