"""Assembly of the full synthetic corpus.

:func:`generate_corpus` reproduces the paper's study population: 151
projects distributed over the 8 patterns per Table 2, with per-pattern
birth-month buckets from Fig. 7 and the documented exception projects
injected. Everything is deterministic under one seed.

Generation is two-phase so it parallelizes without losing determinism:
a serial planning pass derives one child seed per project from the
master stream, then each project is realized from its own
``random.Random(child_seed)`` — serially or on ``jobs`` worker
processes, with identical output either way.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.config import StudyConfig

from repro.corpus.ddlgen import realize_history
from repro.corpus.planner import LandmarkPlan
from repro.corpus.profiles import (
    BIRTH_BUCKETS,
    EXCEPTION_KINDS,
    sampler_for,
)
from repro.errors import CorpusError
from repro.history.heartbeat import ActivitySeries
from repro.history.repository import SchemaHistory
from repro.history.sourcecode import synthetic_source_series
from repro.patterns.taxonomy import PAPER_POPULATION, Pattern
from repro.sqlddl.dialect import Dialect

#: Default corpus seed (arbitrary but fixed: every table/figure in
#: EXPERIMENTS.md was produced under this seed).
DEFAULT_SEED = 20250325


@dataclass(frozen=True)
class GeneratedProject:
    """One synthetic project of the corpus.

    Attributes:
        name: unique project name.
        intended_pattern: ground-truth pattern of the landmark plan.
        is_exception: True for the injected near-miss projects.
        exception_kind: which defining clause the plan violates, if any.
        history: the realized DDL commit history.
        source: the co-generated source-code activity series.
        plan: the landmark plan behind the history.
    """

    name: str
    intended_pattern: Pattern
    is_exception: bool
    exception_kind: str | None
    history: SchemaHistory
    source: ActivitySeries
    plan: LandmarkPlan


@dataclass(frozen=True)
class Corpus:
    """The full synthetic study corpus.

    Attributes:
        projects: all generated projects.
        seed: the seed that produced them.
    """

    projects: tuple[GeneratedProject, ...]
    seed: int

    def __len__(self) -> int:
        return len(self.projects)

    def __iter__(self):
        return iter(self.projects)

    def by_pattern(self) -> dict[Pattern, list[GeneratedProject]]:
        """Projects grouped by intended pattern."""
        groups: dict[Pattern, list[GeneratedProject]] = {}
        for project in self.projects:
            groups.setdefault(project.intended_pattern, []).append(project)
        return groups

    def counts(self) -> dict[Pattern, int]:
        """Population per intended pattern."""
        return {p: len(items) for p, items in self.by_pattern().items()}


def _bucket_sequence(pattern: Pattern, count: int,
                     rng: random.Random) -> list[int]:
    """The Fig-7 birth buckets for ``count`` projects of one pattern."""
    quota = list(BIRTH_BUCKETS.get(pattern, (count, 0, 0, 0)))
    sequence: list[int] = []
    for bucket, amount in enumerate(quota):
        sequence.extend([bucket] * amount)
    # Adjust for non-paper population counts (custom studies).
    while len(sequence) < count:
        sequence.append(max(range(4), key=lambda b: quota[b]))
    rng.shuffle(sequence)
    return sequence[:count]


def _dialect_mix(rng: random.Random) -> Dialect:
    """FOSS corpora skew MySQL-heavy; mirror that flavor mix."""
    roll = rng.random()
    if roll < 0.55:
        return Dialect.MYSQL
    if roll < 0.85:
        return Dialect.POSTGRES
    return Dialect.SQLITE


def generate_project(pattern: Pattern, rng: random.Random, name: str,
                     bucket: int, exception_kind: str | None = None,
                     with_noise: bool = False) -> GeneratedProject:
    """Generate one project of the given pattern.

    Raises:
        CorpusError: when the pattern's landmark region cannot be hit
            (should not happen for the shipped samplers).
    """
    plan = sampler_for(pattern).sample(rng, bucket, exception_kind)
    history = realize_history(plan, rng, name, _dialect_mix(rng),
                              with_noise=with_noise)
    source = synthetic_source_series(plan.pup_months, rng)
    return GeneratedProject(
        name=name,
        intended_pattern=pattern,
        is_exception=exception_kind is not None,
        exception_kind=exception_kind,
        history=history,
        source=source,
        plan=plan,
    )


@dataclass(frozen=True)
class ProjectSpec:
    """The serial planning pass's output: everything one worker needs.

    A spec is tiny and picklable, so lazy sources
    (:class:`repro.sources.SyntheticSource`) can ship it to worker
    processes instead of the realized project.
    """

    pattern: Pattern
    name: str
    bucket: int
    exception_kind: str | None
    with_noise: bool
    seed: int


def realize_spec(spec: ProjectSpec) -> GeneratedProject:
    """Realize one planned project from its own child RNG."""
    return generate_project(
        spec.pattern, random.Random(spec.seed), name=spec.name,
        bucket=spec.bucket, exception_kind=spec.exception_kind,
        with_noise=spec.with_noise)


def plan_corpus(seed: int = DEFAULT_SEED,
                population: dict[Pattern, int] | None = None,
                with_exceptions: bool = True,
                with_noise: bool = False) -> list[ProjectSpec]:
    """The serial planning pass: one realization spec per project.

    Raises:
        CorpusError: for negative per-pattern populations.
    """
    rng = random.Random(seed)
    population = dict(population or PAPER_POPULATION)
    specs: list[ProjectSpec] = []
    for pattern, count in population.items():
        if count < 0:
            raise CorpusError(f"negative population for {pattern.value}")
        exceptions = list(EXCEPTION_KINDS.get(pattern, ())) \
            if with_exceptions else []
        exceptions = exceptions[:count]
        buckets = _bucket_sequence(pattern, count, rng)
        slug = pattern.value.lower().replace(" ", "-")
        for index in range(count):
            kind = exceptions[index] if index < len(exceptions) else None
            specs.append(ProjectSpec(
                pattern=pattern, name=f"{slug}-{index + 1:02d}",
                bucket=buckets[index], exception_kind=kind,
                with_noise=with_noise, seed=rng.getrandbits(64)))
    return specs


def generate_corpus(seed: int | None = None,
                    population: dict[Pattern, int] | None = None,
                    with_exceptions: bool = True,
                    with_noise: bool = False,
                    jobs: int | None = None,
                    config: "StudyConfig | None" = None) -> Corpus:
    """Generate the full synthetic corpus.

    Args:
        seed: master seed; the same seed always yields the same corpus,
            whatever ``jobs`` is. Defaults to the config's seed, or
            :data:`DEFAULT_SEED`.
        population: per-pattern project counts; defaults to the paper's
            Table-2 population (151 projects).
        with_exceptions: inject the paper's documented exception projects
            (Table 2); disable for a perfectly definition-clean corpus.
        with_noise: decorate every commit with realistic non-DDL dump
            noise; measurements are unaffected (the robust parser skips
            it), only ``parse_issues`` counters rise.
        jobs: worker processes realizing projects; defaults to the
            config's jobs, or 1 (serial).
        config: a :class:`~repro.engine.config.StudyConfig` supplying
            defaults for ``seed`` and ``jobs``.

    Returns:
        The generated :class:`Corpus`.
    """
    if seed is None:
        seed = config.seed if config is not None else DEFAULT_SEED
    if jobs is None:
        jobs = config.jobs if config is not None else 1
    specs = plan_corpus(seed, population, with_exceptions, with_noise)
    if jobs > 1 and len(specs) > 1:
        chunk = max(1, len(specs) // (jobs * 4))
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            projects = tuple(pool.map(realize_spec, specs,
                                      chunksize=chunk))
    else:
        projects = tuple(realize_spec(spec) for spec in specs)
    return Corpus(projects=projects, seed=seed)
