"""Assembly of the full synthetic corpus.

:func:`generate_corpus` reproduces the paper's study population: 151
projects distributed over the 8 patterns per Table 2, with per-pattern
birth-month buckets from Fig. 7 and the documented exception projects
injected. Everything is deterministic under one seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.corpus.ddlgen import realize_history
from repro.corpus.planner import LandmarkPlan
from repro.corpus.profiles import (
    BIRTH_BUCKETS,
    EXCEPTION_KINDS,
    sampler_for,
)
from repro.errors import CorpusError
from repro.history.heartbeat import ActivitySeries
from repro.history.repository import SchemaHistory
from repro.history.sourcecode import synthetic_source_series
from repro.patterns.taxonomy import PAPER_POPULATION, Pattern
from repro.sqlddl.dialect import Dialect

#: Default corpus seed (arbitrary but fixed: every table/figure in
#: EXPERIMENTS.md was produced under this seed).
DEFAULT_SEED = 20250325


@dataclass(frozen=True)
class GeneratedProject:
    """One synthetic project of the corpus.

    Attributes:
        name: unique project name.
        intended_pattern: ground-truth pattern of the landmark plan.
        is_exception: True for the injected near-miss projects.
        exception_kind: which defining clause the plan violates, if any.
        history: the realized DDL commit history.
        source: the co-generated source-code activity series.
        plan: the landmark plan behind the history.
    """

    name: str
    intended_pattern: Pattern
    is_exception: bool
    exception_kind: str | None
    history: SchemaHistory
    source: ActivitySeries
    plan: LandmarkPlan


@dataclass(frozen=True)
class Corpus:
    """The full synthetic study corpus.

    Attributes:
        projects: all generated projects.
        seed: the seed that produced them.
    """

    projects: tuple[GeneratedProject, ...]
    seed: int

    def __len__(self) -> int:
        return len(self.projects)

    def __iter__(self):
        return iter(self.projects)

    def by_pattern(self) -> dict[Pattern, list[GeneratedProject]]:
        """Projects grouped by intended pattern."""
        groups: dict[Pattern, list[GeneratedProject]] = {}
        for project in self.projects:
            groups.setdefault(project.intended_pattern, []).append(project)
        return groups

    def counts(self) -> dict[Pattern, int]:
        """Population per intended pattern."""
        return {p: len(items) for p, items in self.by_pattern().items()}


def _bucket_sequence(pattern: Pattern, count: int,
                     rng: random.Random) -> list[int]:
    """The Fig-7 birth buckets for ``count`` projects of one pattern."""
    quota = list(BIRTH_BUCKETS.get(pattern, (count, 0, 0, 0)))
    sequence: list[int] = []
    for bucket, amount in enumerate(quota):
        sequence.extend([bucket] * amount)
    # Adjust for non-paper population counts (custom studies).
    while len(sequence) < count:
        sequence.append(max(range(4), key=lambda b: quota[b]))
    rng.shuffle(sequence)
    return sequence[:count]


def _dialect_mix(rng: random.Random) -> Dialect:
    """FOSS corpora skew MySQL-heavy; mirror that flavor mix."""
    roll = rng.random()
    if roll < 0.55:
        return Dialect.MYSQL
    if roll < 0.85:
        return Dialect.POSTGRES
    return Dialect.SQLITE


def generate_project(pattern: Pattern, rng: random.Random, name: str,
                     bucket: int, exception_kind: str | None = None,
                     with_noise: bool = False) -> GeneratedProject:
    """Generate one project of the given pattern.

    Raises:
        CorpusError: when the pattern's landmark region cannot be hit
            (should not happen for the shipped samplers).
    """
    plan = sampler_for(pattern).sample(rng, bucket, exception_kind)
    history = realize_history(plan, rng, name, _dialect_mix(rng),
                              with_noise=with_noise)
    source = synthetic_source_series(plan.pup_months, rng)
    return GeneratedProject(
        name=name,
        intended_pattern=pattern,
        is_exception=exception_kind is not None,
        exception_kind=exception_kind,
        history=history,
        source=source,
        plan=plan,
    )


def generate_corpus(seed: int = DEFAULT_SEED,
                    population: dict[Pattern, int] | None = None,
                    with_exceptions: bool = True,
                    with_noise: bool = False) -> Corpus:
    """Generate the full synthetic corpus.

    Args:
        seed: master seed; the same seed always yields the same corpus.
        population: per-pattern project counts; defaults to the paper's
            Table-2 population (151 projects).
        with_exceptions: inject the paper's documented exception projects
            (Table 2); disable for a perfectly definition-clean corpus.
        with_noise: decorate every commit with realistic non-DDL dump
            noise; measurements are unaffected (the robust parser skips
            it), only ``parse_issues`` counters rise.

    Returns:
        The generated :class:`Corpus`.
    """
    rng = random.Random(seed)
    population = dict(population or PAPER_POPULATION)
    projects: list[GeneratedProject] = []
    for pattern, count in population.items():
        if count < 0:
            raise CorpusError(f"negative population for {pattern.value}")
        exceptions = list(EXCEPTION_KINDS.get(pattern, ())) \
            if with_exceptions else []
        exceptions = exceptions[:count]
        buckets = _bucket_sequence(pattern, count, rng)
        slug = pattern.value.lower().replace(" ", "-")
        for index in range(count):
            kind = exceptions[index] if index < len(exceptions) else None
            projects.append(generate_project(
                pattern, rng, name=f"{slug}-{index + 1:02d}",
                bucket=buckets[index], exception_kind=kind,
                with_noise=with_noise))
    return Corpus(projects=tuple(projects), seed=seed)
