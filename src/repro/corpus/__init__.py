"""Synthetic corpus of schema histories.

The paper studies 151 GitHub-extracted schema histories. Offline, this
package generates a *faithful synthetic stand-in*: for every pattern it
samples a landmark plan (birth month, PUP, activity schedule) inside the
pattern's defining label region — following the paper's per-pattern birth
distribution (Fig. 7), population counts (Table 2) and activity medians
(§6.1) — and then **realizes the plan as real DDL commit histories**, so
the full parse→diff→measure pipeline is exercised end to end.

Entry point::

    from repro.corpus import generate_corpus

    corpus = generate_corpus(seed=7)
    corpus.projects[0].history          # a real SchemaHistory
    corpus.projects[0].intended_pattern # ground truth
"""

from repro.corpus.planner import LandmarkPlan, plan_schedule
from repro.corpus.templates import NamePool, fresh_column_type
from repro.corpus.ddlgen import DdlScribe, realize_history
from repro.corpus.profiles import (
    BIRTH_BUCKETS,
    PatternSampler,
    sampler_for,
)
from repro.corpus.generator import Corpus, GeneratedProject, generate_corpus
from repro.corpus.dataset import load_corpus, save_corpus

__all__ = [
    "BIRTH_BUCKETS",
    "Corpus",
    "DdlScribe",
    "GeneratedProject",
    "LandmarkPlan",
    "NamePool",
    "PatternSampler",
    "fresh_column_type",
    "generate_corpus",
    "load_corpus",
    "plan_schedule",
    "realize_history",
    "sampler_for",
    "save_corpus",
]
