"""Realize a landmark plan as a real DDL commit history.

The :class:`DdlScribe` keeps a synthetic schema state and applies, per
scheduled month, operations worth *exactly* the planned number of
affected attributes; after every active month it snapshots the whole
schema as a full ``.sql`` dump — the commit format of the paper's dataset.

Exactness rules (so the measured diff equals the plan):

* creations worth ``k`` units add a table with ``k`` columns, or inject
  single columns;
* maintenance units eject columns, change types, toggle FK participation
  or drop whole tables — always on material that existed *before* this
  month, and never touching the same attribute twice within one month
  (two touches would collapse into fewer measured events).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime

from repro.corpus.planner import LandmarkPlan
from repro.corpus.templates import (
    changed_type,
    column_name_pool,
    fresh_column_type,
    table_name_pool,
)
from repro.errors import CorpusError
from repro.history.commit import Commit
from repro.history.repository import SchemaHistory
from repro.sqlddl import ast_nodes as ast
from repro.sqlddl.dialect import Dialect
from repro.sqlddl.writer import write_statement


@dataclass
class _ColumnSpec:
    name: str
    data_type: ast.DataType
    not_null: bool = False
    is_pk: bool = False
    fk_target: str | None = None  # table name referenced, or None


@dataclass
class _TableSpec:
    name: str
    columns: list[_ColumnSpec] = field(default_factory=list)
    column_pool: object = None

    def column(self, name: str) -> _ColumnSpec | None:
        for col in self.columns:
            if col.name == name:
                return col
        return None


class DdlScribe:
    """Synthesizes an evolving schema, one month of operations at a time.

    Args:
        rng: seeded random generator.
        dialect: dialect of the emitted SQL text.
    """

    def __init__(self, rng: random.Random,
                 dialect: Dialect = Dialect.GENERIC):
        self._rng = rng
        self._dialect = dialect
        self._tables: dict[str, _TableSpec] = {}
        self._order: list[str] = []
        self._table_pool = table_name_pool(rng)
        # Per-month bookkeeping (reset by begin_month).
        self._preexisting: set[str] = set()
        self._touched: set[tuple[str, str]] = set()
        self._dropped_this_month: set[str] = set()
        self._month_statements: list[ast.Statement] = []

    # ------------------------------------------------------------------
    # month lifecycle

    def begin_month(self) -> None:
        """Start a month: snapshot which material is fair game for
        maintenance operations."""
        self._preexisting = set(self._order)
        self._touched = set()
        self._dropped_this_month = set()
        self._month_statements = []

    def apply_units(self, units: int, maintenance_bias: float,
                    birth: bool = False) -> None:
        """Apply operations worth exactly ``units`` affected attributes.

        Args:
            units: planned attribute units for this month (> 0).
            maintenance_bias: probability mass of maintenance operations.
            birth: True for the birth month (creations only).
        """
        remaining = units
        while remaining > 0:
            do_maintenance = (not birth
                              and self._rng.random() < maintenance_bias)
            spent = 0
            if do_maintenance:
                spent = self._try_maintenance(remaining)
            if spent == 0:
                spent = self._do_expansion(remaining, birth)
            remaining -= spent

    # ------------------------------------------------------------------
    # expansion operations

    def _do_expansion(self, remaining: int, birth: bool) -> int:
        """Add a table or inject a column; returns units spent (>= 1)."""
        add_table = (birth or not self._order
                     or (remaining >= 2 and self._rng.random() < 0.6))
        if add_table:
            size = min(remaining, self._rng.randint(2, 9)) \
                if remaining > 1 else 1
            self._create_table(size)
            return size
        return self._inject_column()

    def _create_table(self, size: int) -> None:
        name = self._table_pool.take()
        spec = _TableSpec(name=name, column_pool=column_name_pool(self._rng))
        spec.columns.append(_ColumnSpec(
            name="id", data_type=ast.DataType("INTEGER"),
            not_null=True, is_pk=True))
        spec.column_pool._used.add("id")
        for _ in range(size - 1):
            spec.columns.append(self._fresh_column(spec))
        self._tables[name] = spec
        self._order.append(name)
        self._month_statements.append(self._render_table(spec))

    def _fresh_column(self, spec: _TableSpec) -> _ColumnSpec:
        col_name = spec.column_pool.take()
        fk_target = None
        # Occasionally make the new column a foreign key to an existing,
        # *pre-existing this month* table (keeps event accounting exact).
        candidates = [t for t in self._order
                      if t != spec.name and t in self._preexisting]
        if candidates and self._rng.random() < 0.15:
            fk_target = self._rng.choice(candidates)
            data_type = ast.DataType("INTEGER")
        else:
            data_type = fresh_column_type(self._rng)
        return _ColumnSpec(name=col_name, data_type=data_type,
                           not_null=self._rng.random() < 0.4,
                           fk_target=fk_target)

    def _inject_column(self) -> int:
        table = self._tables[self._rng.choice(self._order)]
        col = self._fresh_column(table)
        table.columns.append(col)
        self._touched.add((table.name, col.name))
        self._month_statements.append(ast.AlterTable(
            name=table.name,
            actions=(ast.AddColumn(column=self._column_def(col)),)))
        return 1

    # ------------------------------------------------------------------
    # maintenance operations

    def _try_maintenance(self, remaining: int) -> int:
        """Attempt one maintenance op; returns units spent (0 if none
        was possible)."""
        ops = ["eject", "retype", "rekey", "drop_table"]
        self._rng.shuffle(ops)
        for op in ops:
            if op == "drop_table" and remaining >= 1:
                spent = self._drop_table(remaining)
            elif op == "eject":
                spent = self._eject_column()
            elif op == "retype":
                spent = self._retype_column()
            else:
                spent = self._rekey_column()
            if spent:
                return spent
        return 0

    def _maintenance_candidates(self) -> list[_TableSpec]:
        return [self._tables[name] for name in self._order
                if name in self._preexisting]

    def _untouched_columns(self, table: _TableSpec,
                           include_pk: bool = False) -> list[_ColumnSpec]:
        return [c for c in table.columns
                if (include_pk or not c.is_pk)
                and (table.name, c.name) not in self._touched]

    def _eject_column(self) -> int:
        for table in self._shuffled(self._maintenance_candidates()):
            victims = [c for c in self._untouched_columns(table)
                       if not self._is_referenced_column(table.name, c.name)]
            if len(table.columns) > 1 and victims:
                victim = self._rng.choice(victims)
                table.columns.remove(victim)
                self._touched.add((table.name, victim.name))
                self._month_statements.append(ast.AlterTable(
                    name=table.name,
                    actions=(ast.DropColumn(name=victim.name),)))
                # The name is NOT released: re-adding an equally named
                # column later would collapse the eject+inject pair into
                # a single measured event.
                return 1
        return 0

    def _retype_column(self) -> int:
        for table in self._shuffled(self._maintenance_candidates()):
            victims = [c for c in self._untouched_columns(table)
                       if c.fk_target is None]
            if victims:
                victim = self._rng.choice(victims)
                victim.data_type = changed_type(victim.data_type, self._rng)
                self._touched.add((table.name, victim.name))
                self._month_statements.append(ast.AlterTable(
                    name=table.name,
                    actions=(ast.AlterColumnType(
                        name=victim.name,
                        data_type=victim.data_type),)))
                return 1
        return 0

    def _rekey_column(self) -> int:
        """Flip one column's FK participation (add an FK)."""
        # Iterate the ordered list, not the set: set order depends on
        # the interpreter's hash seed and would break cross-process
        # determinism of the corpus.
        targets = [t for t in self._order if t in self._preexisting]
        if not targets:
            return 0
        for table in self._shuffled(self._maintenance_candidates()):
            victims = [c for c in self._untouched_columns(table)
                       if c.fk_target is None
                       and c.data_type.name in ("INTEGER", "BIGINT")]
            choices = [t for t in targets if t != table.name]
            if victims and choices:
                victim = self._rng.choice(victims)
                victim.fk_target = self._rng.choice(choices)
                self._touched.add((table.name, victim.name))
                self._month_statements.append(ast.AlterTable(
                    name=table.name,
                    actions=(ast.AddConstraint(
                        constraint=ast.ForeignKeyConstraint(
                            columns=(victim.name,),
                            ref_table=victim.fk_target,
                            ref_columns=("id",))),)))
                return 1
        return 0

    def _drop_table(self, remaining: int) -> int:
        candidates = [
            table for table in self._maintenance_candidates()
            if len(table.columns) <= remaining
            and len(self._order) > 1
            and not self._is_referenced_table(table.name)
            and not any((table.name, c.name) in self._touched
                        for c in table.columns)
        ]
        if not candidates:
            return 0
        victim = self._rng.choice(candidates)
        size = len(victim.columns)
        del self._tables[victim.name]
        self._order.remove(victim.name)
        self._dropped_this_month.add(victim.name)
        self._month_statements.append(
            ast.DropTable(names=(victim.name,)))
        # Table names are never recycled (see _eject_column).
        return size

    def _is_referenced_table(self, name: str) -> bool:
        return any(col.fk_target == name
                   for table in self._tables.values()
                   for col in table.columns)

    def _is_referenced_column(self, table: str, column: str) -> bool:
        # FKs in this generator always reference the target's "id".
        return column == "id" and self._is_referenced_table(table)

    def _shuffled(self, items: list) -> list:
        items = list(items)
        self._rng.shuffle(items)
        return items

    # ------------------------------------------------------------------
    # snapshotting

    def snapshot_sql(self) -> str:
        """Render the current schema as a full SQL dump."""
        statements = []
        for name in self._order:
            statements.append(self._render_table(self._tables[name]))
        lines = [f"-- synthetic schema dump ({len(self._order)} tables)"]
        lines += [write_statement(s, self._dialect) + ";"
                  for s in statements]
        return "\n\n".join(lines) + "\n"

    def month_sql(self) -> str:
        """Render only this month's statements (migration-script style)."""
        lines = [f"-- migration ({len(self._month_statements)} statements)"]
        lines += [write_statement(s, self._dialect) + ";"
                  for s in self._month_statements]
        return "\n\n".join(lines) + "\n"

    def _column_def(self, col: _ColumnSpec) -> ast.ColumnDef:
        references = None
        if col.fk_target is not None:
            references = ast.ForeignKeyRef(table=col.fk_target,
                                           columns=("id",))
        return ast.ColumnDef(name=col.name, data_type=col.data_type,
                             not_null=col.not_null, references=references)

    def _render_table(self, spec: _TableSpec) -> ast.CreateTable:
        columns = tuple(self._column_def(c) for c in spec.columns)
        pk = tuple(c.name for c in spec.columns if c.is_pk)
        constraints: tuple[ast.TableConstraint, ...] = ()
        if pk:
            constraints = (ast.PrimaryKeyConstraint(columns=pk),)
        return ast.CreateTable(name=spec.name, columns=columns,
                               constraints=constraints)

    @property
    def table_count(self) -> int:
        """Number of live tables."""
        return len(self._order)


def _month_to_date(base_year: int, base_month: int, offset: int,
                   day: int) -> datetime:
    """The ``offset``-th month after (base_year, base_month), on ``day``."""
    total = (base_year * 12 + (base_month - 1)) + offset
    return datetime(total // 12, total % 12 + 1, min(day, 28))


def realize_history(plan: LandmarkPlan, rng: random.Random,
                    project_name: str,
                    dialect: Dialect = Dialect.GENERIC,
                    with_noise: bool = False,
                    commit_style: str = "snapshot") -> SchemaHistory:
    """Turn a landmark plan into a full DDL commit history.

    Args:
        plan: the validated activity plan.
        rng: seeded random generator.
        project_name: name for the resulting history.
        dialect: SQL dialect of the emitted dumps.
        with_noise: decorate every dump with realistic non-DDL noise
            (headers, SETs, INSERTs) that the robust parser must skip.
        commit_style: ``"snapshot"`` (default) — every commit carries the
            whole DDL file, the paper's dataset format; ``"incremental"``
            — every commit carries only the month's migration statements
            and the history materializes versions cumulatively. Both
            styles measure identically (property-tested).

    Returns:
        A :class:`~repro.history.repository.SchemaHistory` whose measured
        heartbeat reproduces the plan's schedule exactly.

    Raises:
        CorpusError: propagated from plan validation.
    """
    if commit_style not in ("snapshot", "incremental"):
        raise CorpusError(f"unknown commit style {commit_style!r}")
    plan.validate()
    base_year = rng.randint(2010, 2021)
    base_month = rng.randint(1, 12)
    scribe = DdlScribe(rng, dialect)
    commits: list[Commit] = []
    for month in sorted(plan.schedule):
        units = plan.schedule[month]
        scribe.begin_month()
        scribe.apply_units(units, plan.maintenance_bias,
                           birth=(month == plan.birth_month))
        timestamp = _month_to_date(base_year, base_month, month,
                                   rng.randint(1, 28))
        ddl_text = (scribe.snapshot_sql()
                    if commit_style == "snapshot"
                    else scribe.month_sql())
        if with_noise:
            import zlib

            from repro.corpus.noise import decorate_dump
            # Independent, stable RNG stream per commit: noise must not
            # consume draws from the main generator, or a noisy corpus
            # would sample different landmarks than its clean twin.
            noise_seed = zlib.crc32(f"{project_name}-{month}".encode())
            ddl_text = decorate_dump(ddl_text, random.Random(noise_seed),
                                     dialect)
        commits.append(Commit(
            sha=f"{project_name}-m{month:03d}",
            timestamp=timestamp,
            ddl_text=ddl_text,
            message=f"schema update in project month {month}",
        ))
    if not commits:
        raise CorpusError("plan produced no commits")
    start = _month_to_date(base_year, base_month, 0, 1)
    end = _month_to_date(base_year, base_month, plan.pup_months - 1, 28)
    return SchemaHistory(project_name, commits, project_start=start,
                         project_end=end, dialect=dialect,
                         incremental=(commit_style == "incremental"))
