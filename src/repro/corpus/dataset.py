"""Persistence of generated corpora as JSON.

The on-disk format keeps everything needed to re-run the study without
re-generating: project metadata, the full DDL commit histories and the
source-code series. Landmark plans are stored too, so tests can verify
measured-vs-planned agreement after a round trip.
"""

from __future__ import annotations

import json
from datetime import datetime
from pathlib import Path

from repro.corpus.generator import Corpus, GeneratedProject
from repro.corpus.planner import LandmarkPlan
from repro.errors import CorpusError
from repro.history.commit import Commit
from repro.history.heartbeat import ActivitySeries
from repro.history.repository import SchemaHistory
from repro.patterns.taxonomy import Pattern
from repro.sqlddl.dialect import Dialect

_FORMAT_VERSION = 1


def project_to_dict(project: GeneratedProject) -> dict:
    """One project as a JSON-serializable dict (the on-disk record)."""
    history = project.history
    return {
        "name": project.name,
        "pattern": project.intended_pattern.value,
        "is_exception": project.is_exception,
        "exception_kind": project.exception_kind,
        "dialect": history.dialect.traits.name,
        "project_start": history.project_start.isoformat(),
        "project_end": history.project_end.isoformat(),
        "commits": [
            {"sha": c.sha, "timestamp": c.timestamp.isoformat(),
             "ddl": c.ddl_text, "message": c.message}
            for c in history.commits
        ],
        "source_monthly": list(project.source.monthly),
        "plan": {
            "pup_months": project.plan.pup_months,
            "birth_month": project.plan.birth_month,
            "top_month": project.plan.top_month,
            "schedule": {str(k): v
                         for k, v in sorted(project.plan.schedule.items())},
            "maintenance_bias": project.plan.maintenance_bias,
        },
    }


def project_from_dict(record: dict) -> GeneratedProject:
    """Rebuild a project from its on-disk record.

    Raises:
        CorpusError: for missing keys or malformed values.
    """
    try:
        commits = [
            Commit(sha=c["sha"],
                   timestamp=datetime.fromisoformat(c["timestamp"]),
                   ddl_text=c["ddl"], message=c.get("message", ""))
            for c in record["commits"]
        ]
        history = SchemaHistory(
            record["name"], commits,
            project_start=datetime.fromisoformat(record["project_start"]),
            project_end=datetime.fromisoformat(record["project_end"]),
            dialect=Dialect.from_name(record["dialect"]),
        )
        plan_rec = record["plan"]
        plan = LandmarkPlan(
            pup_months=plan_rec["pup_months"],
            birth_month=plan_rec["birth_month"],
            top_month=plan_rec["top_month"],
            schedule={int(k): v for k, v in plan_rec["schedule"].items()},
            maintenance_bias=plan_rec["maintenance_bias"],
        )
        return GeneratedProject(
            name=record["name"],
            intended_pattern=Pattern(record["pattern"]),
            is_exception=record["is_exception"],
            exception_kind=record.get("exception_kind"),
            history=history,
            source=ActivitySeries(tuple(record["source_monthly"])),
            plan=plan,
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise CorpusError(f"malformed corpus record: {exc}") from exc


def save_corpus(corpus: Corpus, path: str | Path) -> None:
    """Write a corpus to ``path`` as a single JSON document.

    Raises:
        CorpusError: when the file cannot be written.
    """
    document = {
        "format_version": _FORMAT_VERSION,
        "seed": corpus.seed,
        "projects": [project_to_dict(p) for p in corpus.projects],
    }
    try:
        Path(path).write_text(json.dumps(document))
    except OSError as exc:
        raise CorpusError(f"cannot write corpus {path}: {exc}") from exc


def load_corpus(path: str | Path) -> Corpus:
    """Load a corpus previously written by :func:`save_corpus`.

    Raises:
        CorpusError: for an unreadable file, version mismatch or
            malformed content.
    """
    try:
        document = json.loads(Path(path).read_text())
    except OSError as exc:
        raise CorpusError(f"cannot read corpus {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CorpusError(f"{path}: invalid JSON: {exc}") from exc
    version = document.get("format_version")
    if version != _FORMAT_VERSION:
        raise CorpusError(f"{path}: unsupported corpus format {version!r}")
    projects = tuple(project_from_dict(r) for r in document["projects"])
    return Corpus(projects=projects, seed=document.get("seed", 0))
