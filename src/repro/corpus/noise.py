"""Realistic dump noise for generated histories.

Real ``.sql`` files are full of non-DDL noise: dump headers, SET
statements, INSERTs, LOCK/UNLOCK chatter, trailing comments. The clean
snapshots the scribe emits would under-exercise the robust parser, so
the generator can decorate every commit with deterministic noise that
the pipeline must skip without altering a single measured unit
(property-tested in ``tests/corpus/test_noise.py``).
"""

from __future__ import annotations

import random

from repro.sqlddl.dialect import Dialect

_HEADER_LINES = (
    "-- Dump completed",
    "-- Host: localhost    Database: app",
    "/*!40101 SET NAMES utf8 */;",
    "SET SQL_MODE = \"NO_AUTO_VALUE_ON_ZERO\";",
    "SET time_zone = \"+00:00\";",
    "PRAGMA foreign_keys=OFF;",
    "BEGIN TRANSACTION;",
    "SET statement_timeout = 0;",
    "SET client_encoding = 'UTF8';",
)

_INSERT_TEMPLATES = (
    "INSERT INTO {table} VALUES (1, 'seed row');",
    "INSERT INTO {table} (id) VALUES (42);",
    "INSERT INTO {table} VALUES (7, 'it''s quoted');",
)

_TRAILER_LINES = (
    "COMMIT;",
    "UNLOCK TABLES;",
    "-- Dump completed on 2021-01-01",
    "GRANT SELECT ON app TO readonly;",
)


def decorate_dump(sql: str, rng: random.Random,
                  dialect: Dialect = Dialect.GENERIC) -> str:
    """Wrap a clean DDL dump in realistic non-DDL noise.

    The noise is entirely non-DDL (comments, SETs, INSERTs, transaction
    chatter), so the logical schema — and therefore every measured
    metric — is unchanged.

    Args:
        sql: the clean dump text.
        rng: seeded random generator (determinism is the caller's job).
        dialect: used to avoid MySQL-only noise in other dialects.
    """
    lines: list[str] = []
    header_pool = [l for l in _HEADER_LINES
                   if dialect is Dialect.MYSQL
                   or not l.startswith(("/*!", "SET SQL_MODE"))]
    for _ in range(rng.randint(1, 3)):
        lines.append(rng.choice(header_pool))
    lines.append("")
    lines.append(sql.rstrip())

    # Seed-data INSERTs against a table name that appears in the dump.
    table = _first_table_name(sql)
    if table and rng.random() < 0.7:
        lines.append("")
        for _ in range(rng.randint(1, 3)):
            lines.append(rng.choice(_INSERT_TEMPLATES)
                         .format(table=table))

    lines.append("")
    lines.append(rng.choice(_TRAILER_LINES))
    return "\n".join(lines) + "\n"


def _first_table_name(sql: str) -> str | None:
    """Best-effort extraction of one table name from a clean dump."""
    marker = "CREATE TABLE "
    index = sql.find(marker)
    if index < 0:
        return None
    rest = sql[index + len(marker):]
    name = rest.split(None, 1)[0] if rest.split() else ""
    name = name.strip('`"(')
    return name or None
