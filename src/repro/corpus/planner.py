"""Landmark plans: where activity lands on the month axis.

A :class:`LandmarkPlan` fixes, in exact integer attribute units, how much
schema activity happens in which project month, such that the measured
landmarks (birth volume, top-band month, active growth months) are
guaranteed to hit their targets. :func:`plan_schedule` performs the
integer arithmetic and validates feasibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import CorpusError

#: 90 % threshold mirrored from :mod:`repro.metrics.landmarks`.
_TOP_BAND = 0.9


@dataclass(frozen=True)
class LandmarkPlan:
    """An exact activity plan for one synthetic project.

    Attributes:
        pup_months: project update period (months).
        birth_month: month of the first DDL commit.
        top_month: month at which cumulative activity first reaches 90 %.
        schedule: month -> attribute units; includes the birth month and
            every later active month.
        maintenance_bias: fraction (0..1) of *post-birth* units the DDL
            scribe should realize as maintenance rather than expansion.
    """

    pup_months: int
    birth_month: int
    top_month: int
    schedule: dict[int, int] = field(default_factory=dict)
    maintenance_bias: float = 0.25

    @property
    def total_units(self) -> int:
        """Total attribute units over the whole plan."""
        return sum(self.schedule.values())

    @property
    def birth_units(self) -> int:
        """Units charged to the birth month."""
        return self.schedule.get(self.birth_month, 0)

    @property
    def active_growth_months(self) -> int:
        """Active months strictly between birth and top."""
        return sum(1 for m, v in self.schedule.items()
                   if self.birth_month < m < self.top_month and v > 0)

    def validate(self) -> None:
        """Check internal consistency; raises :class:`CorpusError`."""
        if self.pup_months < 1:
            raise CorpusError("plan needs at least one month")
        if not 0 <= self.birth_month < self.pup_months:
            raise CorpusError(f"birth month {self.birth_month} outside "
                              f"{self.pup_months}-month project")
        if not self.birth_month <= self.top_month < self.pup_months:
            raise CorpusError(f"top month {self.top_month} outside "
                              f"[birth, end)")
        if any(m < self.birth_month or m >= self.pup_months
               for m in self.schedule):
            raise CorpusError("scheduled month outside [birth, end)")
        if any(v <= 0 for v in self.schedule.values()):
            raise CorpusError("scheduled months must carry positive units")
        if self.birth_units < 1:
            raise CorpusError("birth month must carry at least one unit")
        total = self.total_units
        running = 0
        crossed_at = None
        for month in range(self.pup_months):
            running += self.schedule.get(month, 0)
            if crossed_at is None and running >= _TOP_BAND * total - 1e-9:
                crossed_at = month
        if crossed_at != self.top_month:
            raise CorpusError(
                f"plan crosses the top band at month {crossed_at}, "
                f"not the intended {self.top_month}")


def _spread(rng: random.Random, total: int, parts: int,
            cap_per_part: int | None = None) -> list[int]:
    """Split ``total`` into ``parts`` positive integers (random split)."""
    if parts <= 0:
        return []
    if total < parts:
        raise CorpusError(f"cannot split {total} units into {parts} "
                          f"positive parts")
    amounts = [1] * parts
    remainder = total - parts
    for _ in range(remainder):
        index = rng.randrange(parts)
        if cap_per_part is not None and amounts[index] >= cap_per_part:
            index = min(range(parts), key=lambda i: amounts[i])
        amounts[index] += 1
    return amounts


def plan_schedule(rng: random.Random, *, pup_months: int, birth_month: int,
                  top_month: int, birth_units: int, agm: int,
                  post_units: int, tail_months: int = 0,
                  maintenance_bias: float = 0.25) -> LandmarkPlan:
    """Build an exact activity schedule hitting the requested landmarks.

    Args:
        rng: seeded random generator.
        pup_months: project duration in months.
        birth_month: intended schema-birth month.
        top_month: intended top-band attainment month.
        birth_units: attribute units at birth (>= 1).
        agm: intended active growth months (strictly between birth and
            top); requires ``top_month - birth_month >= agm + 1``.
        post_units: units after the birth month (growth + tail).
        tail_months: active months after the top month (their units stay
            under 10 % of the total so the top month keeps its crossing).
        maintenance_bias: passed through to the plan.

    Raises:
        CorpusError: when the request is arithmetically unsatisfiable.
    """
    if birth_units < 1:
        raise CorpusError("birth_units must be >= 1")
    if post_units < 0:
        raise CorpusError("post_units cannot be negative")
    total = birth_units + post_units
    interval = top_month - birth_month

    if interval == 0:
        # Top band at birth: the birth must carry >= 90 % of the total.
        if birth_units < _TOP_BAND * total - 1e-9:
            raise CorpusError(
                f"top-at-birth needs birth_units >= 90% of total "
                f"({birth_units}/{total})")
        if agm != 0:
            raise CorpusError("agm must be 0 when top == birth")
        schedule = {birth_month: birth_units}
        tail_budget = post_units
    else:
        if agm > max(interval - 1, 0):
            raise CorpusError(f"agm {agm} does not fit in a "
                              f"{interval}-month growth interval")
        # Units after the top month must stay strictly under 10 % of the
        # total, otherwise the crossing month moves past top_month.
        max_tail = int((total - _TOP_BAND * total) - 1e-9)
        max_tail = max(min(max_tail, post_units - agm - 1), 0)
        tail_budget = min(max_tail, tail_months * 3) if tail_months else 0
        growth_units = post_units - tail_budget
        if growth_units < agm + 1:
            raise CorpusError(
                f"growth needs at least {agm + 1} units, "
                f"got {growth_units}")
        # Interior months must not cross the band before the top month.
        interior_cap = int(_TOP_BAND * total - 1e-9) - birth_units
        interior_cap = min(interior_cap, growth_units - 1)
        if agm > 0 and interior_cap < agm:
            raise CorpusError(
                f"interior months cannot carry {agm} units without "
                f"crossing the band early")
        interior_sum = rng.randint(agm, interior_cap) if agm > 0 else 0
        top_units = growth_units - interior_sum
        schedule = {birth_month: birth_units, top_month: top_units}
        if agm > 0:
            months = rng.sample(range(birth_month + 1, top_month), agm)
            for month, units in zip(sorted(months),
                                    _spread(rng, interior_sum, agm)):
                schedule[month] = units

    if tail_budget > 0:
        tail_slots = list(range(top_month + 1, pup_months))
        if tail_slots:
            count = min(len(tail_slots), max(tail_months, 1), tail_budget)
            months = rng.sample(tail_slots, count)
            for month, units in zip(sorted(months),
                                    _spread(rng, tail_budget, count)):
                schedule[month] = units

    plan = LandmarkPlan(pup_months=pup_months, birth_month=birth_month,
                        top_month=top_month, schedule=schedule,
                        maintenance_bias=maintenance_bias)
    plan.validate()
    return plan
