"""Per-pattern landmark samplers.

Every sampler draws a :class:`~repro.corpus.planner.LandmarkPlan` inside
its pattern's defining label region, calibrated against the paper:

* population counts per pattern (Table 2),
* the per-pattern distribution of birth months (Fig. 7's four buckets:
  M0, M1–M6, M7–M12, after M12),
* post-birth activity magnitudes (§6.1 medians: Radical Sign ≈ 13,
  Siesta ≈ 17, Quantum Steps ≈ 22, Smoking Funnel ≈ 189, Regularly
  Curated ≈ 250),
* the documented exceptions (Table 2 / §5.2), injected as near-miss
  plans violating exactly one defining clause.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.corpus.planner import LandmarkPlan, plan_schedule
from repro.errors import CorpusError
from repro.patterns.taxonomy import Pattern

#: Fig. 7 — births per bucket (M0, M1–M6, M7–M12, after M12) per pattern.
BIRTH_BUCKETS: dict[Pattern, tuple[int, int, int, int]] = {
    Pattern.FLATLINER: (23, 0, 0, 0),
    Pattern.RADICAL_SIGN: (16, 19, 5, 1),
    Pattern.SIGMOID: (0, 1, 2, 16),
    Pattern.LATE_RISER: (0, 0, 0, 14),
    Pattern.QUANTUM_STEPS: (4, 11, 2, 6),
    Pattern.REGULARLY_CURATED: (3, 4, 3, 4),
    Pattern.SMOKING_FUNNEL: (0, 0, 0, 7),
    Pattern.SIESTA: (6, 3, 1, 0),
}

#: Exception kinds injected per pattern (length matches Table 2 counts).
EXCEPTION_KINDS: dict[Pattern, tuple[str, ...]] = {
    Pattern.SIGMOID: ("early-birth", "early-birth"),
    Pattern.LATE_RISER: ("fair-interval",),
    Pattern.QUANTUM_STEPS: ("late-top", "late-top"),
    Pattern.SIESTA: ("active-growth", "active-growth", "long-interval"),
}

_BUCKET_MONTHS = {0: (0, 0), 1: (1, 6), 2: (7, 12), 3: (13, 240)}
_MAX_TRIES = 4000


def _pick_pup_birth(rng: random.Random, bucket: int, pct_lo: float,
                    pct_hi: float, pup_range: tuple[int, int] = (14, 120),
                    ) -> tuple[int, int]:
    """Sample (pup_months, birth_month) with the birth inside the given
    Fig-7 bucket *and* inside the (pct_lo, pct_hi] timing-class region.

    A pct range of (-1, 0] selects month 0 (the V0 class).

    Raises:
        CorpusError: when no consistent combination exists.
    """
    lo_m, hi_m = _BUCKET_MONTHS[bucket]
    for _ in range(_MAX_TRIES):
        pup = rng.randint(*pup_range)
        months = [m for m in range(lo_m, min(hi_m, pup - 1) + 1)
                  if pct_lo < _pct(m, pup) <= pct_hi
                  or (m == 0 and pct_hi >= 0 >= pct_lo)]
        if pct_lo < 0:  # V0 request
            months = [0] if lo_m == 0 else []
        if months:
            return pup, rng.choice(months)
    raise CorpusError(
        f"no (pup, birth) for bucket {bucket}, pct ({pct_lo}, {pct_hi}], "
        f"pup range {pup_range}")


def _pct(month: int, pup: int) -> float:
    return month / (pup - 1) if pup > 1 else 0.0


def _pick_top(rng: random.Random, pup: int, birth: int,
              top_lo: float, top_hi: float,
              interval_lo: float, interval_hi: float) -> int:
    """Sample a top-band month whose timing class and interval class both
    land in the requested (lo, hi] pct regions.

    An interval range of (-1, 0] selects ``top == birth``.

    Raises:
        CorpusError: when the region is empty.
    """
    if interval_hi <= 0:
        if top_lo < _pct(birth, pup) <= top_hi or (birth == 0 and top_hi >= 0):
            return birth
        raise CorpusError("zero interval incompatible with top class")
    months = [
        m for m in range(birth, pup)
        if (top_lo < _pct(m, pup) <= top_hi)
        and (interval_lo < _pct(m - birth, pup) <= interval_hi)
        and m > birth
    ]
    if not months:
        raise CorpusError(
            f"no top month: pup={pup} birth={birth} "
            f"top ({top_lo}, {top_hi}] interval "
            f"({interval_lo}, {interval_hi}]")
    return rng.choice(months)


def _activity(rng: random.Random, median: int, spread: float = 0.8) -> int:
    """Positive activity magnitude with roughly the requested median.

    Log-normal-ish: ``median * exp(gauss(0, spread))`` rounded, min 1.
    """
    return max(1, round(median * 2.718 ** rng.gauss(0.0, spread)))


def _birth_units_for_fraction(post_units: int, fraction: float) -> int:
    """Birth units B with B / (B + post) ≈ fraction (B >= 1)."""
    if fraction >= 1.0:
        raise CorpusError("use post_units=0 for full birth volume")
    return max(1, round(post_units * fraction / (1.0 - fraction)))


@dataclass(frozen=True)
class PatternSampler:
    """Sampler of landmark plans for one pattern.

    Attributes:
        pattern: the target pattern.
        draw: the sampling function ``(rng, bucket, exception_kind)``.
    """

    pattern: Pattern
    draw: Callable[[random.Random, int, str | None], LandmarkPlan]

    def sample(self, rng: random.Random, bucket: int,
               exception_kind: str | None = None) -> LandmarkPlan:
        """Draw one plan; retries transient geometric dead-ends."""
        last_error: CorpusError | None = None
        for _ in range(60):
            try:
                return self.draw(rng, bucket, exception_kind)
            except CorpusError as exc:
                last_error = exc
        raise CorpusError(
            f"sampler for {self.pattern.value} failed: {last_error}")


# ----------------------------------------------------------------------
# Be Quick or Be Dead


def _draw_flatliner(rng: random.Random, bucket: int,
                    exception_kind: str | None) -> LandmarkPlan:
    """Born at V0 at full volume; occasionally a tiny, very late tail."""
    del bucket, exception_kind  # flatliners: always V0, no exceptions
    pup = rng.randint(14, 120)
    birth_units = rng.randint(4, 70)
    tail = 0
    if rng.random() < 0.2 and birth_units >= 20:
        # Keep birth >= 90 % so the top band stays at V0.
        tail = rng.randint(1, max(1, birth_units // 10 - 1))
    return plan_schedule(rng, pup_months=pup, birth_month=0, top_month=0,
                         birth_units=birth_units, agm=0, post_units=tail,
                         tail_months=1 if tail else 0,
                         maintenance_bias=0.0)


def _draw_radical_sign(rng: random.Random, bucket: int,
                       exception_kind: str | None) -> LandmarkPlan:
    """Born at V0/early, vaults to the top early; §6.1 median ≈ 13."""
    del exception_kind  # Radical Sign has no Table-2 exceptions
    if bucket == 0:
        pup, birth = _pick_pup_birth(rng, 0, -1.0, 0.0)
    else:
        pup_range = (14, 120) if bucket < 3 else (53, 160)
        pup, birth = _pick_pup_birth(rng, bucket, 0.0, 0.25, pup_range)
    if birth > 0 and rng.random() < 0.35:
        # One third of the early-born projects never change after birth
        # (Full birth volume) — the paper's strong at-birth skew.
        post = 0
        birth_units = rng.randint(6, 60)
        top = birth
    else:
        post = _activity(rng, 13)
        fraction = rng.uniform(0.6, 0.88)
        birth_units = _birth_units_for_fraction(post, fraction)
        if birth == 0 or rng.random() < 0.75:
            # Climb: top strictly after birth, still in the early region.
            top = _pick_top(rng, pup, birth, 0.0, 0.25, 0.0, 0.25)
        else:
            # Immediate vault: birth carries >= 90 %.
            birth_units = max(birth_units, 9 * post + 1)
            top = birth
    agm = 0
    interval = top - birth
    if interval >= 2 and rng.random() < 0.4:
        agm = rng.randint(1, min(2, interval - 1))
    return plan_schedule(rng, pup_months=pup, birth_month=birth,
                         top_month=top, birth_units=birth_units, agm=agm,
                         post_units=post, maintenance_bias=0.3)


def _draw_sigmoid(rng: random.Random, bucket: int,
                  exception_kind: str | None) -> LandmarkPlan:
    """Mid-life birth, (almost) immediate freeze."""
    if exception_kind == "early-birth":
        # Violates only the "middle-born" clause: birth early, top just
        # across the middle boundary, interval still zero/soon.
        pup = rng.randint(40, 120)
        birth = max(1, round(rng.uniform(0.18, 0.245) * (pup - 1)))
        top = _pick_top(rng, pup, birth, 0.25, 0.40, 0.0, 0.10)
    else:
        pup_range = (14, 120) if bucket < 3 else (19, 120)
        pup, birth = _pick_pup_birth(rng, bucket, 0.25, 0.70, pup_range)
        if rng.random() < 0.55:
            top = birth
        else:
            top = _pick_top(rng, pup, birth, 0.25, 0.75, 0.0, 0.10)
    post = _activity(rng, 3, spread=0.6)
    if top == birth and rng.random() < 0.5:
        post = 0  # completely frozen after the mid-life jump
    if top == birth:
        birth_units = max(9 * post + 1, rng.randint(8, 60))
    else:
        fraction = rng.uniform(0.55, 0.88)
        birth_units = _birth_units_for_fraction(post, fraction)
    agm = 1 if (top - birth) >= 2 and rng.random() < 0.3 else 0
    return plan_schedule(rng, pup_months=pup, birth_month=birth,
                         top_month=top, birth_units=birth_units, agm=agm,
                         post_units=post, maintenance_bias=0.25)


def _draw_late_riser(rng: random.Random, bucket: int,
                     exception_kind: str | None) -> LandmarkPlan:
    """Late birth, immediate freeze, short tail."""
    pup_range = (18, 120)
    pup, birth = _pick_pup_birth(rng, max(bucket, 3), 0.75, 1.0, pup_range)
    if exception_kind == "fair-interval":
        # Violates only the interval clause: the rise takes "fair" time.
        top = _pick_top(rng, pup, birth, 0.75, 1.0, 0.10, 0.20)
        post = _activity(rng, 6, spread=0.5)
        fraction = rng.uniform(0.55, 0.80)
        birth_units = _birth_units_for_fraction(post, fraction)
        agm = 0
    else:
        post = _activity(rng, 2, spread=0.6) if rng.random() < 0.5 else 0
        if post and rng.random() < 0.5:
            top = _pick_top(rng, pup, birth, 0.75, 1.0, 0.0, 0.10)
            fraction = rng.uniform(0.76, 0.88)
            birth_units = _birth_units_for_fraction(post, fraction)
        else:
            top = birth
            birth_units = max(9 * post + 1, rng.randint(6, 50))
        agm = 0
    return plan_schedule(rng, pup_months=pup, birth_month=birth,
                         top_month=top, birth_units=birth_units, agm=agm,
                         post_units=post, maintenance_bias=0.2)


# ----------------------------------------------------------------------
# Stairway to Heaven


def _draw_quantum_steps(rng: random.Random, bucket: int,
                        exception_kind: str | None) -> LandmarkPlan:
    """Few focused steps between birth and top; §6.1 median ≈ 22."""
    post = _activity(rng, 22, spread=0.7)
    if exception_kind == "late-top":
        # Variant-1 shape whose top lands late (violates only the top
        # class). Birth must be strictly after V0: with birth at month 0
        # a late top would force a VERY_LONG interval (two violations).
        pup, birth = _pick_pup_birth(rng, max(bucket, 1), 0.0, 0.25,
                                     (30, 120))
        top = _pick_top(rng, pup, birth, 0.75, 0.92, 0.35, 0.75)
    elif bucket == 3 and rng.random() < 0.8:
        # Variant 2: middle-born, late top.
        pup, birth = _pick_pup_birth(rng, 3, 0.25, 0.60, (20, 120))
        top = _pick_top(rng, pup, birth, 0.75, 1.0, 0.10, 0.75)
    else:
        # Variant 1: early-born, middle top.
        if bucket == 0:
            pup, birth = _pick_pup_birth(rng, 0, -1.0, 0.0, (20, 120))
        else:
            pup_range = (20, 120) if bucket < 3 else (53, 160)
            pup, birth = _pick_pup_birth(rng, bucket, 0.0, 0.25, pup_range)
        top = _pick_top(rng, pup, birth, 0.25, 0.75, 0.10, 0.75)
    interval = top - birth
    agm = rng.randint(0, min(3, max(interval - 1, 0)))
    fraction = rng.uniform(0.5, 0.85)
    birth_units = _birth_units_for_fraction(post, fraction)
    return plan_schedule(rng, pup_months=pup, birth_month=birth,
                         top_month=top, birth_units=birth_units, agm=agm,
                         post_units=post, maintenance_bias=0.3)


def _draw_regularly_curated(rng: random.Random, bucket: int,
                            exception_kind: str | None) -> LandmarkPlan:
    """Dense, steady curation; §6.1 median ≈ 250."""
    del exception_kind  # no Table-2 exceptions
    post = _activity(rng, 250, spread=0.6)
    if bucket == 3 and rng.random() < 0.75:
        # Variant 2: middle-born, late top, fair/long interval.
        pup, birth = _pick_pup_birth(rng, 3, 0.25, 0.60, (24, 120))
        top = _pick_top(rng, pup, birth, 0.75, 1.0, 0.10, 0.75)
    else:
        # Variant 1: early-born, (very) long climb to a middle/late top.
        if bucket == 0:
            pup, birth = _pick_pup_birth(rng, 0, -1.0, 0.0, (24, 120))
        else:
            pup_range = (24, 120) if bucket < 3 else (53, 160)
            pup, birth = _pick_pup_birth(rng, bucket, 0.0, 0.25, pup_range)
        top = _pick_top(rng, pup, birth, 0.35, 1.0, 0.35, 1.0)
    interval = top - birth
    if interval < 5:
        raise CorpusError("regular curation needs a roomy growth interval")
    agm = rng.randint(4, min(interval - 1, max(6, interval * 2 // 3)))
    fraction = rng.uniform(0.05, 0.5)
    birth_units = _birth_units_for_fraction(post, fraction)
    return plan_schedule(rng, pup_months=pup, birth_month=birth,
                         top_month=top, birth_units=birth_units, agm=agm,
                         post_units=post, tail_months=rng.randint(0, 2),
                         maintenance_bias=0.35)


# ----------------------------------------------------------------------
# Scared to Fall Asleep Again


def _draw_siesta(rng: random.Random, bucket: int,
                 exception_kind: str | None) -> LandmarkPlan:
    """Early birth, very long sleep, late focused changes; median ≈ 17."""
    post = _activity(rng, 17, spread=0.6)
    fraction = rng.uniform(0.3, 0.7)
    if exception_kind == "long-interval":
        # Violates only the interval clause: long, not very long.
        pup = rng.randint(30, 120)
        # Birth strictly after V0 so a (0.70 .. 0.75] interval can still
        # land the top in the late region.
        birth = max(1, round(rng.uniform(0.02, 0.05) * (pup - 1)))
        top = _pick_top(rng, pup, birth, 0.75, 1.0, 0.70, 0.75)
        agm = rng.randint(0, 2)
    else:
        if bucket == 0:
            pup, birth = _pick_pup_birth(rng, 0, -1.0, 0.0, (24, 120))
        else:
            pup, birth = _pick_pup_birth(rng, bucket, 0.0, 0.20, (30, 120))
        top = _pick_top(rng, pup, birth, 0.75, 1.0, 0.75, 1.0)
        if exception_kind == "active-growth":
            # Violates only the AGM clause.
            agm = rng.randint(4, 5)
        else:
            agm = rng.randint(0, min(3, top - birth - 1))
    return plan_schedule(rng, pup_months=pup, birth_month=birth,
                         top_month=top, birth_units=
                         _birth_units_for_fraction(post, fraction),
                         agm=agm, post_units=post, maintenance_bias=0.3)


def _draw_smoking_funnel(rng: random.Random, bucket: int,
                         exception_kind: str | None) -> LandmarkPlan:
    """Mid-life birth, dense change after it; §6.1 median ≈ 189."""
    del exception_kind  # no Table-2 exceptions
    post = _activity(rng, 189, spread=0.5)
    pup, birth = _pick_pup_birth(rng, max(bucket, 3), 0.26, 0.55,
                                 (40, 140))
    top = _pick_top(rng, pup, birth, 0.26, 0.75, 0.10, 0.35)
    interval = top - birth
    if interval < 5:
        raise CorpusError("smoking funnel needs interval >= 5 months")
    agm = rng.randint(4, interval - 1)
    fraction = rng.uniform(0.3, 0.6)
    return plan_schedule(rng, pup_months=pup, birth_month=birth,
                         top_month=top, birth_units=
                         _birth_units_for_fraction(post, fraction),
                         agm=agm, post_units=post,
                         tail_months=rng.randint(1, 3),
                         maintenance_bias=0.35)


_SAMPLERS: dict[Pattern, PatternSampler] = {
    Pattern.FLATLINER: PatternSampler(Pattern.FLATLINER, _draw_flatliner),
    Pattern.RADICAL_SIGN: PatternSampler(Pattern.RADICAL_SIGN,
                                         _draw_radical_sign),
    Pattern.SIGMOID: PatternSampler(Pattern.SIGMOID, _draw_sigmoid),
    Pattern.LATE_RISER: PatternSampler(Pattern.LATE_RISER,
                                       _draw_late_riser),
    Pattern.QUANTUM_STEPS: PatternSampler(Pattern.QUANTUM_STEPS,
                                          _draw_quantum_steps),
    Pattern.REGULARLY_CURATED: PatternSampler(Pattern.REGULARLY_CURATED,
                                              _draw_regularly_curated),
    Pattern.SIESTA: PatternSampler(Pattern.SIESTA, _draw_siesta),
    Pattern.SMOKING_FUNNEL: PatternSampler(Pattern.SMOKING_FUNNEL,
                                           _draw_smoking_funnel),
}


def sampler_for(pattern: Pattern) -> PatternSampler:
    """The landmark sampler of one pattern.

    Raises:
        KeyError: for UNCLASSIFIED.
    """
    return _SAMPLERS[pattern]
