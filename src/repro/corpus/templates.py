"""Vocabulary for synthesized DDL: table names, column names, types.

The generated schemas should *look* like FOSS project schemas, so the
name pools are built from common application-domain nouns. A
:class:`NamePool` hands out unique names deterministically from a seeded
random generator.
"""

from __future__ import annotations

import random

from repro.sqlddl.ast_nodes import DataType

_TABLE_STEMS = (
    "user", "account", "profile", "session", "role", "permission",
    "group", "team", "member", "organization", "project", "task",
    "ticket", "issue", "comment", "message", "thread", "post",
    "article", "page", "revision", "tag", "category", "label",
    "product", "item", "order", "invoice", "payment", "shipment",
    "cart", "customer", "vendor", "supplier", "inventory", "stock",
    "price", "discount", "coupon", "event", "log", "audit",
    "notification", "subscription", "plan", "feature", "setting",
    "config", "preference", "file", "attachment", "image", "document",
    "report", "metric", "counter", "job", "queue", "schedule",
    "calendar", "booking", "reservation", "review", "rating", "vote",
    "friend", "follower", "contact", "address", "location", "region",
    "country", "city", "language", "translation", "currency", "tax",
)

_TABLE_SUFFIXES = ("", "s", "_data", "_info", "_map", "_link", "_history")

_COLUMN_STEMS = (
    "id", "name", "title", "description", "status", "type", "kind",
    "code", "slug", "email", "phone", "url", "path", "body", "content",
    "summary", "note", "value", "amount", "total", "quantity", "count",
    "price", "cost", "rate", "score", "rank", "position", "priority",
    "level", "weight", "size", "length", "width", "height", "color",
    "state", "flag", "active", "enabled", "visible", "deleted",
    "created_at", "updated_at", "deleted_at", "published_at",
    "started_at", "finished_at", "expires_at", "version", "hash",
    "token", "secret", "key", "owner", "author", "creator", "parent",
    "source", "target", "origin", "locale", "timezone", "ip_address",
    "user_agent", "first_name", "last_name", "display_name", "avatar",
    "bio", "website", "company", "department", "street", "zip_code",
)

#: Types the scribe assigns to fresh columns.
_COLUMN_TYPES = (
    DataType("INTEGER"),
    DataType("BIGINT"),
    DataType("SMALLINT"),
    DataType("VARCHAR", ("64",)),
    DataType("VARCHAR", ("128",)),
    DataType("VARCHAR", ("255",)),
    DataType("TEXT"),
    DataType("BOOLEAN"),
    DataType("DATE"),
    DataType("TIMESTAMP"),
    DataType("DECIMAL", ("10", "2")),
    DataType("DOUBLE"),
    DataType("BLOB"),
)

#: Pairs used when a type *change* is needed; each maps a canonical type
#: name to a genuinely different replacement type.
TYPE_CHANGE_TARGETS: dict[str, DataType] = {
    "INTEGER": DataType("BIGINT"),
    "BIGINT": DataType("INTEGER"),
    "SMALLINT": DataType("INTEGER"),
    "VARCHAR": DataType("TEXT"),
    "TEXT": DataType("VARCHAR", ("255",)),
    "BOOLEAN": DataType("SMALLINT"),
    "DATE": DataType("TIMESTAMP"),
    "TIMESTAMP": DataType("DATE"),
    "DECIMAL": DataType("DOUBLE"),
    "DOUBLE": DataType("DECIMAL", ("12", "4")),
    "BLOB": DataType("TEXT"),
}


class NamePool:
    """Deterministic pool of unique identifiers.

    Args:
        rng: seeded random generator.
        stems: base vocabulary.
        suffixes: optional suffixes combined with stems before falling
            back to numbered names.
    """

    def __init__(self, rng: random.Random, stems: tuple[str, ...],
                 suffixes: tuple[str, ...] = ("",)):
        self._rng = rng
        self._stems = stems
        self._suffixes = suffixes
        self._used: set[str] = set()
        self._counter = 0

    def take(self) -> str:
        """Hand out one unused name."""
        for _ in range(24):
            name = (self._rng.choice(self._stems)
                    + self._rng.choice(self._suffixes))
            if name not in self._used:
                self._used.add(name)
                return name
        # Vocabulary exhausted locally: fall back to numbered names.
        while True:
            self._counter += 1
            name = f"{self._rng.choice(self._stems)}_{self._counter}"
            if name not in self._used:
                self._used.add(name)
                return name

    def release(self, name: str) -> None:
        """Return a name to the pool (after a DROP TABLE)."""
        self._used.discard(name)


def table_name_pool(rng: random.Random) -> NamePool:
    """A pool of table names."""
    return NamePool(rng, _TABLE_STEMS, _TABLE_SUFFIXES)


def column_name_pool(rng: random.Random) -> NamePool:
    """A pool of column names (one per table)."""
    return NamePool(rng, _COLUMN_STEMS)


def fresh_column_type(rng: random.Random) -> DataType:
    """A random column type."""
    return rng.choice(_COLUMN_TYPES)


def changed_type(current: DataType | None,
                 rng: random.Random) -> DataType:
    """A type guaranteed to differ canonically from ``current``."""
    if current is None:
        return DataType("INTEGER")
    replacement = TYPE_CHANGE_TARGETS.get(current.name)
    if replacement is not None and replacement != current:
        return replacement
    # Unknown current type: pick any type with a different name.
    while True:
        candidate = fresh_column_type(rng)
        if candidate.name != current.name:
            return candidate
