"""Unit + property tests for the migration generator.

Core property: parsing and applying the generated migration script to
the old schema reproduces the new schema (column order inside surviving
tables excluded, per the documented limitation).
"""

from hypothesis import given, settings, strategies as st

from repro.diff.engine import DiffOptions
from repro.diff.migrate import migration_script, migration_statements
from repro.schema.builder import SchemaBuilder, build_schema
from repro.schema.model import Schema, Table
from repro.sqlddl.parser import parse_script


def schema_of(sql: str) -> Schema:
    return build_schema(parse_script(sql))


def apply_migration(old_sql: str, script_text: str) -> Schema:
    builder = SchemaBuilder()
    builder.apply_script(parse_script(old_sql))
    migration = parse_script(script_text)
    assert not migration.skipped, migration.skipped
    builder.apply_script(migration)
    return builder.snapshot()


def canonical_table(table: Table):
    return (table.name,
            frozenset(table.attributes),
            table.primary_key,
            table.foreign_keys,
            table.unique_keys)


def schemas_equivalent(left: Schema, right: Schema) -> bool:
    """Equality up to attribute order inside tables."""
    if sorted(left.views) != sorted(right.views):
        return False
    left_tables = sorted((canonical_table(t) for t in left.tables),
                         key=lambda item: item[0])
    right_tables = sorted((canonical_table(t) for t in right.tables),
                          key=lambda item: item[0])
    return left_tables == right_tables


class TestMigrationBasics:
    def test_identical_schemas_no_statements(self):
        sql = "CREATE TABLE t (a INT);"
        assert migration_statements(schema_of(sql), schema_of(sql)) == []
        script = migration_script(schema_of(sql), schema_of(sql))
        assert "nothing to do" in script

    def test_create_missing_table(self):
        old = "CREATE TABLE a (x INT);"
        new = old + " CREATE TABLE b (y INT PRIMARY KEY, z TEXT);"
        script = migration_script(schema_of(old), schema_of(new))
        result = apply_migration(old, script)
        assert schemas_equivalent(result, schema_of(new))

    def test_drop_table(self):
        old = "CREATE TABLE a (x INT); CREATE TABLE b (y INT);"
        new = "CREATE TABLE a (x INT);"
        script = migration_script(schema_of(old), schema_of(new))
        assert "DROP TABLE" in script
        assert schemas_equivalent(apply_migration(old, script),
                                  schema_of(new))

    def test_add_and_drop_columns(self):
        old = "CREATE TABLE t (a INT, b TEXT);"
        new = "CREATE TABLE t (a INT, c BOOLEAN NOT NULL);"
        script = migration_script(schema_of(old), schema_of(new))
        assert schemas_equivalent(apply_migration(old, script),
                                  schema_of(new))

    def test_retype_column(self):
        old = "CREATE TABLE t (a INT);"
        new = "CREATE TABLE t (a TEXT);"
        script = migration_script(schema_of(old), schema_of(new))
        assert "TYPE TEXT" in script
        assert schemas_equivalent(apply_migration(old, script),
                                  schema_of(new))

    def test_pk_change(self):
        old = "CREATE TABLE t (a INT PRIMARY KEY, b INT);"
        new = "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b));"
        script = migration_script(schema_of(old), schema_of(new))
        assert schemas_equivalent(apply_migration(old, script),
                                  schema_of(new))

    def test_pk_removed_restores_nullability(self):
        old = "CREATE TABLE t (a INT PRIMARY KEY);"
        new = "CREATE TABLE t (a INT);"
        script = migration_script(schema_of(old), schema_of(new))
        result = apply_migration(old, script)
        assert schemas_equivalent(result, schema_of(new))
        assert not result.table("t").attribute("a").not_null

    def test_fk_change(self):
        old = ("CREATE TABLE u (id INT); "
               "CREATE TABLE t (x INT REFERENCES u (id));")
        new = ("CREATE TABLE u (id INT); CREATE TABLE v (id INT); "
               "CREATE TABLE t (x INT REFERENCES v (id));")
        script = migration_script(schema_of(old), schema_of(new))
        assert schemas_equivalent(apply_migration(old, script),
                                  schema_of(new))

    def test_unique_added(self):
        old = "CREATE TABLE t (a INT);"
        new = "CREATE TABLE t (a INT, UNIQUE (a));"
        script = migration_script(schema_of(old), schema_of(new))
        assert "ADD UNIQUE" in script
        assert schemas_equivalent(apply_migration(old, script),
                                  schema_of(new))

    def test_unique_removed_triggers_rebuild(self):
        old = "CREATE TABLE t (a INT, UNIQUE (a));"
        new = "CREATE TABLE t (a INT);"
        script = migration_script(schema_of(old), schema_of(new))
        assert "DROP TABLE" in script
        assert schemas_equivalent(apply_migration(old, script),
                                  schema_of(new))

    def test_view_changes(self):
        old = "CREATE TABLE t (a INT); CREATE VIEW v AS SELECT a FROM t;"
        new = "CREATE TABLE t (a INT); CREATE VIEW w AS SELECT a FROM t;"
        script = migration_script(schema_of(old), schema_of(new))
        assert schemas_equivalent(apply_migration(old, script),
                                  schema_of(new))

    def test_rename_detection_emits_rename(self):
        old = "CREATE TABLE user (id INT, email TEXT);"
        new = "CREATE TABLE users (id INT, email TEXT);"
        script = migration_script(
            schema_of(old), schema_of(new),
            DiffOptions(detect_renames=True))
        assert "RENAME TO" in script
        assert "DROP TABLE" not in script
        assert schemas_equivalent(apply_migration(old, script),
                                  schema_of(new))


# ----------------------------------------------------------------------
# property test over random schema pairs

_TABLES = ("alpha", "beta", "gamma")
_COLUMNS = ("c1", "c2", "c3")
_TYPES = ("INT", "TEXT", "BOOLEAN")


@st.composite
def random_schema_sql(draw) -> str:
    statements = []
    used_tables = draw(st.lists(st.sampled_from(_TABLES), min_size=0,
                                max_size=3, unique=True))
    for table in used_tables:
        columns = draw(st.lists(st.sampled_from(_COLUMNS), min_size=1,
                                max_size=3, unique=True))
        defs = []
        for column in columns:
            type_name = draw(st.sampled_from(_TYPES))
            suffix = " NOT NULL" if draw(st.booleans()) else ""
            defs.append(f"{column} {type_name}{suffix}")
        if draw(st.booleans()):
            pk = draw(st.sampled_from(columns))
            defs.append(f"PRIMARY KEY ({pk})")
        if draw(st.booleans()):
            unique = draw(st.sampled_from(columns))
            defs.append(f"UNIQUE ({unique})")
        statements.append(
            f"CREATE TABLE {table} ({', '.join(defs)});")
    return "\n".join(statements)


@settings(max_examples=120, deadline=None)
@given(old_sql=random_schema_sql(), new_sql=random_schema_sql())
def test_migration_roundtrip_property(old_sql, new_sql):
    old = schema_of(old_sql)
    new = schema_of(new_sql)
    script = migration_script(old, new)
    result = apply_migration(old_sql, script)
    assert schemas_equivalent(result, new), script
