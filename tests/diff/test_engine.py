"""Unit tests for the schema diff engine."""

from repro.diff.changes import ChangeKind
from repro.diff.engine import DiffOptions, diff_schemas
from repro.schema.builder import build_schema
from repro.schema.model import EMPTY_SCHEMA
from repro.sqlddl.parser import parse_script


def schema_of(sql):
    return build_schema(parse_script(sql))


def diff(old_sql, new_sql, **options):
    return diff_schemas(schema_of(old_sql), schema_of(new_sql),
                        DiffOptions(**options) if options else None)


class TestTableLevel:
    def test_identical_schemas_empty_diff(self):
        sql = "CREATE TABLE t (a INT, b TEXT);"
        assert diff(sql, sql).is_empty

    def test_birth_from_empty(self):
        delta = diff_schemas(EMPTY_SCHEMA,
                             schema_of("CREATE TABLE t (a INT, b INT);"))
        assert delta.total_affected == 2
        assert all(c.kind is ChangeKind.BORN_WITH_TABLE for c in delta)
        assert delta.tables_added == ("t",)

    def test_table_added(self):
        delta = diff("CREATE TABLE a (x INT);",
                     "CREATE TABLE a (x INT); CREATE TABLE b (y INT, z INT);")
        assert delta.tables_added == ("b",)
        assert delta.total_affected == 2

    def test_table_dropped(self):
        delta = diff("CREATE TABLE a (x INT); CREATE TABLE b (y INT);",
                     "CREATE TABLE a (x INT);")
        assert delta.tables_dropped == ("b",)
        assert delta.changes[0].kind is ChangeKind.DELETED_WITH_TABLE

    def test_to_empty(self):
        delta = diff_schemas(schema_of("CREATE TABLE t (a INT);"),
                             EMPTY_SCHEMA)
        assert delta.total_affected == 1
        assert delta.maintenance_count == 1

    def test_deterministic_order(self):
        old = "CREATE TABLE m (x INT);"
        new = ("CREATE TABLE m (x INT); CREATE TABLE b (y INT); "
               "CREATE TABLE a (z INT);")
        delta = diff(old, new)
        assert [c.table for c in delta] == ["a", "b"]


class TestAttributeLevel:
    def test_injected(self):
        delta = diff("CREATE TABLE t (a INT);",
                     "CREATE TABLE t (a INT, b TEXT);")
        assert delta.changes[0].kind is ChangeKind.INJECTED
        assert delta.changes[0].attribute == "b"
        assert delta.expansion_count == 1

    def test_ejected(self):
        delta = diff("CREATE TABLE t (a INT, b TEXT);",
                     "CREATE TABLE t (a INT);")
        assert delta.changes[0].kind is ChangeKind.EJECTED
        assert delta.maintenance_count == 1

    def test_type_changed(self):
        delta = diff("CREATE TABLE t (a INT);",
                     "CREATE TABLE t (a TEXT);")
        assert delta.changes[0].kind is ChangeKind.TYPE_CHANGED
        assert "INTEGER" in delta.changes[0].detail

    def test_type_alias_not_a_change(self):
        delta = diff("CREATE TABLE t (a INT(11));",
                     "CREATE TABLE t (a INTEGER);")
        assert delta.is_empty

    def test_varchar_length_is_type_change(self):
        delta = diff("CREATE TABLE t (a VARCHAR(10));",
                     "CREATE TABLE t (a VARCHAR(20));")
        assert delta.changes[0].kind is ChangeKind.TYPE_CHANGED

    def test_pk_participation_change(self):
        delta = diff("CREATE TABLE t (a INT);",
                     "CREATE TABLE t (a INT PRIMARY KEY);")
        assert delta.changes[0].kind is ChangeKind.KEY_CHANGED

    def test_fk_participation_change(self):
        delta = diff("CREATE TABLE t (u INT);",
                     "CREATE TABLE t (u INT REFERENCES users (id));")
        assert delta.changes[0].kind is ChangeKind.KEY_CHANGED

    def test_type_and_key_both_reported(self):
        delta = diff("CREATE TABLE t (u INT);",
                     "CREATE TABLE t (u BIGINT REFERENCES users (id));")
        kinds = {c.kind for c in delta}
        assert kinds == {ChangeKind.TYPE_CHANGED, ChangeKind.KEY_CHANGED}
        assert delta.total_affected == 2

    def test_nullability_ignored_by_default(self):
        delta = diff("CREATE TABLE t (a INT);",
                     "CREATE TABLE t (a INT NOT NULL);")
        assert delta.is_empty

    def test_nullability_tracked_when_asked(self):
        delta = diff("CREATE TABLE t (a INT);",
                     "CREATE TABLE t (a INT NOT NULL);",
                     track_nullability=True)
        assert delta.changes[0].kind is ChangeKind.TYPE_CHANGED


class TestRenameDetection:
    OLD = "CREATE TABLE users (id INT, email TEXT, name TEXT);"
    NEW = "CREATE TABLE members (id INT, email TEXT, name TEXT);"

    def test_without_detection_mass_change(self):
        delta = diff(self.OLD, self.NEW)
        assert delta.total_affected == 6

    def test_with_detection_no_attribute_change(self):
        delta = diff(self.OLD, self.NEW, detect_renames=True)
        assert delta.total_affected == 0
        assert delta.tables_renamed == (("users", "members"),)
        assert not delta.is_empty  # the rename itself is a change

    def test_rename_plus_column_change(self):
        # Two of four attribute names survive -> Jaccard 0.5; lower the
        # threshold so the rename is still matched.
        new = "CREATE TABLE members (id INT, email TEXT, phone TEXT);"
        delta = diff(self.OLD, new, detect_renames=True,
                     rename_threshold=0.5)
        assert delta.tables_renamed == (("users", "members"),)
        kinds = sorted(c.kind.value for c in delta)
        assert kinds == ["ejected", "injected"]

    def test_dissimilar_tables_not_matched(self):
        new = "CREATE TABLE audit (ts TIMESTAMP, actor TEXT, what TEXT);"
        delta = diff(self.OLD, new, detect_renames=True)
        assert delta.tables_renamed == ()
        assert delta.total_affected == 6

    def test_threshold_tunable(self):
        new = "CREATE TABLE members (id INT, email TEXT, phone TEXT);"
        strict = diff(self.OLD, new, detect_renames=True,
                      rename_threshold=0.99)
        assert strict.tables_renamed == ()


class TestDiffContainer:
    def test_by_kind_includes_zeros(self):
        delta = diff("CREATE TABLE t (a INT);", "CREATE TABLE t (a INT);")
        counts = delta.by_kind()
        assert set(counts) == set(ChangeKind)
        assert all(v == 0 for v in counts.values())

    def test_len_and_iter(self):
        delta = diff("CREATE TABLE t (a INT);",
                     "CREATE TABLE t (a INT, b INT, c INT);")
        assert len(delta) == 2
        assert len(list(delta)) == 2


class TestIdentityFastPath:
    """Reused Table objects (incremental materialization) must diff
    exactly like structurally equal but distinct ones — just faster."""

    def test_identical_objects_yield_empty_diff(self):
        schema = build_schema(parse_script(
            "CREATE TABLE t (a INT, b TEXT);"))
        delta = diff_schemas(schema, schema)
        assert delta.is_empty

    def test_shared_tables_skip_attribute_diffing(self):
        import dataclasses

        old = build_schema(parse_script(
            "CREATE TABLE keep (a INT);CREATE TABLE change (x INT);"))
        new_change = build_schema(parse_script(
            "CREATE TABLE change (x INT, y INT);")).table("change")
        # Version N reuses version N-1's 'keep' Table object verbatim.
        new = dataclasses.replace(
            old, tables=(old.table("keep"), new_change))
        shared = diff_schemas(old, new)
        # Oracle: the same schemas rebuilt from scratch (no sharing).
        rebuilt_old = build_schema(parse_script(
            "CREATE TABLE keep (a INT);CREATE TABLE change (x INT);"))
        rebuilt_new = build_schema(parse_script(
            "CREATE TABLE keep (a INT);"
            "CREATE TABLE change (x INT, y INT);"))
        assert shared == diff_schemas(rebuilt_old, rebuilt_new)
        assert [c.kind for c in shared] == [ChangeKind.INJECTED]
