"""Unit tests for change-breakdown aggregation."""

from repro.diff.changes import ChangeKind
from repro.diff.engine import diff_schemas
from repro.diff.stats import ChangeBreakdown, breakdown, combine_breakdowns
from repro.schema.builder import build_schema
from repro.schema.model import EMPTY_SCHEMA
from repro.sqlddl.parser import parse_script


def schema_of(sql):
    return build_schema(parse_script(sql))


class TestChangeBreakdown:
    def test_empty(self):
        empty = ChangeBreakdown.empty()
        assert empty.total == 0
        assert empty.expansion == 0
        assert empty.maintenance == 0
        assert empty.expansion_fraction == 0.0

    def test_from_counts_partial(self):
        bd = ChangeBreakdown.from_counts({ChangeKind.INJECTED: 3})
        assert bd.total == 3
        assert bd.count(ChangeKind.INJECTED) == 3
        assert bd.count(ChangeKind.EJECTED) == 0

    def test_expansion_maintenance_split(self):
        bd = ChangeBreakdown.from_counts({
            ChangeKind.BORN_WITH_TABLE: 4,
            ChangeKind.INJECTED: 1,
            ChangeKind.EJECTED: 2,
            ChangeKind.TYPE_CHANGED: 3,
        })
        assert bd.expansion == 5
        assert bd.maintenance == 5
        assert bd.expansion_fraction == 0.5

    def test_counts_returns_fresh_dict(self):
        bd = ChangeBreakdown.empty()
        bd.counts[ChangeKind.INJECTED] = 99
        assert bd.count(ChangeKind.INJECTED) == 0


class TestBreakdownOfDiff:
    def test_birth(self):
        delta = diff_schemas(EMPTY_SCHEMA,
                             schema_of("CREATE TABLE t (a INT, b INT);"))
        bd = breakdown(delta)
        assert bd.count(ChangeKind.BORN_WITH_TABLE) == 2
        assert bd.expansion_fraction == 1.0

    def test_mixed_change(self):
        delta = diff_schemas(
            schema_of("CREATE TABLE t (a INT, b INT);"),
            schema_of("CREATE TABLE t (a TEXT, c INT);"))
        bd = breakdown(delta)
        assert bd.count(ChangeKind.INJECTED) == 1   # c
        assert bd.count(ChangeKind.EJECTED) == 1    # b
        assert bd.count(ChangeKind.TYPE_CHANGED) == 1  # a


class TestCombine:
    def test_combine_sums(self):
        a = ChangeBreakdown.from_counts({ChangeKind.INJECTED: 1})
        b = ChangeBreakdown.from_counts({ChangeKind.INJECTED: 2,
                                         ChangeKind.EJECTED: 5})
        combined = combine_breakdowns([a, b])
        assert combined.count(ChangeKind.INJECTED) == 3
        assert combined.count(ChangeKind.EJECTED) == 5

    def test_combine_empty_iterable(self):
        assert combine_breakdowns([]).total == 0
