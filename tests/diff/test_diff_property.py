"""Property-based tests for diff-engine laws.

Random schemas are generated directly as model objects; the laws checked:

* ``diff(s, s)`` is empty;
* diffing against the empty schema counts every attribute exactly once;
* forward adds and backward drops mirror each other;
* total_affected == expansion + maintenance always.
"""

from hypothesis import given, settings, strategies as st

from repro.diff.changes import ChangeKind
from repro.diff.engine import diff_schemas
from repro.schema.model import Attribute, EMPTY_SCHEMA, Schema, Table
from repro.sqlddl.ast_nodes import DataType

names = st.sampled_from(
    ["users", "orders", "items", "tags", "logs", "files", "roles"])
col_names = st.sampled_from(
    ["id", "name", "email", "status", "created", "total", "kind"])
types = st.sampled_from(
    [DataType("INTEGER"), DataType("TEXT"), DataType("BOOLEAN"),
     DataType("VARCHAR", ("64",))])


@st.composite
def tables(draw):
    name = draw(names)
    cols = draw(st.lists(col_names, min_size=1, max_size=5, unique=True))
    attrs = tuple(
        Attribute(name=c, data_type=draw(types),
                  in_primary_key=draw(st.booleans()),
                  in_foreign_key=draw(st.booleans()))
        for c in cols)
    return Table(name=name, attributes=attrs)


@st.composite
def schemas(draw):
    tbls = draw(st.lists(tables(), min_size=0, max_size=5))
    seen = set()
    unique = []
    for table in tbls:
        if table.name not in seen:
            seen.add(table.name)
            unique.append(table)
    return Schema(tables=tuple(unique))


@settings(max_examples=120, deadline=None)
@given(schema=schemas())
def test_self_diff_is_empty(schema):
    assert diff_schemas(schema, schema).is_empty


@settings(max_examples=120, deadline=None)
@given(schema=schemas())
def test_birth_counts_every_attribute(schema):
    delta = diff_schemas(EMPTY_SCHEMA, schema)
    assert delta.total_affected == schema.attribute_count
    assert all(c.kind is ChangeKind.BORN_WITH_TABLE for c in delta)


@settings(max_examples=120, deadline=None)
@given(schema=schemas())
def test_death_counts_every_attribute(schema):
    delta = diff_schemas(schema, EMPTY_SCHEMA)
    assert delta.total_affected == schema.attribute_count
    assert all(c.kind is ChangeKind.DELETED_WITH_TABLE for c in delta)


@settings(max_examples=120, deadline=None)
@given(old=schemas(), new=schemas())
def test_expansion_plus_maintenance_is_total(old, new):
    delta = diff_schemas(old, new)
    assert delta.expansion_count + delta.maintenance_count \
        == delta.total_affected


@settings(max_examples=120, deadline=None)
@given(old=schemas(), new=schemas())
def test_forward_and_backward_mirror(old, new):
    forward = diff_schemas(old, new)
    backward = diff_schemas(new, old)
    assert forward.tables_added == backward.tables_dropped
    assert forward.tables_dropped == backward.tables_added
    fwd = forward.by_kind()
    bwd = backward.by_kind()
    assert fwd[ChangeKind.BORN_WITH_TABLE] \
        == bwd[ChangeKind.DELETED_WITH_TABLE]
    assert fwd[ChangeKind.INJECTED] == bwd[ChangeKind.EJECTED]
    assert fwd[ChangeKind.TYPE_CHANGED] == bwd[ChangeKind.TYPE_CHANGED]
    assert fwd[ChangeKind.KEY_CHANGED] == bwd[ChangeKind.KEY_CHANGED]


@settings(max_examples=120, deadline=None)
@given(old=schemas(), new=schemas())
def test_each_attribute_at_most_once_per_kind(old, new):
    delta = diff_schemas(old, new)
    seen = set()
    for change in delta:
        key = (change.kind, change.table, change.attribute)
        assert key not in seen
        seen.add(key)
