"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import LexError
from repro.sqlddl.dialect import Dialect
from repro.sqlddl.lexer import tokenize
from repro.sqlddl.tokens import TokenType


def kinds(text, dialect=Dialect.GENERIC):
    return [t.type for t in tokenize(text, dialect)[:-1]]


def values(text, dialect=Dialect.GENERIC):
    return [t.value for t in tokenize(text, dialect)[:-1]]


class TestBasicTokens:
    def test_words_and_punct(self):
        tokens = tokenize("CREATE TABLE t (a INT);")
        assert [t.value for t in tokens[:-1]] == [
            "CREATE", "TABLE", "t", "(", "a", "INT", ")", ";"]

    def test_eof_is_last(self):
        assert tokenize("x")[-1].type is TokenType.EOF

    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_whitespace_only(self):
        assert len(tokenize("  \n\t  ")) == 1

    def test_number_integer(self):
        tokens = tokenize("42")
        assert tokens[0].type is TokenType.NUMBER
        assert tokens[0].value == "42"

    def test_number_decimal(self):
        assert tokenize("3.14")[0].value == "3.14"

    def test_number_scientific(self):
        assert tokenize("1e5")[0].value == "1e5"
        assert tokenize("2.5E-3")[0].value == "2.5E-3"

    def test_number_leading_dot(self):
        assert tokenize(".5")[0].value == ".5"

    def test_word_with_underscore_and_digits(self):
        assert tokenize("user_2fa")[0].value == "user_2fa"

    def test_word_with_dollar(self):
        assert tokenize("v$stats")[0].value == "v$stats"

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestStrings:
    def test_simple_string(self):
        token = tokenize("'hello'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "hello"

    def test_doubled_quote_escape(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_backslash_escape(self):
        assert tokenize(r"'a\'b'")[0].value == "a'b"

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops")


class TestQuotedIdentifiers:
    def test_backticks_mysql(self):
        token = tokenize("`my table`", Dialect.MYSQL)[0]
        assert token.type is TokenType.QUOTED_IDENT
        assert token.value == "my table"

    def test_double_quotes(self):
        token = tokenize('"col name"', Dialect.POSTGRES)[0]
        assert token.type is TokenType.QUOTED_IDENT
        assert token.value == "col name"

    def test_doubled_closing_quote(self):
        assert tokenize('"a""b"')[0].value == 'a"b'

    def test_brackets_generic(self):
        token = tokenize("[weird]", Dialect.GENERIC)[0]
        assert token.type is TokenType.QUOTED_IDENT
        assert token.value == "weird"

    def test_backtick_not_identifier_quote_in_postgres(self):
        with pytest.raises(LexError):
            tokenize("`x`", Dialect.POSTGRES)

    def test_unterminated_identifier_raises(self):
        with pytest.raises(LexError):
            tokenize("`oops", Dialect.MYSQL)


class TestComments:
    def test_line_comment(self):
        assert values("a -- comment\nb") == ["a", "b"]

    def test_line_comment_at_eof(self):
        assert values("a -- trailing") == ["a"]

    def test_hash_comment_mysql(self):
        assert values("a # note\nb", Dialect.MYSQL) == ["a", "b"]

    def test_hash_not_comment_in_postgres(self):
        with pytest.raises(LexError):
            tokenize("a # b", Dialect.POSTGRES)

    def test_block_comment(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_nested_star_inside_block(self):
        assert values("a /* * ** */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* oops")

    def test_double_dash_requires_both(self):
        # A single '-' is punctuation, not a comment.
        assert values("a - b") == ["a", "-", "b"]


class TestErrorHandling:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as info:
            tokenize("a \x00 b")
        assert info.value.line == 1

    def test_error_reports_position(self):
        with pytest.raises(LexError) as info:
            tokenize("ab\ncd \x01")
        assert info.value.line == 2
