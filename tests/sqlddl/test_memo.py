"""Statement memo: caching behaviour, fallbacks and counters."""

from repro.sqlddl import Dialect
from repro.sqlddl.ast_nodes import CreateTable
from repro.sqlddl.memo import (
    StatementMemo,
    parse_counters,
    reset_parse_counters,
)
from repro.sqlddl.splitter import split_statements


def segments_of(sql, dialect=Dialect.GENERIC):
    return split_statements(sql, dialect)


def test_memo_caches_by_content_hash():
    memo = StatementMemo()
    (segment,) = segments_of("CREATE TABLE a (x INT);")
    first = memo.parse(segment)
    second = memo.parse(segment)
    assert first is second  # identical entry object, not a re-parse
    assert isinstance(first.statement, CreateTable)
    assert memo.hits == 1
    assert memo.misses == 1


def test_memo_skip_entries_match_parse_script():
    memo = StatementMemo()
    (segment,) = segments_of("INSERT INTO a VALUES (1);")
    entry = memo.parse(segment)
    assert entry.statement is None
    assert entry.skipped is not None
    assert entry.skipped.reason == "non-ddl"


def test_memo_parse_error_entry():
    memo = StatementMemo()
    (segment,) = segments_of("CREATE TABLE (no name;")
    entry = memo.parse(segment)
    assert entry.skipped is not None
    assert entry.skipped.reason == "parse-error"
    assert not entry.fallback


def test_memo_falls_back_on_lex_failure():
    memo = StatementMemo(Dialect.POSTGRES)
    # '#' is not lexable under PostgreSQL: the span cannot be parsed in
    # isolation and the caller must re-run the classic whole-file path.
    (segment,) = segments_of("# notacomment", Dialect.POSTGRES)
    entry = memo.parse(segment)
    assert entry.fallback


def test_counters_aggregate_process_wide():
    reset_parse_counters()
    memo_a, memo_b = StatementMemo(), StatementMemo()
    (segment,) = segments_of("CREATE TABLE a (x INT);")
    memo_a.parse(segment)
    memo_a.parse(segment)
    memo_b.parse(segment)  # separate memo: its own miss
    hits, misses = parse_counters()
    assert (hits, misses) == (1, 2)
    reset_parse_counters()
    assert parse_counters() == (0, 0)
