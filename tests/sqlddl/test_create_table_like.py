"""Unit tests for CREATE TABLE ... LIKE support."""

import pytest

from repro.errors import ParseError
from repro.schema.builder import SchemaBuilder, build_schema
from repro.sqlddl import ast_nodes as ast
from repro.sqlddl.dialect import Dialect
from repro.sqlddl.parser import parse_script, parse_statement
from repro.sqlddl.writer import write_statement


class TestParseLike:
    def test_basic(self):
        stmt = parse_statement("CREATE TABLE b LIKE a")
        assert isinstance(stmt, ast.CreateTableLike)
        assert stmt.name == "b"
        assert stmt.template == "a"

    def test_if_not_exists(self):
        stmt = parse_statement("CREATE TABLE IF NOT EXISTS b LIKE a")
        assert stmt.if_not_exists

    def test_quoted_names(self):
        stmt = parse_statement("CREATE TABLE `b copy` LIKE `a`",
                               Dialect.MYSQL)
        assert stmt.name == "b copy"

    def test_writer_roundtrip(self):
        stmt = parse_statement("CREATE TABLE b LIKE a")
        assert parse_statement(write_statement(stmt)) == stmt

    def test_garbage_after_template_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("CREATE TABLE b LIKE a (x INT)")


class TestBuilderLike:
    def test_clones_structure(self):
        schema = build_schema(parse_script(
            "CREATE TABLE a (id INT PRIMARY KEY, x TEXT, UNIQUE (x));"
            "CREATE TABLE b LIKE a;"))
        clone = schema.table("b")
        assert clone.attribute_names == ("id", "x")
        assert clone.primary_key == ("id",)
        assert clone.unique_keys == (("x",),)

    def test_clone_is_independent(self):
        schema = build_schema(parse_script(
            "CREATE TABLE a (id INT);"
            "CREATE TABLE b LIKE a;"
            "ALTER TABLE b ADD COLUMN extra TEXT;"))
        assert schema.table("a").attribute_names == ("id",)
        assert schema.table("b").attribute_names == ("id", "extra")

    def test_missing_template_lenient(self):
        builder = SchemaBuilder()
        builder.apply_script(parse_script("CREATE TABLE b LIKE ghost;"))
        assert builder.issues
        assert builder.snapshot().table("b") is None

    def test_if_not_exists_skips(self):
        schema = build_schema(parse_script(
            "CREATE TABLE a (id INT); CREATE TABLE b (y TEXT);"
            "CREATE TABLE IF NOT EXISTS b LIKE a;"))
        assert schema.table("b").attribute_names == ("y",)

    def test_diff_counts_clone_as_birth(self):
        from repro.diff.engine import diff_schemas
        old = build_schema(parse_script("CREATE TABLE a (x INT, y INT);"))
        new = build_schema(parse_script(
            "CREATE TABLE a (x INT, y INT); CREATE TABLE b LIKE a;"))
        delta = diff_schemas(old, new)
        assert delta.tables_added == ("b",)
        assert delta.total_affected == 2
