"""Property-based round-trip tests: write(parse(ast)) is the identity.

Random DDL ASTs are generated from a constrained vocabulary, rendered to
SQL, re-parsed, and compared structurally.
"""

from hypothesis import given, settings, strategies as st

from repro.sqlddl import ast_nodes as ast
from repro.sqlddl.dialect import Dialect
from repro.sqlddl.parser import parse_script, parse_statement
from repro.sqlddl.writer import write_script, write_statement

_SAFE_START = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
_SAFE_REST = _SAFE_START + "0123456789"

identifiers = st.text(alphabet=_SAFE_REST, min_size=1, max_size=12).filter(
    lambda s: s[0] in _SAFE_START)

# Identifiers that force quoting (spaces, mixed case, reserved words).
weird_identifiers = st.one_of(
    identifiers,
    st.sampled_from(["my table", "select", "primary", "Key", "1abc",
                     'quo"ted', "back`tick"]),
)

type_names = st.sampled_from([
    "INTEGER", "BIGINT", "SMALLINT", "TEXT", "BOOLEAN", "DATE",
    "TIMESTAMP", "BLOB", "REAL",
])

parameterized_types = st.builds(
    ast.DataType,
    name=st.sampled_from(["VARCHAR", "CHAR", "DECIMAL"]),
    params=st.lists(st.integers(1, 999).map(str), min_size=1,
                    max_size=2).map(tuple),
)

data_types = st.one_of(
    st.builds(ast.DataType, name=type_names),
    parameterized_types,
    st.builds(ast.DataType, name=st.just("INTEGER"),
              unsigned=st.booleans()),
)

defaults = st.one_of(
    st.none(),
    st.integers(-999, 999).map(str),
    st.sampled_from(["NULL", "CURRENT_TIMESTAMP", "'text'", "now()"]),
)

references = st.one_of(
    st.none(),
    st.builds(ast.ForeignKeyRef,
              table=identifiers,
              columns=st.lists(identifiers, min_size=1,
                               max_size=2).map(tuple),
              on_delete=st.sampled_from([None, "CASCADE", "SET NULL",
                                         "RESTRICT", "NO ACTION"]),
              on_update=st.sampled_from([None, "CASCADE"])),
)

column_defs = st.builds(
    ast.ColumnDef,
    name=weird_identifiers,
    data_type=data_types,
    not_null=st.booleans(),
    default=defaults,
    primary_key=st.booleans(),
    unique=st.booleans(),
    auto_increment=st.booleans(),
    references=references,
    comment=st.one_of(st.none(), st.text(
        alphabet="abc xyz'!?", min_size=1, max_size=10)),
)

table_constraints = st.one_of(
    st.builds(ast.PrimaryKeyConstraint,
              columns=st.lists(identifiers, min_size=1,
                               max_size=3).map(tuple),
              name=st.one_of(st.none(), identifiers)),
    st.builds(ast.ForeignKeyConstraint,
              columns=st.lists(identifiers, min_size=1,
                               max_size=2).map(tuple),
              ref_table=identifiers,
              ref_columns=st.lists(identifiers, min_size=0,
                                   max_size=2).map(tuple),
              name=st.one_of(st.none(), identifiers),
              on_delete=st.sampled_from([None, "CASCADE"]),
              on_update=st.sampled_from([None, "SET DEFAULT"])),
    st.builds(ast.UniqueConstraint,
              columns=st.lists(identifiers, min_size=1,
                               max_size=3).map(tuple),
              name=st.one_of(st.none(), identifiers)),
    st.builds(ast.IndexKey,
              columns=st.lists(identifiers, min_size=1,
                               max_size=2).map(tuple),
              name=st.one_of(st.none(), identifiers)),
)

create_tables = st.builds(
    ast.CreateTable,
    name=weird_identifiers,
    columns=st.lists(column_defs, min_size=1, max_size=5).map(tuple),
    constraints=st.lists(table_constraints, min_size=0,
                         max_size=3).map(tuple),
    if_not_exists=st.booleans(),
    temporary=st.booleans(),
)

alter_actions = st.one_of(
    st.builds(ast.AddColumn, column=column_defs,
              position=st.sampled_from([None, "FIRST"])),
    st.builds(ast.DropColumn, name=weird_identifiers,
              if_exists=st.booleans()),
    st.builds(ast.ModifyColumn, column=column_defs),
    st.builds(ast.ChangeColumn, old_name=identifiers,
              column=column_defs),
    st.builds(ast.AlterColumnType, name=identifiers,
              data_type=data_types),
    st.builds(ast.AlterColumnDefault, name=identifiers,
              default=defaults),
    st.builds(ast.AlterColumnNullability, name=identifiers,
              not_null=st.booleans()),
    st.builds(ast.AddConstraint, constraint=table_constraints),
    st.builds(ast.RenameTable, new_name=identifiers),
    st.builds(ast.RenameColumn, old_name=identifiers,
              new_name=identifiers),
)

alter_tables = st.builds(
    ast.AlterTable,
    name=weird_identifiers,
    actions=st.lists(alter_actions, min_size=1, max_size=4).map(tuple),
    if_exists=st.booleans(),
)

drop_tables = st.builds(
    ast.DropTable,
    names=st.lists(weird_identifiers, min_size=1, max_size=3).map(tuple),
    if_exists=st.booleans(),
)

statements = st.one_of(create_tables, alter_tables, drop_tables)


@settings(max_examples=150, deadline=None)
@given(stmt=statements)
def test_statement_roundtrip_generic(stmt):
    rendered = write_statement(stmt, Dialect.GENERIC)
    parsed = parse_statement(rendered, Dialect.GENERIC)
    assert parsed == stmt


@settings(max_examples=80, deadline=None)
@given(stmt=create_tables)
def test_statement_roundtrip_mysql(stmt):
    rendered = write_statement(stmt, Dialect.MYSQL)
    parsed = parse_statement(rendered, Dialect.MYSQL)
    assert parsed == stmt


@settings(max_examples=50, deadline=None)
@given(stmts=st.lists(statements, min_size=0, max_size=5))
def test_script_roundtrip(stmts):
    script = ast.Script(statements=tuple(stmts))
    rendered = write_script(script)
    parsed = parse_script(rendered)
    assert parsed.statements == script.statements
    assert parsed.skipped == ()
