"""Differential tests: regex fast-path lexer vs the classic lexer.

The fast path must be invisible: whenever `_fast_lex` returns a token
list at all, it must be token-for-token identical (type, value, line,
column) to the classic character lexer, and every input it cannot cover
must fall back — including inputs where the classic lexer raises.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LexError
from repro.sqlddl.dialect import Dialect
from repro.sqlddl.lexer import Lexer, _fast_lex, tokenize

DIALECTS = list(Dialect)


def assert_equivalent(text: str, dialect: Dialect = Dialect.GENERIC):
    fast = _fast_lex(text, dialect)
    if fast is None:
        return  # fallback: tokenize() delegates to the classic path
    assert fast == Lexer(text, dialect).tokens()


SAMPLES = [
    "",
    "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(255));",
    "select 1.5e-3, .5, 5., 1.2.3, 1e, 1e+, 0e0e0 from t",
    "-- comment\nCREATE TABLE a (x INT); # maybe-comment\n",
    "/* multi\nline */ ALTER TABLE `we``ird` ADD \"co\"\"l\" INT",
    "[bracket ident] , [unclosed",
    "'it''s' '\\'' 'a\\\\b' 'unterminated",
    "a.b.c a$b _x x$ $tag$body$tag$ $$empty$$ $1",
    "weird chars: \x00 \x1c café ² ABC½DEF",
    "1--2",
    "*/ /* unterminated",
    "line1\nline2 'str\nacross' `id\nacross`\n  end",
]


@pytest.mark.parametrize("dialect", DIALECTS)
@pytest.mark.parametrize("text", SAMPLES)
def test_samples_equivalent(text, dialect):
    assert_equivalent(text, dialect)


@pytest.mark.parametrize("dialect", DIALECTS)
@pytest.mark.parametrize("text", SAMPLES)
def test_tokenize_agrees_with_classic(text, dialect):
    """tokenize() (fast or fallback) == classic, errors included."""
    try:
        classic = Lexer(text, dialect).tokens()
    except LexError as exc:
        with pytest.raises(LexError) as caught:
            tokenize(text, dialect)
        assert str(caught.value) == str(exc)
        return
    assert tokenize(text, dialect) == classic


def test_dollar_quote_falls_back():
    # `$` is outside the master pattern, so dollar quotes take the
    # classic path — and still lex correctly through tokenize().
    text = "SELECT $fn$ body 'with quotes' $fn$"
    assert _fast_lex(text, Dialect.POSTGRES) is None
    values = [t.value for t in tokenize(text, Dialect.POSTGRES)]
    assert " body 'with quotes' " in values


def test_unterminated_block_comment_falls_back():
    assert _fast_lex("/* never closed", Dialect.GENERIC) is None
    with pytest.raises(LexError):
        tokenize("/* never closed", Dialect.GENERIC)


@settings(max_examples=300, deadline=None)
@given(text=st.text(
    alphabet=st.sampled_from(list(
        "abcXYZ_09 \t\n'\"`[]().,;=-+*/\\#$<>!%")),
    max_size=60),
    dialect=st.sampled_from(DIALECTS))
def test_fuzz_equivalent(text, dialect):
    assert_equivalent(text, dialect)


@settings(max_examples=150, deadline=None)
@given(text=st.text(max_size=40), dialect=st.sampled_from(DIALECTS))
def test_fuzz_unicode_equivalent(text, dialect):
    assert_equivalent(text, dialect)
