"""Unit tests for the DDL parser."""

import pytest

from repro.errors import ParseError
from repro.sqlddl import ast_nodes as ast
from repro.sqlddl.dialect import Dialect
from repro.sqlddl.parser import parse_script, parse_statement


class TestCreateTable:
    def test_minimal(self):
        stmt = parse_statement("CREATE TABLE t (a INT)")
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.name == "t"
        assert [c.name for c in stmt.columns] == ["a"]

    def test_trailing_semicolon_ok(self):
        stmt = parse_statement("CREATE TABLE t (a INT);")
        assert stmt.name == "t"

    def test_if_not_exists(self):
        stmt = parse_statement("CREATE TABLE IF NOT EXISTS t (a INT)")
        assert stmt.if_not_exists

    def test_temporary(self):
        stmt = parse_statement("CREATE TEMPORARY TABLE t (a INT)")
        assert stmt.temporary

    def test_schema_qualified_name_keeps_object(self):
        stmt = parse_statement("CREATE TABLE mydb.users (a INT)")
        assert stmt.name == "users"

    def test_quoted_table_and_columns(self):
        stmt = parse_statement('CREATE TABLE "My Table" ("a col" INT)',
                               Dialect.POSTGRES)
        assert stmt.name == "My Table"
        assert stmt.columns[0].name == "a col"

    def test_column_flags(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INT NOT NULL DEFAULT 5 UNIQUE)")
        col = stmt.columns[0]
        assert col.not_null and col.unique
        assert col.default == "5"

    def test_inline_primary_key(self):
        stmt = parse_statement("CREATE TABLE t (id INT PRIMARY KEY)")
        assert stmt.columns[0].primary_key

    def test_auto_increment_mysql(self):
        stmt = parse_statement(
            "CREATE TABLE t (id INT AUTO_INCREMENT)", Dialect.MYSQL)
        assert stmt.columns[0].auto_increment

    def test_serial_implies_auto_increment(self):
        stmt = parse_statement("CREATE TABLE t (id SERIAL)",
                               Dialect.POSTGRES)
        assert stmt.columns[0].auto_increment

    def test_default_string_literal(self):
        stmt = parse_statement("CREATE TABLE t (a VARCHAR(9) "
                               "DEFAULT 'x''y')")
        assert stmt.columns[0].default == "'x''y'"

    def test_default_negative_number(self):
        stmt = parse_statement("CREATE TABLE t (a INT DEFAULT -1)")
        assert stmt.columns[0].default == "-1"

    def test_default_function_call(self):
        stmt = parse_statement(
            "CREATE TABLE t (ts TIMESTAMP DEFAULT now())")
        assert stmt.columns[0].default == "now()"

    def test_default_bare_keyword(self):
        stmt = parse_statement(
            "CREATE TABLE t (ts TIMESTAMP DEFAULT CURRENT_TIMESTAMP)")
        assert stmt.columns[0].default == "CURRENT_TIMESTAMP"

    def test_on_update_current_timestamp(self):
        stmt = parse_statement(
            "CREATE TABLE t (ts TIMESTAMP DEFAULT CURRENT_TIMESTAMP "
            "ON UPDATE CURRENT_TIMESTAMP)", Dialect.MYSQL)
        assert stmt.columns[0].name == "ts"

    def test_column_comment(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INT COMMENT 'the a')", Dialect.MYSQL)
        assert stmt.columns[0].comment == "the a"

    def test_inline_references(self):
        stmt = parse_statement(
            "CREATE TABLE t (u INT REFERENCES users (id) "
            "ON DELETE CASCADE)")
        ref = stmt.columns[0].references
        assert ref.table == "users"
        assert ref.columns == ("id",)
        assert ref.on_delete == "CASCADE"

    def test_references_set_null(self):
        stmt = parse_statement(
            "CREATE TABLE t (u INT REFERENCES users ON DELETE SET NULL)")
        assert stmt.columns[0].references.on_delete == "SET NULL"

    def test_untyped_column_sqlite(self):
        stmt = parse_statement("CREATE TABLE t (a, b)", Dialect.SQLITE)
        assert stmt.columns[0].data_type is None
        assert stmt.columns[1].data_type is None

    def test_generated_identity(self):
        stmt = parse_statement(
            "CREATE TABLE t (id INT GENERATED ALWAYS AS IDENTITY)",
            Dialect.POSTGRES)
        assert stmt.columns[0].auto_increment

    def test_enum_type_params(self):
        stmt = parse_statement(
            "CREATE TABLE t (s ENUM('a', 'b'))", Dialect.MYSQL)
        assert stmt.columns[0].data_type.params == ("'a'", "'b'")

    def test_unsigned(self):
        stmt = parse_statement("CREATE TABLE t (a INT UNSIGNED)",
                               Dialect.MYSQL)
        assert stmt.columns[0].data_type.unsigned


class TestMultiWordTypes:
    def test_double_precision(self):
        stmt = parse_statement("CREATE TABLE t (a DOUBLE PRECISION)")
        assert stmt.columns[0].data_type.name == "DOUBLE PRECISION"

    def test_character_varying(self):
        stmt = parse_statement(
            "CREATE TABLE t (a CHARACTER VARYING(10))")
        dtype = stmt.columns[0].data_type
        assert dtype.name == "CHARACTER VARYING"
        assert dtype.params == ("10",)

    def test_timestamp_with_time_zone(self):
        stmt = parse_statement(
            "CREATE TABLE t (a TIMESTAMP WITH TIME ZONE)")
        assert stmt.columns[0].data_type.name == "TIMESTAMP WITH TIME ZONE"

    def test_timestamp_without_time_zone(self):
        stmt = parse_statement(
            "CREATE TABLE t (a TIMESTAMP WITHOUT TIME ZONE)")
        assert (stmt.columns[0].data_type.name
                == "TIMESTAMP WITHOUT TIME ZONE")


class TestTableConstraints:
    def test_primary_key(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
        pk = stmt.constraints[0]
        assert isinstance(pk, ast.PrimaryKeyConstraint)
        assert pk.columns == ("a", "b")

    def test_named_foreign_key(self):
        stmt = parse_statement(
            "CREATE TABLE t (u INT, CONSTRAINT fk_u FOREIGN KEY (u) "
            "REFERENCES users (id) ON UPDATE RESTRICT)")
        fk = stmt.constraints[0]
        assert isinstance(fk, ast.ForeignKeyConstraint)
        assert fk.name == "fk_u"
        assert fk.on_update == "RESTRICT"

    def test_unique_key_with_name(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INT, UNIQUE KEY uq_a (a))", Dialect.MYSQL)
        uq = stmt.constraints[0]
        assert isinstance(uq, ast.UniqueConstraint)
        assert uq.columns == ("a",)

    def test_check_constraint(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INT, CHECK (a > 0))")
        check = stmt.constraints[0]
        assert isinstance(check, ast.CheckConstraint)
        assert "a" in check.expression

    def test_mysql_key_index(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INT, KEY idx_a (a))", Dialect.MYSQL)
        assert isinstance(stmt.constraints[0], ast.IndexKey)

    def test_key_with_prefix_length(self):
        stmt = parse_statement(
            "CREATE TABLE t (a TEXT, KEY idx (a(20)))", Dialect.MYSQL)
        assert stmt.constraints[0].columns == ("a",)

    def test_fulltext_key(self):
        stmt = parse_statement(
            "CREATE TABLE t (a TEXT, FULLTEXT KEY ft (a))", Dialect.MYSQL)
        assert isinstance(stmt.constraints[0], ast.IndexKey)

    def test_column_named_key_is_not_constraint(self):
        stmt = parse_statement("CREATE TABLE t (key VARCHAR(10))")
        assert stmt.columns[0].name == "key"


class TestTableOptions:
    def test_engine_and_charset(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INT) ENGINE=InnoDB DEFAULT CHARSET=utf8",
            Dialect.MYSQL)
        options = dict(stmt.options)
        assert options["ENGINE"] == "InnoDB"
        assert options["DEFAULT CHARSET"] == "utf8"

    def test_auto_increment_option(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INT) AUTO_INCREMENT=7", Dialect.MYSQL)
        assert dict(stmt.options)["AUTO_INCREMENT"] == "7"

    def test_default_character_set(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INT) DEFAULT CHARACTER SET utf8mb4",
            Dialect.MYSQL)
        assert dict(stmt.options)["DEFAULT CHARACTER SET"] == "utf8mb4"


class TestDrop:
    def test_drop_table(self):
        stmt = parse_statement("DROP TABLE t")
        assert isinstance(stmt, ast.DropTable)
        assert stmt.names == ("t",)

    def test_drop_multiple(self):
        stmt = parse_statement("DROP TABLE IF EXISTS a, b, c")
        assert stmt.names == ("a", "b", "c")
        assert stmt.if_exists

    def test_drop_cascade(self):
        stmt = parse_statement("DROP TABLE t CASCADE")
        assert stmt.names == ("t",)

    def test_drop_index(self):
        stmt = parse_statement("DROP INDEX idx ON t", Dialect.MYSQL)
        assert isinstance(stmt, ast.DropIndex)
        assert stmt.table == "t"


class TestAlterTable:
    def test_add_column(self):
        stmt = parse_statement("ALTER TABLE t ADD COLUMN a INT")
        action = stmt.actions[0]
        assert isinstance(action, ast.AddColumn)
        assert action.column.name == "a"

    def test_add_column_without_keyword(self):
        stmt = parse_statement("ALTER TABLE t ADD a INT")
        assert isinstance(stmt.actions[0], ast.AddColumn)

    def test_add_column_after(self):
        stmt = parse_statement(
            "ALTER TABLE t ADD COLUMN a INT AFTER b", Dialect.MYSQL)
        assert stmt.actions[0].position == "AFTER b"

    def test_add_column_first(self):
        stmt = parse_statement(
            "ALTER TABLE t ADD COLUMN a INT FIRST", Dialect.MYSQL)
        assert stmt.actions[0].position == "FIRST"

    def test_drop_column(self):
        stmt = parse_statement("ALTER TABLE t DROP COLUMN a")
        assert isinstance(stmt.actions[0], ast.DropColumn)

    def test_multiple_actions(self):
        stmt = parse_statement(
            "ALTER TABLE t ADD a INT, DROP COLUMN b, ADD c TEXT")
        assert len(stmt.actions) == 3

    def test_modify_column(self):
        stmt = parse_statement(
            "ALTER TABLE t MODIFY COLUMN a BIGINT NOT NULL",
            Dialect.MYSQL)
        action = stmt.actions[0]
        assert isinstance(action, ast.ModifyColumn)
        assert action.column.data_type.name == "BIGINT"

    def test_change_column(self):
        stmt = parse_statement(
            "ALTER TABLE t CHANGE COLUMN old_a new_a INT", Dialect.MYSQL)
        action = stmt.actions[0]
        assert isinstance(action, ast.ChangeColumn)
        assert action.old_name == "old_a"
        assert action.column.name == "new_a"

    def test_alter_column_type_postgres(self):
        stmt = parse_statement(
            "ALTER TABLE t ALTER COLUMN a TYPE BIGINT", Dialect.POSTGRES)
        action = stmt.actions[0]
        assert isinstance(action, ast.AlterColumnType)
        assert action.data_type.name == "BIGINT"

    def test_alter_column_set_data_type(self):
        stmt = parse_statement(
            "ALTER TABLE t ALTER COLUMN a SET DATA TYPE TEXT",
            Dialect.POSTGRES)
        assert isinstance(stmt.actions[0], ast.AlterColumnType)

    def test_alter_column_set_default(self):
        stmt = parse_statement(
            "ALTER TABLE t ALTER COLUMN a SET DEFAULT 0")
        action = stmt.actions[0]
        assert isinstance(action, ast.AlterColumnDefault)
        assert action.default == "0"

    def test_alter_column_drop_default(self):
        stmt = parse_statement("ALTER TABLE t ALTER COLUMN a DROP DEFAULT")
        assert stmt.actions[0].default is None

    def test_alter_column_set_not_null(self):
        stmt = parse_statement(
            "ALTER TABLE t ALTER COLUMN a SET NOT NULL")
        action = stmt.actions[0]
        assert isinstance(action, ast.AlterColumnNullability)
        assert action.not_null

    def test_add_constraint_foreign_key(self):
        stmt = parse_statement(
            "ALTER TABLE t ADD CONSTRAINT fk FOREIGN KEY (u) "
            "REFERENCES users (id)")
        action = stmt.actions[0]
        assert isinstance(action, ast.AddConstraint)
        assert isinstance(action.constraint, ast.ForeignKeyConstraint)

    def test_add_primary_key(self):
        stmt = parse_statement("ALTER TABLE t ADD PRIMARY KEY (id)")
        assert isinstance(stmt.actions[0].constraint,
                          ast.PrimaryKeyConstraint)

    def test_drop_primary_key(self):
        stmt = parse_statement("ALTER TABLE t DROP PRIMARY KEY",
                               Dialect.MYSQL)
        action = stmt.actions[0]
        assert isinstance(action, ast.DropConstraint)
        assert action.kind == "primary key"

    def test_drop_foreign_key(self):
        stmt = parse_statement("ALTER TABLE t DROP FOREIGN KEY fk_x",
                               Dialect.MYSQL)
        assert stmt.actions[0].kind == "foreign key"
        assert stmt.actions[0].name == "fk_x"

    def test_drop_constraint(self):
        stmt = parse_statement("ALTER TABLE t DROP CONSTRAINT c1")
        assert stmt.actions[0].name == "c1"

    def test_rename_to(self):
        stmt = parse_statement("ALTER TABLE t RENAME TO t2")
        action = stmt.actions[0]
        assert isinstance(action, ast.RenameTable)
        assert action.new_name == "t2"

    def test_rename_column(self):
        stmt = parse_statement("ALTER TABLE t RENAME COLUMN a TO b")
        action = stmt.actions[0]
        assert isinstance(action, ast.RenameColumn)
        assert (action.old_name, action.new_name) == ("a", "b")

    def test_alter_only_postgres(self):
        stmt = parse_statement("ALTER TABLE ONLY t ADD COLUMN a INT",
                               Dialect.POSTGRES)
        assert stmt.name == "t"

    def test_alter_if_exists(self):
        stmt = parse_statement("ALTER TABLE IF EXISTS t ADD a INT")
        assert stmt.if_exists


class TestCreateIndex:
    def test_create_index(self):
        stmt = parse_statement("CREATE INDEX idx ON t (a, b)")
        assert isinstance(stmt, ast.CreateIndex)
        assert stmt.columns == ("a", "b")
        assert not stmt.unique

    def test_create_unique_index(self):
        stmt = parse_statement("CREATE UNIQUE INDEX idx ON t (a)")
        assert stmt.unique

    def test_create_index_using(self):
        stmt = parse_statement("CREATE INDEX idx ON t USING btree (a)",
                               Dialect.POSTGRES)
        assert stmt.columns == ("a",)


class TestErrors:
    def test_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT * FROM t")

    def test_truncated_create(self):
        with pytest.raises(ParseError):
            parse_statement("CREATE TABLE t (a INT")

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_statement("DROP TABLE t garbage here")

    def test_create_without_object(self):
        with pytest.raises(ParseError):
            parse_statement("CREATE TRIGGER trg BEFORE INSERT ON t")


class TestScriptParsing:
    def test_skips_non_ddl(self):
        script = parse_script(
            "SET NAMES utf8; CREATE TABLE t (a INT); "
            "INSERT INTO t VALUES (1);")
        assert len(script.statements) == 1
        assert [s.reason for s in script.skipped] == ["non-ddl", "non-ddl"]

    def test_skips_broken_ddl(self):
        script = parse_script("CREATE TABLE t (a INT; "
                              "CREATE TABLE u (b INT);")
        assert len(script.statements) == 1
        assert script.skipped[0].reason == "parse-error"
        assert script.skipped[0].detail

    def test_raise_mode(self):
        with pytest.raises(ParseError):
            parse_script("CREATE TABLE t (a INT", on_error="raise")

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            parse_script("CREATE TABLE t (a INT);", on_error="wat")

    def test_empty_script(self):
        script = parse_script("")
        assert len(script.statements) == 0
        assert len(script.skipped) == 0

    def test_comments_only(self):
        script = parse_script("-- nothing here\n/* at all */")
        assert len(script) == 0

    def test_lex_error_recorded_in_skip_mode(self):
        script = parse_script("CREATE TABLE t (a INT); \x00")
        assert script.statements == ()
        assert script.skipped[0].reason == "lex-error"

    def test_script_iteration(self):
        script = parse_script("CREATE TABLE a (x INT); "
                              "CREATE TABLE b (y INT);")
        assert [s.name for s in script] == ["a", "b"]

    def test_statements_without_final_semicolon(self):
        script = parse_script("CREATE TABLE t (a INT)")
        assert len(script.statements) == 1
