"""Unit tests for identifier and type normalization."""

from repro.sqlddl.ast_nodes import DataType
from repro.sqlddl.normalize import (
    canonical_type,
    canonical_type_name,
    normalize_identifier,
    types_equal,
)


class TestIdentifiers:
    def test_lowercases(self):
        assert normalize_identifier("Users") == "users"

    def test_strips_whitespace(self):
        assert normalize_identifier("  users ") == "users"

    def test_preserves_inner_content(self):
        assert normalize_identifier("My Table") == "my table"


class TestTypeNames:
    def test_int_alias(self):
        assert canonical_type_name("int") == "INTEGER"
        assert canonical_type_name("INT4") == "INTEGER"

    def test_serial_family(self):
        assert canonical_type_name("SERIAL") == "INTEGER"
        assert canonical_type_name("BIGSERIAL") == "BIGINT"

    def test_character_varying(self):
        assert canonical_type_name("character   varying") == "VARCHAR"

    def test_bool(self):
        assert canonical_type_name("BOOL") == "BOOLEAN"

    def test_unknown_passthrough(self):
        assert canonical_type_name("GEOMETRY") == "GEOMETRY"

    def test_numeric_is_decimal(self):
        assert canonical_type_name("NUMERIC") == "DECIMAL"

    def test_timestamptz(self):
        assert (canonical_type_name("TIMESTAMPTZ")
                == "TIMESTAMP WITH TIME ZONE")


class TestCanonicalType:
    def test_none_passthrough(self):
        assert canonical_type(None) is None

    def test_display_width_stripped(self):
        assert canonical_type(DataType("INT", ("11",))) \
            == DataType("INTEGER")

    def test_varchar_length_kept(self):
        assert canonical_type(DataType("VARCHAR", ("255",))).params \
            == ("255",)

    def test_tinyint1_is_boolean(self):
        assert canonical_type(DataType("TINYINT", ("1",))) \
            == DataType("BOOLEAN")

    def test_tinyint4_stays_tinyint(self):
        assert canonical_type(DataType("TINYINT", ("4",))).name \
            == "TINYINT"

    def test_zerofill_dropped_unsigned_kept(self):
        result = canonical_type(
            DataType("INT", unsigned=True, zerofill=True))
        assert result.unsigned and not result.zerofill


class TestTypesEqual:
    def test_alias_spellings_equal(self):
        assert types_equal(DataType("INT", ("11",)), DataType("INTEGER"))

    def test_different_lengths_not_equal(self):
        assert not types_equal(DataType("VARCHAR", ("10",)),
                               DataType("VARCHAR", ("20",)))

    def test_none_equals_none(self):
        assert types_equal(None, None)

    def test_none_not_equal_typed(self):
        assert not types_equal(None, DataType("INTEGER"))
