"""The raw-text splitter must segment exactly like the token-level split.

Every tricky lexical construct the lexer understands — semicolons inside
strings, quoted identifiers, dollar quotes and comments; dialect-specific
comment syntax; trivia-only spans — is checked both directly (expected
segments) and against the oracle: ``parse_script``'s statement/skip
count over the same input.
"""

import pytest

from repro.sqlddl import Dialect, parse_script, tokenize
from repro.sqlddl.parser import _split_statements
from repro.sqlddl.splitter import Segment, segment_hash, split_statements


def texts(segments: list[Segment]) -> list[str]:
    return [segment.text for segment in segments]


def assert_matches_token_split(sql: str,
                               dialect: Dialect = Dialect.GENERIC) -> None:
    """Segments must correspond 1:1 to the token-level statement groups."""
    segments = split_statements(sql, dialect)
    groups = _split_statements(tokenize(sql, dialect))
    assert len(segments) == len(groups)
    for segment, group in zip(segments, groups):
        own = _split_statements(tokenize(segment.text, dialect))
        assert len(own) == 1
        assert [t.value for t in own[0]] == [t.value for t in group]


def test_plain_statements():
    sql = "CREATE TABLE a (x INT);\nDROP TABLE b;\n"
    segments = split_statements(sql)
    assert texts(segments) == ["CREATE TABLE a (x INT)", "DROP TABLE b"]
    assert_matches_token_split(sql)


def test_trailing_statement_without_semicolon():
    sql = "CREATE TABLE a (x INT);\nDROP TABLE b"
    assert texts(split_statements(sql))[-1] == "DROP TABLE b"
    assert_matches_token_split(sql)


def test_semicolon_inside_string_literal():
    sql = "CREATE TABLE a (x INT DEFAULT 'a;b');DROP TABLE c;"
    segments = split_statements(sql)
    assert len(segments) == 2
    assert "a;b" in segments[0].text
    assert_matches_token_split(sql)


def test_semicolon_inside_escaped_string():
    # Backslash-escaped quote and doubled quote must not close the string.
    sql = r"CREATE TABLE a (x INT DEFAULT 'it\'s;ok');DROP TABLE b;"
    assert len(split_statements(sql)) == 2
    assert_matches_token_split(sql)
    sql2 = "CREATE TABLE a (x INT DEFAULT 'it''s;ok');DROP TABLE b;"
    assert len(split_statements(sql2)) == 2
    assert_matches_token_split(sql2)


@pytest.mark.parametrize("quoted", ['"odd;name"', "`odd;name`", "[odd;name]"])
def test_semicolon_inside_quoted_identifier(quoted):
    sql = f"CREATE TABLE {quoted} (x INT);DROP TABLE b;"
    segments = split_statements(sql)
    assert len(segments) == 2
    assert "odd;name" in segments[0].text
    assert_matches_token_split(sql)


def test_doubled_closing_quote_in_identifier():
    sql = 'CREATE TABLE "a""b;c" (x INT);DROP TABLE d;'
    assert len(split_statements(sql)) == 2
    assert_matches_token_split(sql)


def test_bracket_quote_has_no_doubling():
    # ]] closes the identifier at the first ] — the second ] is punctuation.
    sql = "CREATE TABLE [ab]] (x INT);"
    segments = split_statements(sql)
    assert len(segments) == 1
    assert_matches_token_split(sql)


def test_semicolon_inside_comments():
    sql = ("-- drop; not really\n"
           "CREATE TABLE a (x INT); /* also; not */ DROP TABLE b;")
    segments = split_statements(sql)
    assert len(segments) == 2
    assert_matches_token_split(sql)


def test_comment_only_spans_yield_no_segment():
    sql = "CREATE TABLE a (x INT);\n-- trailing noise\n  /* more */\n"
    segments = split_statements(sql)
    assert texts(segments) == ["CREATE TABLE a (x INT)"]
    assert_matches_token_split(sql)


def test_empty_statements_are_dropped():
    sql = ";;\nCREATE TABLE a (x INT);;\n;"
    segments = split_statements(sql)
    assert len(segments) == 1
    assert_matches_token_split(sql)


def test_hash_comment_is_dialect_specific():
    sql = "CREATE TABLE a (x INT);\n# comment; with semicolon\n"
    # MySQL/generic: '#' starts a comment — the span is trivia-only.
    assert len(split_statements(sql, Dialect.MYSQL)) == 1
    assert len(split_statements(sql, Dialect.GENERIC)) == 1
    # PostgreSQL: '#' is not a comment; the span has content (and would
    # fail tokenization, like the whole file would).
    assert len(split_statements(sql, Dialect.POSTGRES)) == 3


def test_mysql_dialect_ignores_brackets():
    # '[' is not a MySQL identifier quote: the ';' inside must split.
    sql = "CREATE TABLE [a (x INT);] DROP;"
    assert len(split_statements(sql, Dialect.MYSQL)) == 2
    assert len(split_statements(sql, Dialect.GENERIC)) == 1


def test_semicolon_inside_dollar_quote():
    sql = "CREATE TABLE a (x INT DEFAULT $$v;w$$);DROP TABLE b;"
    segments = split_statements(sql, Dialect.POSTGRES)
    assert len(segments) == 2
    assert_matches_token_split(sql, Dialect.POSTGRES)


def test_semicolon_inside_tagged_dollar_quote():
    sql = "CREATE TABLE a (x INT DEFAULT $tag$ ; $notyet$ ; $tag$);END;"
    segments = split_statements(sql, Dialect.POSTGRES)
    assert len(segments) == 2
    assert_matches_token_split(sql, Dialect.POSTGRES)


def test_dollar_inside_word_is_not_a_quote():
    # The lexer folds a$b$ into one word; the ';' must still split.
    sql = "CREATE TABLE a$b$ (x INT);DROP TABLE c;"
    segments = split_statements(sql)
    assert len(segments) == 2
    assert_matches_token_split(sql)


def test_lone_dollar_is_punctuation():
    sql = "CREATE TABLE a (x INT); $ DROP TABLE b;"
    segments = split_statements(sql)
    assert len(segments) == 2
    assert_matches_token_split(sql)


def test_unterminated_string_swallows_rest():
    sql = "CREATE TABLE a (x INT);SELECT 'open... ; DROP TABLE b;"
    segments = split_statements(sql)
    # The open literal swallows both semicolons after it.
    assert len(segments) == 2
    assert segments[1].text.startswith("SELECT")


def test_unterminated_block_comment_keeps_span_content():
    # The whole-file lexer raises on this input; the splitter must emit
    # a content-bearing segment so per-segment lexing fails the same way.
    sql = "CREATE TABLE a (x INT); /* open comment ; ;"
    segments = split_statements(sql)
    assert len(segments) == 2
    with pytest.raises(Exception):
        tokenize(segments[1].text)


def test_statements_across_newlines_and_indentation():
    sql = """
    CREATE TABLE t (
        id INT,      -- key; primary
        name VARCHAR(40)
    );

    ALTER TABLE t ADD COLUMN extra INT;
    """
    segments = split_statements(sql)
    assert len(segments) == 2
    assert_matches_token_split(sql)


def test_segment_count_matches_parse_script():
    sql = ("CREATE TABLE a (x INT);"
           "INSERT INTO a VALUES (1);"  # non-DDL: skipped, still a segment
           "DROP TABLE a;")
    segments = split_statements(sql)
    script = parse_script(sql)
    assert len(segments) == len(script.statements) + len(script.skipped)


def test_hashes_are_content_addressed():
    first = split_statements("CREATE TABLE a (x INT);")[0]
    again = split_statements("  CREATE TABLE a (x INT)  ;  ")[0]
    other = split_statements("CREATE TABLE a (y INT);")[0]
    assert first.content_hash == again.content_hash  # stripped spans
    assert first.content_hash != other.content_hash
    assert first.content_hash == segment_hash(first.text)
