"""Unit tests for dialect traits, the token model and the error types."""

import pytest

from repro import errors
from repro.sqlddl.dialect import (
    ALL_AUTOINCREMENT_WORDS,
    ALL_SERIAL_TYPES,
    Dialect,
)
from repro.sqlddl.tokens import Token, TokenType


class TestDialect:
    def test_from_name(self):
        assert Dialect.from_name("mysql") is Dialect.MYSQL
        assert Dialect.from_name("POSTGRES") is Dialect.POSTGRES

    def test_from_name_unknown(self):
        with pytest.raises(KeyError):
            Dialect.from_name("oracle")

    def test_traits_shape(self):
        for dialect in Dialect:
            traits = dialect.traits
            assert traits.name
            assert traits.identifier_quotes
            assert traits.default_quote in ('"', "`")

    def test_mysql_quirks(self):
        traits = Dialect.MYSQL.traits
        assert "`" in traits.identifier_quotes
        assert traits.hash_comments
        assert "AUTO_INCREMENT" in traits.autoincrement_words

    def test_postgres_quirks(self):
        traits = Dialect.POSTGRES.traits
        assert not traits.hash_comments
        assert "SERIAL" in traits.serial_types

    def test_aggregated_word_sets(self):
        assert "AUTO_INCREMENT" in ALL_AUTOINCREMENT_WORDS
        assert "AUTOINCREMENT" in ALL_AUTOINCREMENT_WORDS
        assert "SERIAL" in ALL_SERIAL_TYPES


class TestToken:
    def test_is_word_case_insensitive(self):
        token = Token(TokenType.WORD, "create")
        assert token.is_word("CREATE")
        assert not token.is_word("DROP")

    def test_is_word_only_for_words(self):
        token = Token(TokenType.STRING, "CREATE")
        assert not token.is_word("CREATE")

    def test_is_punct(self):
        assert Token(TokenType.PUNCT, ";").is_punct(";")
        assert not Token(TokenType.PUNCT, ",").is_punct(";")

    def test_describe(self):
        assert "word" in Token(TokenType.WORD, "x").describe()
        assert Token(TokenType.EOF, "").describe() == "end of input"

    def test_upper(self):
        assert Token(TokenType.WORD, "select").upper() == "SELECT"


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in ("LexError", "ParseError", "SchemaError",
                     "HistoryError", "MetricError", "LabelError",
                     "ClassificationError", "CorpusError",
                     "AnalysisError"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_lex_error_carries_position(self):
        error = errors.LexError("bad", line=3, column=7)
        assert error.line == 3
        assert error.column == 7
        assert "line 3" in str(error)

    def test_parse_error_statement_offset(self):
        error = errors.ParseError("bad", 1, 2, statement_start=10)
        assert error.statement_start == 10
