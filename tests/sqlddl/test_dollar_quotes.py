"""Unit tests for PostgreSQL dollar-quoted string lexing."""

import pytest

from repro.errors import LexError
from repro.sqlddl.dialect import Dialect
from repro.sqlddl.lexer import tokenize
from repro.sqlddl.parser import parse_script
from repro.sqlddl.tokens import TokenType


class TestDollarQuotes:
    def test_plain_dollar_dollar(self):
        tokens = tokenize("$$hello world$$", Dialect.POSTGRES)
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "hello world"

    def test_tagged(self):
        tokens = tokenize("$fn$ SELECT 'x'; $fn$", Dialect.POSTGRES)
        assert tokens[0].type is TokenType.STRING
        assert "SELECT 'x';" in tokens[0].value

    def test_inner_dollars_kept(self):
        tokens = tokenize("$a$cost is $5$a$", Dialect.POSTGRES)
        assert tokens[0].value == "cost is $5"

    def test_multiline_body(self):
        tokens = tokenize("$$line1\nline2$$")
        assert tokens[0].value == "line1\nline2"

    def test_unterminated_raises(self):
        with pytest.raises(LexError):
            tokenize("$$oops")

    def test_bare_dollar_still_punct(self):
        tokens = tokenize("a $ b")
        assert tokens[1].type is TokenType.PUNCT
        assert tokens[1].value == "$"

    def test_dollar_in_identifier_unaffected(self):
        tokens = tokenize("v$stats")
        assert tokens[0].value == "v$stats"

    def test_function_body_in_dump_skipped_cleanly(self):
        dump = """
        CREATE TABLE t (a INT);
        CREATE FUNCTION f() RETURNS trigger AS $body$
          BEGIN
            INSERT INTO log VALUES (now());
            RETURN NEW;
          END;
        $body$ LANGUAGE plpgsql;
        CREATE TABLE u (b INT);
        """
        script = parse_script(dump, Dialect.POSTGRES)
        assert [s.name for s in script.statements
                if hasattr(s, "name")] == ["t", "u"]
        assert any(s.reason == "non-ddl" for s in script.skipped)
