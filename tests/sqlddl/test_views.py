"""Unit tests for view support across parser, writer, builder, diff."""

import pytest

from repro.diff.engine import diff_schemas
from repro.errors import ParseError
from repro.schema.builder import SchemaBuilder, build_schema
from repro.sqlddl import ast_nodes as ast
from repro.sqlddl.parser import parse_script, parse_statement
from repro.sqlddl.writer import write_statement


class TestParseViews:
    def test_create_view(self):
        stmt = parse_statement(
            "CREATE VIEW v AS SELECT id, email FROM users")
        assert isinstance(stmt, ast.CreateView)
        assert stmt.name == "v"
        assert "SELECT" in stmt.query
        assert "users" in stmt.query

    def test_or_replace(self):
        stmt = parse_statement("CREATE OR REPLACE VIEW v AS SELECT 1")
        assert stmt.or_replace

    def test_view_with_column_list(self):
        stmt = parse_statement(
            "CREATE VIEW v (a, b) AS SELECT x, y FROM t")
        assert stmt.columns == ("a", "b")

    def test_drop_view(self):
        stmt = parse_statement("DROP VIEW IF EXISTS v1, v2")
        assert isinstance(stmt, ast.DropView)
        assert stmt.names == ("v1", "v2")
        assert stmt.if_exists

    def test_or_without_replace_fails(self):
        with pytest.raises(ParseError):
            parse_statement("CREATE OR VIEW v AS SELECT 1")

    def test_view_in_script(self):
        script = parse_script(
            "CREATE TABLE t (a INT);"
            "CREATE VIEW v AS SELECT a FROM t WHERE a > 0;"
            "DROP VIEW v;")
        assert len(script.statements) == 3
        assert not script.skipped


class TestWriteViews:
    def test_roundtrip_create_view(self):
        stmt = parse_statement(
            "CREATE OR REPLACE VIEW v (a) AS SELECT x FROM t")
        rendered = write_statement(stmt)
        again = parse_statement(rendered)
        assert again.name == stmt.name
        assert again.columns == stmt.columns
        assert again.or_replace == stmt.or_replace

    def test_roundtrip_drop_view(self):
        stmt = parse_statement("DROP VIEW IF EXISTS a, b")
        assert parse_statement(write_statement(stmt)) == stmt


class TestBuilderViews:
    def test_views_in_snapshot(self):
        schema = build_schema(parse_script(
            "CREATE TABLE t (a INT);"
            "CREATE VIEW V_Top AS SELECT a FROM t;"))
        assert schema.views == ("v_top",)

    def test_drop_view_removes(self):
        schema = build_schema(parse_script(
            "CREATE VIEW v AS SELECT 1; DROP VIEW v;"))
        assert schema.views == ()

    def test_or_replace_no_duplicate(self):
        schema = build_schema(parse_script(
            "CREATE VIEW v AS SELECT 1;"
            "CREATE OR REPLACE VIEW v AS SELECT 2;"))
        assert schema.views == ("v",)

    def test_duplicate_view_lenient(self):
        builder = SchemaBuilder()
        builder.apply_script(parse_script(
            "CREATE VIEW v AS SELECT 1; CREATE VIEW v AS SELECT 2;"))
        assert builder.issues

    def test_drop_missing_view_lenient(self):
        builder = SchemaBuilder()
        builder.apply_script(parse_script("DROP VIEW ghost;"))
        assert builder.issues


class TestDiffViews:
    def test_view_changes_reported_but_not_counted(self):
        old = build_schema(parse_script("CREATE TABLE t (a INT);"))
        new = build_schema(parse_script(
            "CREATE TABLE t (a INT);"
            "CREATE VIEW v AS SELECT a FROM t;"))
        delta = diff_schemas(old, new)
        assert delta.views_added == ("v",)
        assert delta.total_affected == 0  # attribute unit untouched

    def test_view_dropped(self):
        old = build_schema(parse_script(
            "CREATE VIEW v AS SELECT 1;"))
        new = build_schema(parse_script("CREATE TABLE t (a INT);"))
        delta = diff_schemas(old, new)
        assert delta.views_dropped == ("v",)
