"""Unit tests for the SQL writer (rendering + targeted round trips)."""

import pytest

from repro.sqlddl import ast_nodes as ast
from repro.sqlddl.dialect import Dialect
from repro.sqlddl.parser import parse_statement
from repro.sqlddl.writer import (
    quote_identifier,
    write_script,
    write_statement,
)


def roundtrip(sql: str, dialect: Dialect = Dialect.GENERIC):
    """parse -> write -> parse; returns (first AST, re-parsed AST)."""
    first = parse_statement(sql, dialect)
    rendered = write_statement(first, dialect)
    second = parse_statement(rendered, dialect)
    return first, second


class TestQuoting:
    def test_safe_name_unquoted(self):
        assert quote_identifier("users") == "users"

    def test_space_quoted(self):
        assert quote_identifier("my table") == '"my table"'

    def test_leading_digit_quoted(self):
        assert quote_identifier("1st") == '"1st"'

    def test_reserved_word_quoted(self):
        assert quote_identifier("key") == '"key"'
        assert quote_identifier("primary") == '"primary"'

    def test_mysql_backtick(self):
        assert quote_identifier("my table", Dialect.MYSQL) == "`my table`"

    def test_embedded_quote_doubled(self):
        assert quote_identifier('a"b') == '"a""b"'

    def test_empty_name_quoted(self):
        assert quote_identifier("") == '""'


class TestStatementRendering:
    def test_create_contains_all_columns(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INT NOT NULL, b TEXT DEFAULT 'x', "
            "PRIMARY KEY (a))")
        out = write_statement(stmt)
        assert "a INTEGER" not in out  # writer preserves spelling
        assert "a INT NOT NULL" in out
        assert "PRIMARY KEY (a)" in out

    def test_drop_if_exists(self):
        stmt = ast.DropTable(names=("a", "b"), if_exists=True)
        assert write_statement(stmt) == "DROP TABLE IF EXISTS a, b"

    def test_alter_multiple_actions(self):
        stmt = parse_statement(
            "ALTER TABLE t ADD a INT, DROP COLUMN b")
        out = write_statement(stmt)
        assert "ADD COLUMN a INT" in out
        assert "DROP COLUMN b" in out

    def test_unknown_statement_type_raises(self):
        with pytest.raises(TypeError):
            write_statement("not a statement")  # type: ignore[arg-type]

    def test_script_rendering_ends_with_newline(self):
        stmt = parse_statement("CREATE TABLE t (a INT)")
        script = ast.Script(statements=(stmt,))
        out = write_script(script)
        assert out.endswith(";\n")

    def test_empty_script(self):
        assert write_script(ast.Script(statements=())) == ""


class TestRoundTrips:
    CASES = [
        "CREATE TABLE t (a INT)",
        "CREATE TABLE t (a INT NOT NULL DEFAULT 0)",
        "CREATE TABLE IF NOT EXISTS t (a VARCHAR(255) UNIQUE)",
        "CREATE TABLE t (id INT PRIMARY KEY, u INT REFERENCES x (id) "
        "ON DELETE CASCADE ON UPDATE NO ACTION)",
        "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b), "
        "UNIQUE (b), CHECK (a > 0))",
        "CREATE TABLE t (a DECIMAL(10, 2), b DOUBLE PRECISION)",
        "CREATE TABLE t (a TIMESTAMP WITH TIME ZONE)",
        "DROP TABLE IF EXISTS a, b",
        "ALTER TABLE t ADD COLUMN a INT, DROP COLUMN b",
        "ALTER TABLE t MODIFY COLUMN a BIGINT",
        "ALTER TABLE t CHANGE COLUMN a b INT",
        "ALTER TABLE t ALTER COLUMN a TYPE TEXT",
        "ALTER TABLE t ALTER COLUMN a SET DEFAULT 5",
        "ALTER TABLE t ALTER COLUMN a DROP NOT NULL",
        "ALTER TABLE t ADD CONSTRAINT fk FOREIGN KEY (u) "
        "REFERENCES users (id)",
        "ALTER TABLE t DROP CONSTRAINT c",
        "ALTER TABLE t RENAME TO t2",
        "ALTER TABLE t RENAME COLUMN a TO b",
        "CREATE UNIQUE INDEX idx ON t (a, b)",
        "DROP INDEX idx ON t",
    ]

    @pytest.mark.parametrize("sql", CASES)
    def test_roundtrip_stable(self, sql):
        first, second = roundtrip(sql)
        assert first == second

    def test_mysql_identifier_roundtrip(self):
        first, second = roundtrip(
            "CREATE TABLE `my tbl` (`a col` INT)", Dialect.MYSQL)
        assert first == second
        assert first.name == "my tbl"

    def test_comment_roundtrip(self):
        first, second = roundtrip(
            "CREATE TABLE t (a INT COMMENT 'it''s')", Dialect.MYSQL)
        assert second.columns[0].comment == "it's"


class TestContextualKeywordIdentifiers:
    """Names colliding with the parser's contextual keywords must quote.

    An unquoted table named ``if`` would render ``DROP TABLE IF`` and
    the re-parse would read it as a malformed IF EXISTS clause — the
    writer's _ALWAYS_QUOTE list exists precisely for this vocabulary.
    """

    KEYWORDS = ["if", "exists", "like", "temporary", "view", "to",
                "first", "after", "rename", "modify", "change", "add",
                "set", "type", "cascade", "restrict", "as", "replace",
                "update", "using", "with", "without", "time", "zone"]

    @pytest.mark.parametrize("name", KEYWORDS)
    def test_drop_table_roundtrip(self, name):
        stmt = ast.DropTable(names=(name,), if_exists=False)
        rendered = write_statement(stmt, Dialect.GENERIC)
        assert parse_statement(rendered, Dialect.GENERIC) == stmt

    @pytest.mark.parametrize("name", KEYWORDS)
    def test_create_table_roundtrip(self, name):
        stmt = parse_statement(f'CREATE TABLE "{name}" ("{name}" INT)')
        rendered = write_statement(stmt, Dialect.GENERIC)
        assert parse_statement(rendered) == stmt

    def test_script_of_keyword_tables(self):
        script = ast.Script(statements=(
            ast.DropTable(names=("if", "exists"), if_exists=True),
        ))
        rendered = write_script(script, Dialect.GENERIC)
        from repro.sqlddl.parser import parse_script
        assert parse_script(rendered, Dialect.GENERIC) == script
