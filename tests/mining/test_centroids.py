"""Unit tests for centroid/MDC computation."""

import pytest

from repro.errors import AnalysisError
from repro.mining.centroids import centroid_report


class TestCentroidReport:
    def test_single_point_group(self):
        report = centroid_report({"a": [(0.0, 1.0)]})
        assert report.centroids["a"] == (0.0, 1.0)
        assert report.mdc["a"] == 0.0
        assert report.sizes["a"] == 1

    def test_mdc_of_symmetric_group(self):
        report = centroid_report({"a": [(0.0, 0.0), (2.0, 0.0)]})
        assert report.centroids["a"] == (1.0, 0.0)
        assert report.mdc["a"] == pytest.approx(1.0)
        assert report.max_distance["a"] == pytest.approx(1.0)

    def test_centroid_distance(self):
        report = centroid_report({
            "a": [(0.0, 0.0)], "b": [(3.0, 4.0)]})
        assert report.centroid_distance("a", "b") == pytest.approx(5.0)

    def test_pairwise_distances(self):
        report = centroid_report({
            "a": [(0.0,)], "b": [(1.0,)], "c": [(3.0,)]})
        pairs = report.pairwise_centroid_distances()
        assert pairs[("a", "b")] == pytest.approx(1.0)
        assert pairs[("a", "c")] == pytest.approx(3.0)
        assert len(pairs) == 3

    def test_separation_ratio(self):
        report = centroid_report({
            "a": [(0.0,), (0.2,)], "b": [(5.0,), (5.2,)]})
        # MDC = 0.1 each; centroid gap = 5.0 -> ratio 50.
        assert report.separation_ratio() == pytest.approx(50.0)

    def test_separation_ratio_single_group_raises(self):
        report = centroid_report({"a": [(0.0,)]})
        with pytest.raises(AnalysisError):
            report.separation_ratio()

    def test_empty_groups_raise(self):
        with pytest.raises(AnalysisError):
            centroid_report({})
        with pytest.raises(AnalysisError):
            centroid_report({"a": []})

    def test_zero_mdc_ratio_infinite(self):
        report = centroid_report({"a": [(0.0,)], "b": [(1.0,)]})
        assert report.separation_ratio() == float("inf")
