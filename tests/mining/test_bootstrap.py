"""Unit + property tests for bootstrap confidence intervals."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisError
from repro.mining.bootstrap import bootstrap_median_ci


class TestBootstrapMedian:
    def test_point_is_sample_median(self):
        ci = bootstrap_median_ci([1, 2, 3, 4, 100])
        assert ci.point == 3.0

    def test_interval_contains_point(self):
        ci = bootstrap_median_ci([3, 1, 4, 1, 5, 9, 2, 6])
        assert ci.contains(ci.point)

    def test_constant_sample_degenerate_interval(self):
        ci = bootstrap_median_ci([7.0] * 12)
        assert (ci.low, ci.point, ci.high) == (7.0, 7.0, 7.0)

    def test_deterministic_under_seed(self):
        sample = [1, 5, 2, 8, 3]
        a = bootstrap_median_ci(sample, seed=3)
        b = bootstrap_median_ci(sample, seed=3)
        assert a == b

    def test_wider_confidence_wider_interval(self):
        sample = list(range(30))
        narrow = bootstrap_median_ci(sample, confidence=0.5)
        wide = bootstrap_median_ci(sample, confidence=0.99)
        assert wide.high - wide.low >= narrow.high - narrow.low

    def test_single_observation(self):
        ci = bootstrap_median_ci([42])
        assert (ci.low, ci.high) == (42.0, 42.0)

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            bootstrap_median_ci([])

    def test_bad_confidence_raises(self):
        with pytest.raises(AnalysisError):
            bootstrap_median_ci([1, 2], confidence=1.5)

    def test_too_few_iterations_raises(self):
        with pytest.raises(AnalysisError):
            bootstrap_median_ci([1, 2], iterations=3)

    def test_str_rendering(self):
        text = str(bootstrap_median_ci([1, 2, 3]))
        assert "[" in text and "]" in text


@settings(max_examples=60, deadline=None)
@given(sample=st.lists(st.integers(-100, 100), min_size=1, max_size=40),
       seed=st.integers(0, 1000))
def test_interval_ordered_and_within_sample_range(sample, seed):
    ci = bootstrap_median_ci(sample, seed=seed, iterations=200)
    assert ci.low <= ci.point <= ci.high
    assert min(sample) <= ci.low
    assert ci.high <= max(sample)
